PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-update chaos lint

test:
	$(PYTHON) -m pytest -x -q

# Determinism lint: forbids wall-clock reads (time.time/perf_counter/
# datetime.now) anywhere in src/ outside repro/telemetry.py.
lint:
	$(PYTHON) tools/lint_determinism.py

# Fault-injection invariant suite over the full fault-plan grid
# (the default `make test` runs only the fast chaos subset).
chaos:
	$(PYTHON) -m pytest -q -m chaos --runslow

# Perf regression gate: measures probe throughput + serial-vs-parallel
# campaign timing, fails on >20% throughput regression against the
# committed benchmarks/BENCH_campaign.json.
bench:
	$(PYTHON) -m benchmarks

bench-update:
	$(PYTHON) -m benchmarks --update
