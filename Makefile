PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-update

test:
	$(PYTHON) -m pytest -x -q

# Perf regression gate: measures probe throughput + serial-vs-parallel
# campaign timing, fails on >20% throughput regression against the
# committed benchmarks/BENCH_campaign.json.
bench:
	$(PYTHON) -m benchmarks

bench-update:
	$(PYTHON) -m benchmarks --update
