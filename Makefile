PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-update chaos lint serve-smoke

test:
	$(PYTHON) -m pytest -x -q

# Invariant lint suite (tools/lintkit): multi-pass AST analysis —
# RP101 wall-clock reads, RP2xx seeded-RNG discipline, RP3xx stable
# iteration order, RP4xx layer DAG + import cycles, RP5xx shared
# mutable state incl. RP503's NetContext-module counter guard. Covers
# the tooling itself (tools/, benchmarks/) as well as src/. Exit 1 on
# any violation; suppress a line with
# `# lint: ignore[RPxxx] -- justification`.
lint:
	$(PYTHON) -m tools.lintkit src tools benchmarks

# Campaign-service smoke (the CI service-smoke job): a 1k-request
# synthetic client swarm; fails unless coalescing hit rate >= 50% and
# every delivered result is byte-identical to a direct serial run.
serve-smoke:
	$(PYTHON) -m repro.cli serve --country AZ --seed 7 --scale 0.35 \
	  --requests 1000 --tenants 8 --interleave-seed 1 \
	  --min-hit-rate 0.5 --verify

# Fault-injection invariant suite over the full fault-plan grid
# (the default `make test` runs only the fast chaos subset).
chaos:
	$(PYTHON) -m pytest -q -m chaos --runslow

# Perf regression gate: measures probe throughput + serial-vs-parallel
# campaign timing, fails on >20% throughput regression against the
# committed benchmarks/BENCH_campaign.json.
bench:
	$(PYTHON) -m benchmarks

bench-update:
	$(PYTHON) -m benchmarks --update
