PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-update chaos lint serve-smoke epochs-smoke localize-smoke

test:
	$(PYTHON) -m pytest -x -q

# Invariant lint suite (tools/lintkit): multi-pass AST analysis —
# RP101 wall-clock reads, RP2xx seeded-RNG discipline, RP3xx stable
# iteration order, RP4xx layer DAG + import cycles, RP5xx shared
# mutable state incl. RP503's NetContext-module counter guard. Covers
# the tooling itself (tools/, benchmarks/) as well as src/. Exit 1 on
# any violation; suppress a line with
# `# lint: ignore[RPxxx] -- justification`.
lint:
	$(PYTHON) -m tools.lintkit src tools benchmarks

# Campaign-service smoke (the CI service-smoke job): a 1k-request
# synthetic client swarm; fails unless coalescing hit rate >= 50% and
# every delivered result is byte-identical to a direct serial run.
serve-smoke:
	$(PYTHON) -m repro.cli serve --country AZ --seed 7 --scale 0.35 \
	  --requests 1000 --tenants 8 --interleave-seed 1 \
	  --min-hit-rate 0.5 --verify

# Longitudinal observatory smoke (the CI epochs-smoke job): a 3-epoch
# drifted KZ campaign into a temp dir, then 2 continuation epochs that
# must answer >= 80% of units from the persisted cache, then one
# transition query against the fact store. The plan flips the KZ
# ingress device (dev16, AS 9198) drop -> rst -> blockpage, so the
# transitions output shows TIMEOUT -> RST -> HTTP.
EPOCHS_PLAN := {"name":"smoke","ops":[ \
  {"epoch":1,"kind":"firmware","target":"dev16","action_kind":"rst"}, \
  {"epoch":2,"kind":"firmware","target":"dev16","action_kind":"blockpage"}]}
epochs-smoke:
	rm -rf /tmp/repro-epochs-smoke
	$(PYTHON) -m repro.cli epochs --country KZ --seed 11 --scale 0.35 \
	  --epochs 3 --drift-plan '$(EPOCHS_PLAN)' --repetitions 2 \
	  --max-endpoints 4 --fuzz-max-endpoints 2 --metrics \
	  --out /tmp/repro-epochs-smoke
	$(PYTHON) -m repro.cli epochs --country KZ --seed 11 --scale 0.35 \
	  --epochs 2 --drift-plan '$(EPOCHS_PLAN)' --repetitions 2 \
	  --max-endpoints 4 --fuzz-max-endpoints 2 --metrics \
	  --out /tmp/repro-epochs-smoke --min-reuse 0.8
	$(PYTHON) -m repro.cli facts query \
	  --store /tmp/repro-epochs-smoke/facts --transitions

# Localization cross-validation smoke (the CI localize-smoke job):
# sweeps a device over every link of the ECMP placement topology,
# localizes with churn tomography / path-inconsistency / CenTrace TTL
# probing, and fails unless tomography places >= 80% of devices within
# one link of simulator ground truth — without a single TTL probe.
localize-smoke:
	$(PYTHON) -m repro.cli localize --rounds 6 --probes-per-round 4 \
	  --seed 11 --metrics --min-accuracy 0.8

# Fault-injection invariant suite over the full fault-plan grid
# (the default `make test` runs only the fast chaos subset).
chaos:
	$(PYTHON) -m pytest -q -m chaos --runslow

# Perf regression gate: measures probe throughput + serial-vs-parallel
# campaign timing, fails on >20% throughput regression against the
# committed benchmarks/BENCH_campaign.json.
bench:
	$(PYTHON) -m benchmarks

bench-update:
	$(PYTHON) -m benchmarks --update
