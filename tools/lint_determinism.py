#!/usr/bin/env python
"""Deprecated shim — the determinism lint moved into ``tools/lintkit``.

The original single-purpose wall-clock linter is now lintkit pass
``RP101`` (which also closes this script's aliased-import blind spot:
``import time as t; t.time()`` used to walk straight past it). This
wrapper keeps the old invocation and exit-code contract working::

    python tools/lint_determinism.py [root]

but simply runs ``python -m tools.lintkit <root>/src --select RP101``.
Prefer ``make lint``, which runs every pass.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    sys.path.insert(0, str(REPO_ROOT))
    from tools.lintkit.__main__ import main as lintkit_main

    root = Path(argv[0]) if argv else REPO_ROOT
    print(
        "note: tools/lint_determinism.py is deprecated; running "
        "`python -m tools.lintkit --select RP101` (use `make lint` "
        "for the full pass suite)",
        file=sys.stderr,
    )
    return lintkit_main([str(root / "src"), "--select", "RP101"])


if __name__ == "__main__":
    sys.exit(main())
