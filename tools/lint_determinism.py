#!/usr/bin/env python
"""Determinism lint: no wall-clock reads outside ``repro.telemetry``.

The simulator's virtual clock is the only time source measurement code
may consult — a stray ``time.time()`` / ``time.perf_counter()`` in a
hot path silently breaks the serial-vs-parallel bit-identity contract
(wall readings differ between runs and, worse, can leak into results).
``repro/telemetry.py`` wraps the one sanctioned read (``wall_now``);
everything else in ``src/repro`` must go through it.

AST-based, so comments and strings never false-positive. Run via
``make lint`` or directly::

    python tools/lint_determinism.py [root]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: The single module allowed to read the wall clock.
ALLOWED = {Path("src/repro/telemetry.py")}

#: Forbidden call targets, by (module, attribute). ``strftime``-style
#: formatting of an *existing* timestamp is fine; acquiring one is not.
FORBIDDEN_TIME_ATTRS = {
    "time",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "time_ns",
    "clock_gettime",
}
FORBIDDEN_DATETIME_ATTRS = {"now", "today", "utcnow"}


class WallClockVisitor(ast.NodeVisitor):
    def __init__(self, path: Path) -> None:
        self.path = path
        self.violations: list = []
        # Names bound by `from time import perf_counter` etc.
        self._direct_names: set = set()

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in FORBIDDEN_TIME_ATTRS:
                    self._direct_names.add(alias.asname or alias.name)
        if node.module == "datetime":
            for alias in node.names:
                if alias.name == "datetime":
                    self._direct_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                if value.id == "time" and func.attr in FORBIDDEN_TIME_ATTRS:
                    self._record(node, f"time.{func.attr}()")
                elif (
                    value.id == "datetime"
                    and func.attr in FORBIDDEN_DATETIME_ATTRS
                ):
                    self._record(node, f"datetime.{func.attr}()")
            elif (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "datetime"
                and value.attr == "datetime"
                and func.attr in FORBIDDEN_DATETIME_ATTRS
            ):
                self._record(node, f"datetime.datetime.{func.attr}()")
        elif isinstance(func, ast.Name) and func.id in self._direct_names:
            self._record(node, f"{func.id}()")
        self.generic_visit(node)

    def _record(self, node: ast.AST, what: str) -> None:
        self.violations.append((self.path, node.lineno, what))


def lint_file(path: Path, relative: Path) -> list:
    tree = ast.parse(path.read_text(), filename=str(path))
    visitor = WallClockVisitor(relative)
    visitor.visit(tree)
    return visitor.violations


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    src = root / "src"
    violations = []
    for path in sorted(src.rglob("*.py")):
        relative = path.relative_to(root)
        if relative in ALLOWED:
            continue
        violations.extend(lint_file(path, relative))
    for path, lineno, what in violations:
        print(
            f"{path}:{lineno}: wall-clock read {what} — measurement code "
            "must use the simulator clock, or repro.telemetry.wall_now() "
            "for observability"
        )
    if violations:
        print(f"determinism lint: {len(violations)} violation(s)")
        return 1
    print("determinism lint: OK (no wall-clock reads outside repro.telemetry)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
