"""lintkit — two-phase AST invariant linter for the reproduction.

One shared walk, many passes: every ``*.py`` file is parsed exactly
once (phase 1 also builds the shared
:class:`~tools.lintkit.index.ProjectIndex` — symbol tables, resolved
imports, dataclass field inventories, telemetry call sites), then each
registered :class:`~tools.lintkit.base.Rule` inspects the shared tree
(per-file rules), the whole set (project rules such as the layer-DAG
check), or the index (cross-module contract rules). Run it via
``make lint`` or::

    python -m tools.lintkit src            # text report, exit 1 on findings
    python -m tools.lintkit src --json     # machine-readable report
    python -m tools.lintkit --list-rules   # registered passes

Suppress a finding at its line with ``# lint: ignore[RPxxx] -- why``.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .base import (
    REGISTRY,
    FileRule,
    IndexRule,
    ProjectRule,
    Rule,
    Violation,
    register,
)
from .index import ProjectIndex
from .walker import run_rules, walk_paths

# Importing registers every pass.
from . import rules as _rules  # noqa: F401

__all__ = [
    "REGISTRY",
    "FileRule",
    "IndexRule",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "Violation",
    "register",
    "lint",
]


def lint(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    select: Optional[Sequence[str]] = None,
) -> Tuple[List[Violation], int]:
    """Lint ``paths``; returns (violations, files_checked).

    Parse failures surface as ``RP000`` violations so a syntactically
    broken tree can never lint clean.
    """
    contexts, errors = walk_paths(paths, root=root)
    rules = REGISTRY.select(select)
    violations = errors + run_rules(contexts, rules)
    violations.sort(key=lambda v: (str(v.path), v.line, v.rule_id))
    return violations, len(contexts) + len(errors)
