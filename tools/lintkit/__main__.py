"""CLI entry point: ``python -m tools.lintkit [paths...] [--json]``.

Exit codes (the contract ``make lint`` and CI rely on):

* 0 — tree is clean (warning-severity findings are reported but do
  not fail the run; the committed baseline keeps them from
  accumulating silently)
* 1 — error-severity violations found (listed on stdout), or new
  findings vs ``--baseline``
* 2 — usage error (unknown rule id, missing path, unreadable baseline)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import REGISTRY, lint
from .reporters import diff_baseline, render_json, render_text

#: Default target when invoked bare from the repo root.
REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lintkit",
        description="Two-phase AST invariant linter (determinism, RNG "
        "discipline, iteration order, layering, shared state, telemetry "
        "registry, serializer drift, async safety, error contracts).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: <repo>/src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the versioned JSON report"
    )
    parser.add_argument(
        "--select",
        metavar="RPxxx[,RPxxx...]",
        help="run only these rule ids",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        type=Path,
        help="diff findings against a committed --json payload; exit 1 "
        "only on findings not present in the baseline",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered passes"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in REGISTRY.select():
            print(f"{rule.id}  {rule.name:24s} {rule.description}")
        return 0

    paths = args.paths or [REPO_ROOT / "src"]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"lintkit: path(s) do not exist: "
            f"{', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return 2

    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    try:
        rules = REGISTRY.select(select)
    except KeyError as exc:
        print(f"lintkit: {exc.args[0]}", file=sys.stderr)
        return 2

    violations, checked = lint(paths, root=REPO_ROOT, select=select)

    if args.baseline is not None:
        try:
            baseline = json.loads(args.baseline.read_text())
        except (OSError, ValueError) as exc:
            print(
                f"lintkit: cannot read baseline {args.baseline}: {exc}",
                file=sys.stderr,
            )
            return 2
        delta, has_new = diff_baseline(violations, baseline)
        print(delta)
        return 1 if has_new else 0

    render = render_json if args.json else render_text
    print(render(violations, rules, checked))
    return 1 if any(v.severity == "error" for v in violations) else 0


if __name__ == "__main__":
    sys.exit(main())
