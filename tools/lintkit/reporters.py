"""Violation reporters: human text, machine ``--json``, baseline diff.

The JSON schema is versioned and stable — CI and editor integrations
key off it::

    {
      "version": 2,
      "ok": false,                 # no error-severity findings
      "checked_files": 42,
      "rules": ["RP101", ...],
      "counts": {"RP101": 2},
      "errors": 2,
      "warnings": 0,
      "violations": [
        {"rule": "RP101", "path": "src/x.py", "line": 3,
         "severity": "error", "message": "..."}
      ]
    }

Schema history: v1 (PR 4) had no ``severity``/``errors``/``warnings``;
v2 (this PR) adds them — ``ok`` now means "no error-severity findings"
so warning-only runs (stale pragmas) stay green.

``diff_baseline`` compares a run against a committed baseline payload
(``tools/lintkit/baseline.json``) and renders new/fixed findings as a
readable delta; CI fails only on *new* findings, so the job log shows
exactly what a change introduced rather than a wall of context.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from .base import Rule, Violation

JSON_SCHEMA_VERSION = 2


def render_text(
    violations: Sequence[Violation],
    rules: Sequence[Rule],
    checked_files: int,
) -> str:
    lines: List[str] = [v.render() for v in violations]
    errors = sum(1 for v in violations if v.severity == "error")
    warnings = len(violations) - errors
    if violations:
        counts = Counter(v.rule_id for v in violations)
        summary = ", ".join(f"{rid}×{n}" for rid, n in sorted(counts.items()))
        lines.append(
            f"lintkit: {errors} violation(s), {warnings} warning(s) in "
            f"{checked_files} file(s) [{summary}]"
        )
    else:
        ids = ", ".join(rule.id for rule in rules)
        lines.append(
            f"lintkit: OK — {checked_files} file(s) clean under {ids}"
        )
    return "\n".join(lines)


def render_json(
    violations: Sequence[Violation],
    rules: Sequence[Rule],
    checked_files: int,
) -> str:
    counts = Counter(v.rule_id for v in violations)
    errors = sum(1 for v in violations if v.severity == "error")
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "ok": errors == 0,
        "checked_files": checked_files,
        "rules": [rule.id for rule in rules],
        "counts": dict(sorted(counts.items())),
        "errors": errors,
        "warnings": len(violations) - errors,
        "violations": [
            {
                "rule": v.rule_id,
                "path": str(v.path),
                "line": v.line,
                "severity": v.severity,
                "message": v.message,
            }
            for v in violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def _finding_keys(
    entries: Sequence[Dict],
) -> Counter:
    """Multiset of (rule, path, message) — line numbers shift too easily
    to key a cross-commit diff on them."""
    return Counter(
        (e["rule"], e["path"], e["message"]) for e in entries
    )


def diff_baseline(
    violations: Sequence[Violation], baseline: Dict
) -> Tuple[str, bool]:
    """(readable delta, has_new_findings) vs a baseline JSON payload."""
    current_entries = [
        {"rule": v.rule_id, "path": str(v.path), "message": v.message}
        for v in violations
    ]
    current = _finding_keys(current_entries)
    base = _finding_keys(baseline.get("violations", []))
    new = current - base
    fixed = base - current
    lines: List[str] = []
    for (rule, path, message), n in sorted(new.items()):
        tag = f" (×{n})" if n > 1 else ""
        lines.append(f"NEW   {path}: {rule} {message}{tag}")
    for (rule, path, message), n in sorted(fixed.items()):
        tag = f" (×{n})" if n > 1 else ""
        lines.append(f"FIXED {path}: {rule} {message}{tag}")
    if not lines:
        lines.append(
            "lintkit: no delta vs baseline "
            f"({sum(base.values())} baseline finding(s))"
        )
    else:
        lines.append(
            f"lintkit: {sum(new.values())} new, {sum(fixed.values())} "
            "fixed vs baseline"
        )
    return "\n".join(lines), bool(new)
