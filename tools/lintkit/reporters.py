"""Violation reporters: human text and machine ``--json``.

The JSON schema is versioned and stable — CI and editor integrations
key off it::

    {
      "version": 1,
      "ok": false,
      "checked_files": 42,
      "rules": ["RP101", ...],
      "counts": {"RP101": 2},
      "violations": [
        {"rule": "RP101", "path": "src/x.py", "line": 3, "message": "..."}
      ]
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from .base import Rule, Violation

JSON_SCHEMA_VERSION = 1


def render_text(
    violations: Sequence[Violation],
    rules: Sequence[Rule],
    checked_files: int,
) -> str:
    lines: List[str] = [v.render() for v in violations]
    if violations:
        counts = Counter(v.rule_id for v in violations)
        summary = ", ".join(f"{rid}×{n}" for rid, n in sorted(counts.items()))
        lines.append(
            f"lintkit: {len(violations)} violation(s) in {checked_files} "
            f"file(s) [{summary}]"
        )
    else:
        ids = ", ".join(rule.id for rule in rules)
        lines.append(
            f"lintkit: OK — {checked_files} file(s) clean under {ids}"
        )
    return "\n".join(lines)


def render_json(
    violations: Sequence[Violation],
    rules: Sequence[Rule],
    checked_files: int,
) -> str:
    counts = Counter(v.rule_id for v in violations)
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "ok": not violations,
        "checked_files": checked_files,
        "rules": [rule.id for rule in rules],
        "counts": dict(sorted(counts.items())),
        "violations": [
            {
                "rule": v.rule_id,
                "path": str(v.path),
                "line": v.line,
                "message": v.message,
            }
            for v in violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
