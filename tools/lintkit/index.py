"""Phase 1 of the two-phase analyzer: the shared :class:`ProjectIndex`.

``walk_paths`` parses every file once; ``ProjectIndex.build`` then
sweeps the parsed trees once more and materializes everything the
phase-2 cross-module passes need:

* per-module **symbol tables** — top-level classes, functions, and
  literal constants, plus an import table mapping every local binding
  to the absolute dotted name it refers to (relative imports resolved
  against the module's own dotted name);
* **dataclass field inventories** — ``@dataclass`` classes with their
  annotated fields in declaration order, including fields inherited
  from (possibly cross-module) dataclass bases and ``slots=True``
  variants;
* **telemetry call sites** — every ``count(...)`` / ``span(...)`` /
  ``event(kind=...)`` / ``add_virtual(...)`` / ``add_wall(...)`` call
  on a telemetry-shaped receiver, with its name literal(s) when the
  name is statically known and the enclosing function otherwise.

The index is deterministic: two builds over the same tree produce
identical :meth:`ProjectIndex.to_dict` payloads (covered by tests), so
passes may iterate it without sorting defensively.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .base import FileContext

#: Telemetry APIs whose first argument (or ``kind=`` keyword for
#: ``event``) is a registry-checked name.
TELEMETRY_APIS = ("count", "span", "event", "add_virtual", "add_wall")

#: Receivers that mark a call as telemetry: the bare conventional names
#: or any attribute access ending in them (``self.telemetry.count``).
TELEMETRY_RECEIVERS = ("tel", "telemetry")


def resolve_relative(
    module: str, is_package: bool, level: int, target: Optional[str]
) -> Optional[str]:
    """Absolute dotted name for a ``from ...target import x`` statement."""
    if level == 0:
        return target
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        if level - 1 > len(parts):
            return None
        parts = parts[: len(parts) - (level - 1)]
    if target:
        parts = parts + target.split(".")
    return ".".join(parts) if parts else None


@dataclass(frozen=True)
class ClassInfo:
    """One top-level class: bases as written, dataclass flag, fields."""

    name: str
    module: str
    lineno: int
    bases: Tuple[str, ...]  # dotted source text of each base
    is_dataclass: bool
    own_fields: Tuple[str, ...]  # AnnAssign names, declaration order


@dataclass(frozen=True)
class TelemetryCall:
    """One telemetry emission site.

    ``names`` holds the statically-known name literal(s): one entry for
    a plain string, both branches for a constant-folded conditional
    (``"a" if fast else "b"``), and empty when the name is computed at
    runtime (an f-string, an attribute) — those sites must be
    whitelisted in the registry.
    """

    module: str
    path: str  # relative posix path
    lineno: int
    api: str  # count | span | event | add_virtual | add_wall
    names: Tuple[str, ...]
    function: str  # dotted enclosing scope ("Class.method") or "<module>"
    expr: str  # source text of the name argument, for diagnostics


@dataclass
class ModuleInfo:
    """Symbol table for one module."""

    module: str
    relative: str
    imports: Dict[str, str]
    classes: Dict[str, ClassInfo]
    functions: Dict[str, int]  # top-level function name -> lineno
    constants: Dict[str, object]  # literal-evaluable top-level assigns


def _dotted(node: ast.AST) -> Optional[str]:
    """Source-dotted name for Name/Attribute chains, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _is_dataclass_decorator(node: ast.AST) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    name = _dotted(target)
    return name is not None and name.split(".")[-1] == "dataclass"


def _is_telemetry_receiver(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in TELEMETRY_RECEIVERS
    if isinstance(node, ast.Attribute):
        return node.attr in TELEMETRY_RECEIVERS
    return False


def _name_literals(arg: Optional[ast.AST]) -> Tuple[str, ...]:
    """Literal name candidates of a telemetry name argument."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return (arg.value,)
    if isinstance(arg, ast.IfExp):
        branches = []
        for branch in (arg.body, arg.orelse):
            if isinstance(branch, ast.Constant) and isinstance(
                branch.value, str
            ):
                branches.append(branch.value)
            else:
                return ()
        return tuple(branches)
    return ()


class _ModuleIndexer(ast.NodeVisitor):
    """One pass over a module: symbols, imports, telemetry calls."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.module = ctx.module or ""
        self.is_package = ctx.path.name == "__init__.py"
        self.info = ModuleInfo(
            module=self.module,
            relative=ctx.relative.as_posix(),
            imports={},
            classes={},
            functions={},
            constants={},
        )
        self.calls: List[TelemetryCall] = []
        self._scope: List[str] = []

    # -- imports ----------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.info.imports.setdefault(local, target)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = resolve_relative(
            self.module, self.is_package, node.level, node.module
        )
        if base is not None:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self.info.imports.setdefault(local, f"{base}.{alias.name}")
        self.generic_visit(node)

    # -- top-level symbols ------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._scope:
            bases = tuple(
                name for name in (_dotted(b) for b in node.bases) if name
            )
            is_dc = any(
                _is_dataclass_decorator(d) for d in node.decorator_list
            )
            fields: List[str] = []
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    note = ast.dump(stmt.annotation)
                    if "ClassVar" in note or "InitVar" in note:
                        continue
                    fields.append(stmt.target.id)
            self.info.classes[node.name] = ClassInfo(
                name=node.name,
                module=self.module,
                lineno=node.lineno,
                bases=bases,
                is_dataclass=is_dc,
                own_fields=tuple(fields),
            )
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def _visit_func(self, node) -> None:
        if not self._scope:
            self.info.functions.setdefault(node.name, node.lineno)
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def _record_constant(self, target: ast.AST, value_node: ast.AST) -> None:
        if not isinstance(target, ast.Name):
            return
        try:
            value = ast.literal_eval(value_node)
        except (ValueError, SyntaxError, TypeError):
            return
        if value is not None:
            self.info.constants.setdefault(target.id, value)

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._scope and len(node.targets) == 1:
            self._record_constant(node.targets[0], node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self._scope and node.value is not None:
            self._record_constant(node.target, node.value)
        self.generic_visit(node)

    # -- telemetry call sites ---------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in TELEMETRY_APIS
            and _is_telemetry_receiver(func.value)
        ):
            arg: Optional[ast.AST] = node.args[0] if node.args else None
            if func.attr == "event":
                for kw in node.keywords:
                    if kw.arg == "kind":
                        arg = kw.value
            self.calls.append(
                TelemetryCall(
                    module=self.module,
                    path=self.ctx.relative.as_posix(),
                    lineno=node.lineno,
                    api=func.attr,
                    names=_name_literals(arg),
                    function=".".join(self._scope) or "<module>",
                    expr=ast.unparse(arg) if arg is not None else "<none>",
                )
            )
        self.generic_visit(node)


class ProjectIndex:
    """The shared phase-1 index consumed by every :class:`IndexRule`."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.telemetry_calls: List[TelemetryCall] = []

    @classmethod
    def build(cls, contexts: Sequence[FileContext]) -> "ProjectIndex":
        index = cls()
        for ctx in sorted(contexts, key=lambda c: c.relative.as_posix()):
            if not ctx.module:
                continue
            indexer = _ModuleIndexer(ctx)
            indexer.visit(ctx.tree)
            index.modules[ctx.module] = indexer.info
            index.telemetry_calls.extend(indexer.calls)
        index.telemetry_calls.sort(key=lambda c: (c.path, c.lineno, c.api))
        return index

    # -- symbol resolution ------------------------------------------

    def resolve_symbol(self, module: str, dotted: str) -> Optional[str]:
        """Absolute dotted name a local reference points at.

        ``resolve_symbol("repro.store.facts", "PersistError")`` follows
        the module's import table (and up to 8 re-export hops) to
        ``repro.persist.PersistError``. Locally-defined symbols resolve
        to ``<module>.<name>``; unresolvable references return None.
        """
        info = self.modules.get(module)
        if info is None:
            return None
        head, _, rest = dotted.partition(".")
        if not rest and (
            head in info.classes
            or head in info.functions
            or head in info.constants
        ):
            return f"{module}.{head}"
        if head not in info.imports:
            return None
        target = info.imports[head]
        if rest:
            target = f"{target}.{rest}"
        # Follow re-export chains: `from .persist import PersistError`
        # re-exported through a package __init__ and imported from there.
        for _ in range(8):
            owner, _, symbol = target.rpartition(".")
            owner_info = self.modules.get(owner)
            if owner_info is None or not symbol:
                break
            if (
                symbol in owner_info.classes
                or symbol in owner_info.functions
                or symbol in owner_info.constants
            ):
                return target
            if symbol in owner_info.imports:
                target = owner_info.imports[symbol]
                continue
            break
        return target

    def find_class(
        self, module: str, dotted: str
    ) -> Optional[ClassInfo]:
        resolved = self.resolve_symbol(module, dotted)
        if resolved is None:
            # A class used without an import is either local (handled by
            # resolve_symbol) or truly unknown.
            return None
        owner, _, name = resolved.rpartition(".")
        info = self.modules.get(owner)
        if info is None:
            return None
        return info.classes.get(name)

    def dataclass_fields(
        self, module: str, dotted: str
    ) -> Optional[Tuple[str, ...]]:
        """Full field inventory of a dataclass, inherited fields first.

        Mirrors ``dataclasses.fields`` ordering: base-class fields in
        base order, then fields first declared by the class itself;
        a re-annotated inherited field keeps its original position.
        Returns None when the class is unknown or not a dataclass.
        """
        info = self._resolved_class(module, dotted)
        if info is None or not info.is_dataclass:
            return None
        ordered: List[str] = []

        def merge(cls_info: ClassInfo, depth: int) -> None:
            if depth > 8:
                return
            for base in cls_info.bases:
                base_info = self._resolved_class(cls_info.module, base)
                if base_info is not None and base_info.is_dataclass:
                    merge(base_info, depth + 1)
            for name in cls_info.own_fields:
                if name not in ordered:
                    ordered.append(name)

        merge(info, 0)
        return tuple(ordered)

    def _resolved_class(
        self, module: str, dotted: str
    ) -> Optional[ClassInfo]:
        # Annotations may be quoted strings: 'CenTraceResult'.
        dotted = dotted.strip("'\"")
        info = self.modules.get(module)
        if info is not None and dotted in info.classes:
            return info.classes[dotted]
        return self.find_class(module, dotted)

    # -- determinism ------------------------------------------------

    def to_dict(self) -> Dict:
        """Deterministic JSON-able snapshot (index stability tests)."""
        return {
            "modules": {
                name: {
                    "relative": info.relative,
                    "imports": dict(sorted(info.imports.items())),
                    "functions": dict(sorted(info.functions.items())),
                    "constants": {
                        k: repr(v)
                        for k, v in sorted(info.constants.items())
                    },
                    "classes": {
                        cname: {
                            "lineno": c.lineno,
                            "bases": list(c.bases),
                            "is_dataclass": c.is_dataclass,
                            "own_fields": list(c.own_fields),
                        }
                        for cname, c in sorted(info.classes.items())
                    },
                }
                for name, info in sorted(self.modules.items())
            },
            "telemetry_calls": [
                {
                    "module": c.module,
                    "path": c.path,
                    "lineno": c.lineno,
                    "api": c.api,
                    "names": list(c.names),
                    "function": c.function,
                    "expr": c.expr,
                }
                for c in self.telemetry_calls
            ],
        }
