"""Core abstractions for the invariant lint framework.

A *rule* is one invariant checker with a stable ID (``RP101``, ...).
Rules come in two flavours:

* :class:`FileRule` — sees one file at a time (a shared, pre-parsed
  AST in a :class:`FileContext`).
* :class:`ProjectRule` — sees every file at once, for whole-tree
  invariants (the import DAG, cycle detection).

Every violation can be suppressed at the offending line with a pragma
comment::

    x = time.time()  # lint: ignore[RP101] -- justification here

or, for long lines, on the line immediately above::

    # lint: ignore[RP502] -- rewound per-unit by reset_foo()
    _counter = [0]

Suppression is per-rule: the bracket list names the rule IDs being
waived, and anything after ``--`` is a free-form justification (by
convention mandatory in this repo — a bare pragma tells the reader
nothing).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Type

#: ``# lint: ignore[RP101]`` / ``# lint: ignore[RP101, RP502] -- why``
PRAGMA_RE = re.compile(r"#\s*lint:\s*ignore\[([A-Z0-9,\s]+)\]")

RULE_ID_RE = re.compile(r"^RP\d{3}$")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule tripped at a specific file/line."""

    rule_id: str
    path: Path  # repo-relative where possible
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"


class FileContext:
    """One parsed source file, shared by every pass.

    The walker parses each file exactly once; passes receive the same
    ``tree`` so a five-pass run costs one ``ast.parse`` per file.
    """

    def __init__(
        self,
        path: Path,
        relative: Path,
        source: str,
        tree: ast.Module,
        module: Optional[str],
    ) -> None:
        self.path = path
        self.relative = relative
        self.source = source
        self.tree = tree
        #: Dotted module name (``repro.netsim.simulator``) when the file
        #: sits inside an importable package, else ``None``.
        self.module = module
        self._suppressed: Dict[int, Set[str]] = self._parse_pragmas(source)

    @staticmethod
    def _parse_pragmas(source: str) -> Dict[int, Set[str]]:
        suppressed: Dict[int, Set[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = PRAGMA_RE.search(text)
            if not match:
                continue
            ids = {part.strip() for part in match.group(1).split(",")}
            ids = {i for i in ids if RULE_ID_RE.match(i)}
            if not ids:
                continue
            suppressed.setdefault(lineno, set()).update(ids)
            # A standalone pragma comment shields the following line.
            if text.split("#", 1)[0].strip() == "":
                suppressed.setdefault(lineno + 1, set()).update(ids)
        return suppressed

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        return rule_id in self._suppressed.get(line, ())

    #: Top-level package of :attr:`module` (``repro`` for
    #: ``repro.netsim.simulator``), or ``None`` outside a package.
    @property
    def package_root(self) -> Optional[str]:
        return self.module.split(".", 1)[0] if self.module else None


class Rule:
    """Base class: one registered invariant with a stable ID."""

    id: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Scope hook — override to restrict a rule to some modules."""
        return True


class FileRule(Rule):
    def check(self, ctx: FileContext) -> Iterable[Violation]:
        raise NotImplementedError


class ProjectRule(Rule):
    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterable[Violation]:
        raise NotImplementedError


@dataclass
class Registry:
    """All registered rules, keyed by ID; insertion order is report order."""

    rules: Dict[str, Rule] = field(default_factory=dict)

    def register(self, rule_cls: Type[Rule]) -> Type[Rule]:
        rule = rule_cls()
        if not RULE_ID_RE.match(rule.id):
            raise ValueError(f"rule id {rule.id!r} is not of the form RPxxx")
        if rule.id in self.rules:
            raise ValueError(f"duplicate rule id {rule.id}")
        self.rules[rule.id] = rule
        return rule_cls

    def select(self, ids: Optional[Sequence[str]] = None) -> List[Rule]:
        if ids is None:
            return list(self.rules.values())
        unknown = [i for i in ids if i not in self.rules]
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(unknown)}")
        return [self.rules[i] for i in ids]


#: The process-wide registry the ``@register`` decorator feeds.
REGISTRY = Registry()
register = REGISTRY.register
