"""Core abstractions for the invariant lint framework.

A *rule* is one invariant checker with a stable ID (``RP101``, ...).
Rules come in three flavours:

* :class:`FileRule` — sees one file at a time (a shared, pre-parsed
  AST in a :class:`FileContext`).
* :class:`ProjectRule` — sees every file at once, for whole-tree
  invariants (the import DAG, cycle detection).
* :class:`IndexRule` — phase-2 passes that consume the shared
  :class:`~tools.lintkit.index.ProjectIndex` built once per run
  (symbol tables, resolved imports, dataclass field inventories,
  telemetry call sites).

Every violation can be suppressed at the offending line with a pragma
comment (``# lint: ignore[RP101] -- justification here`` on the line,
or standalone on the line immediately above). Suppression is per-rule:
the bracket list names the rule IDs being waived, and anything after
``--`` is a free-form justification (by convention mandatory in this
repo — a bare pragma tells the reader nothing).

Pragmas are recognised only in real comments (tokenize-verified), so a
pragma *example* inside a docstring neither suppresses anything nor
counts as a stale suppression. The walker tracks which pragmas
actually fired; a pragma that suppresses nothing is reported as the
warning-severity ``RP001``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

#: Comment form: ``lint: ignore[RP101]`` or
#: ``lint: ignore[RP101, RP502] -- why`` after the usual hash.
PRAGMA_RE = re.compile(r"#\s*lint:\s*ignore\[([A-Z0-9,\s]+)\]")

RULE_ID_RE = re.compile(r"^RP\d{3}$")

#: Severity levels, in increasing order of seriousness. Only ``error``
#: findings affect the exit code; ``warning`` findings (stale pragmas)
#: are reported but do not fail ``make lint``.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule tripped at a specific file/line."""

    rule_id: str
    path: Path  # repo-relative where possible
    line: int
    message: str
    severity: str = "error"

    def render(self) -> str:
        tag = "" if self.severity == "error" else f" [{self.severity}]"
        return f"{self.path}:{self.line}: {self.rule_id}{tag} {self.message}"


@dataclass(frozen=True)
class Pragma:
    """One ``# lint: ignore[...]`` comment found in a file."""

    line: int  # line the comment itself sits on
    ids: Tuple[str, ...]  # rule IDs it waives, sorted
    shields: Tuple[int, ...]  # source lines it suppresses findings on


class FileContext:
    """One parsed source file, shared by every pass.

    The walker parses each file exactly once; passes receive the same
    ``tree`` so a many-pass run costs one ``ast.parse`` per file.
    """

    def __init__(
        self,
        path: Path,
        relative: Path,
        source: str,
        tree: ast.Module,
        module: Optional[str],
    ) -> None:
        self.path = path
        self.relative = relative
        self.source = source
        self.tree = tree
        #: Dotted module name (``repro.netsim.simulator``) when the file
        #: sits inside an importable package, else ``None``.
        self.module = module
        self.pragmas: List[Pragma] = self._parse_pragmas(source)
        # line -> {rule_id: [pragmas shielding that line]}
        self._suppressed: Dict[int, Dict[str, List[Pragma]]] = {}
        for pragma in self.pragmas:
            for shielded in pragma.shields:
                per_line = self._suppressed.setdefault(shielded, {})
                for rule_id in pragma.ids:
                    per_line.setdefault(rule_id, []).append(pragma)
        #: (pragma line, rule id) pairs that actually fired this run.
        self._used: Set[Tuple[int, str]] = set()

    @staticmethod
    def _parse_pragmas(source: str) -> List[Pragma]:
        """All pragma *comments* (docstring look-alikes excluded)."""
        lines = source.splitlines()
        pragmas: List[Pragma] = []
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            # Unreadable enough that the parser already reported it.
            return pragmas
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = PRAGMA_RE.search(tok.string)
            if not match:
                continue
            ids = {part.strip() for part in match.group(1).split(",")}
            ids = {i for i in ids if RULE_ID_RE.match(i)}
            if not ids:
                continue
            row = tok.start[0]
            shields = [row]
            # A standalone pragma comment shields the following line.
            prefix = lines[row - 1][: tok.start[1]] if row <= len(lines) else ""
            if prefix.strip() == "":
                shields.append(row + 1)
            pragmas.append(Pragma(row, tuple(sorted(ids)), tuple(shields)))
        return pragmas

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        hits = self._suppressed.get(line, {}).get(rule_id)
        if not hits:
            return False
        for pragma in hits:
            self._used.add((pragma.line, rule_id))
        return True

    def unused_pragma_ids(
        self, active_ids: Set[str]
    ) -> List[Tuple[int, str]]:
        """(pragma line, rule id) pairs that never suppressed a finding.

        Only IDs among ``active_ids`` are considered, so a partial
        ``--select`` run never convicts pragmas for rules it didn't run.
        """
        unused: List[Tuple[int, str]] = []
        for pragma in self.pragmas:
            for rule_id in pragma.ids:
                if rule_id not in active_ids:
                    continue
                if (pragma.line, rule_id) not in self._used:
                    unused.append((pragma.line, rule_id))
        return unused

    #: Top-level package of :attr:`module` (``repro`` for
    #: ``repro.netsim.simulator``), or ``None`` outside a package.
    @property
    def package_root(self) -> Optional[str]:
        return self.module.split(".", 1)[0] if self.module else None


class Rule:
    """Base class: one registered invariant with a stable ID."""

    id: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Scope hook — override to restrict a rule to some modules."""
        return True


class FileRule(Rule):
    def check(self, ctx: FileContext) -> Iterable[Violation]:
        raise NotImplementedError


class ProjectRule(Rule):
    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterable[Violation]:
        raise NotImplementedError


class IndexRule(Rule):
    """Phase-2 rule: runs against the shared :class:`ProjectIndex`.

    The walker builds the index once per run (when at least one
    IndexRule is selected) and hands every IndexRule the same instance,
    so N cross-module passes cost one indexing sweep.
    """

    def check_index(
        self, index, contexts: Sequence[FileContext]
    ) -> Iterable[Violation]:
        raise NotImplementedError


@dataclass
class Registry:
    """All registered rules, keyed by ID; insertion order is report order."""

    rules: Dict[str, Rule] = field(default_factory=dict)

    def register(self, rule_cls: Type[Rule]) -> Type[Rule]:
        rule = rule_cls()
        if not RULE_ID_RE.match(rule.id):
            raise ValueError(f"rule id {rule.id!r} is not of the form RPxxx")
        if rule.id in self.rules:
            raise ValueError(f"duplicate rule id {rule.id}")
        self.rules[rule.id] = rule
        return rule_cls

    def select(self, ids: Optional[Sequence[str]] = None) -> List[Rule]:
        if ids is None:
            return list(self.rules.values())
        unknown = [i for i in ids if i not in self.rules]
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(unknown)}")
        return [self.rules[i] for i in ids]


#: The process-wide registry the ``@register`` decorator feeds.
REGISTRY = Registry()
register = REGISTRY.register
