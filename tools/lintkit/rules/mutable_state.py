"""RP501/RP502 — shared mutable state in hot-path modules.

The parallel executor rebuilds a world replica per worker and resets
per-unit counters so serial and parallel runs are bit-identical.
Any *other* mutable state shared at module or class level silently
accumulates across work units in one process while starting fresh in
another — exactly the asymmetry that broke ``_dns_fake_cursor`` (a
rotating-fake-address cursor that was never rewound per unit).

* RP501 — mutable class-level defaults: a list/dict/set literal (or
  bare ``list()``/``dict()``/``set()``/``bytearray()`` call, or
  ``field(default=<mutable>)``) assigned at class scope is shared by
  every instance; in a dataclass it is also a runtime ``ValueError``
  for the common types. Use ``field(default_factory=...)``.
* RP502 — module-level mutable globals: a list/dict/set/bytearray
  bound at module scope to a non-constant-cased name, or any name
  rebound via a ``global`` statement. Constants (``UPPER_CASE`` names,
  frozensets, tuples) are exempt — the rule targets state, not tables.

Identifier allocation (IP IDs, ephemeral ports, sequential injection
IDs, the fake-DNS cursor) lives on
:class:`repro.netmodel.netctx.NetContext`, owned by the simulator and
rewound per work unit — there are no sanctioned module-global counters
left, and therefore no RP502 pragmas in the allocator modules.

* RP503 — module-global counters in the NetContext-owned modules:
  in ``repro.netmodel.packet``, ``repro.netsim.batch``,
  ``repro.netsim.tcpstack``, ``repro.devices.actions`` (and ``netctx``
  itself), *any* module-level binding of a non-constant-cased name to a
  call or mutable value — ``itertools.count(...)``, a cursor list, a
  stateful object — or any ``global`` rebind, is flagged. This is the
  guard that keeps the old counter ritual from creeping back in (and
  keeps the batch engine's plan/route caches on the engine instance,
  where ``Simulator.reset`` governs them).

Scope (RP501/RP502): ``repro.netmodel``, ``repro.netsim``,
``repro.devices``, ``repro.services``, ``repro.core`` — everything a
measurement walks per probe.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..base import FileContext, FileRule, Violation, register
from .rng import in_scope

SCOPE_PREFIXES = (
    "repro.netmodel",
    "repro.netsim",
    "repro.devices",
    "repro.services",
    "repro.core",
)

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


def _is_constant_name(name: str) -> bool:
    stripped = name.lstrip("_")
    return bool(stripped) and stripped == stripped.upper()


def _field_mutable_default(node: ast.AST) -> bool:
    """``field(default=[...])`` — mutable default smuggled through field()."""
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "field"
    ):
        return False
    return any(
        kw.arg == "default" and _is_mutable_literal(kw.value)
        for kw in node.keywords
    )


class _StateVisitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.violations: List[Violation] = []
        self._class_depth = 0
        self._func_depth = 0

    # -- class-level defaults (RP501) ---------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_depth += 1
        for child in node.body:
            value = None
            targets: List[ast.expr] = []
            if isinstance(child, ast.Assign):
                value, targets = child.value, child.targets
            elif isinstance(child, ast.AnnAssign):
                value, targets = child.value, [child.target]
            if value is None:
                continue
            # Constant-cased class attrs are lookup tables, not state.
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if names and all(_is_constant_name(n) for n in names):
                continue
            if _is_mutable_literal(value) or _field_mutable_default(value):
                self.violations.append(
                    Violation(
                        rule_id="RP501",
                        path=self.ctx.relative,
                        line=child.lineno,
                        message=(
                            f"mutable class-level default in {node.name} — "
                            "shared across every instance (and across worker "
                            "world replicas); use field(default_factory=...) "
                            "or build it in __init__"
                        ),
                    )
                )
        self.generic_visit(node)
        self._class_depth -= 1

    # -- module-level mutable globals (RP502) -------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_module_assign(node, node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_module_assign(node, [node.target], node.value)
        self.generic_visit(node)

    def _check_module_assign(self, node, targets, value) -> None:
        if self._class_depth or self._func_depth:
            return
        if not _is_mutable_literal(value):
            return
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id == "__all__" or _is_constant_name(target.id):
                continue
            self.violations.append(
                Violation(
                    rule_id="RP502",
                    path=self.ctx.relative,
                    line=node.lineno,
                    message=(
                        f"module-level mutable global {target.id!r} — "
                        "process-wide state breaks per-worker replica "
                        "isolation; move it into the world/simulator, or "
                        "add a per-unit reset hook and a justified pragma"
                    ),
                )
            )

    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            self.violations.append(
                Violation(
                    rule_id="RP502",
                    path=self.ctx.relative,
                    line=node.lineno,
                    message=(
                        f"'global {name}' rebinds module state from a "
                        "function — process-wide state breaks per-worker "
                        "replica isolation; justify with a pragma naming "
                        "the per-unit reset hook"
                    ),
                )
            )

    # -- function bodies are not module scope -------------------------

    def _descend_function(self, node) -> None:
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    def visit_FunctionDef(self, node):  # noqa: N802
        self._descend_function(node)

    def visit_AsyncFunctionDef(self, node):  # noqa: N802
        self._descend_function(node)


class _StateRuleBase(FileRule):
    def applies_to(self, ctx: FileContext) -> bool:
        return in_scope(ctx, SCOPE_PREFIXES)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        visitor = _StateVisitor(ctx)
        visitor.visit(ctx.tree)
        return [v for v in visitor.violations if v.rule_id == self.id]


@register
class MutableClassDefaultRule(_StateRuleBase):
    id = "RP501"
    name = "mutable-class-default"
    description = (
        "No mutable class-level / dataclass defaults in hot-path modules "
        "(shared across instances and worker replicas)."
    )


@register
class MutableModuleGlobalRule(_StateRuleBase):
    id = "RP502"
    name = "mutable-module-global"
    description = (
        "No module-level mutable globals or 'global' rebinding in hot-path "
        "modules without a per-unit reset hook and justified pragma."
    )


# -- RP503: the NetContext modules must stay counter-free -------------------

NETCTX_MODULES = (
    "repro.netmodel.netctx",
    "repro.netmodel.packet",
    "repro.netsim.batch",
    "repro.netsim.tcpstack",
    "repro.devices.actions",
)


class _CounterVisitor(ast.NodeVisitor):
    """Module-level state-like bindings: calls, mutable values, globals.

    Stricter than RP502 on purpose: in the allocator modules even an
    ``itertools.count(...)`` or a stateful helper object bound to a
    non-constant name is a reintroduced module-global counter.
    """

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.violations: List[Violation] = []
        self._depth = 0

    def _flag(self, node, name: str, what: str) -> None:
        self.violations.append(
            Violation(
                rule_id="RP503",
                path=self.ctx.relative,
                line=node.lineno,
                message=(
                    f"{what} {name!r} in a NetContext-owned module — "
                    "identifier allocation belongs on NetContext "
                    "(owned by the simulator, reset per unit), not in "
                    "module globals"
                ),
            )
        )

    def _check_binding(self, node, targets, value) -> None:
        if self._depth or value is None:
            return
        if not (_is_mutable_literal(value) or isinstance(value, ast.Call)):
            return
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id == "__all__" or _is_constant_name(target.id):
                continue
            self._flag(node, target.id, "module-level stateful binding")

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_binding(node, node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_binding(node, [node.target], node.value)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            self._flag(node, name, "'global' rebind of")

    def _descend(self, node) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_FunctionDef(self, node):  # noqa: N802
        self._descend(node)

    def visit_AsyncFunctionDef(self, node):  # noqa: N802
        self._descend(node)

    def visit_ClassDef(self, node):  # noqa: N802
        self._descend(node)


@register
class NetContextCounterRule(FileRule):
    id = "RP503"
    name = "netctx-module-counter"
    description = (
        "No module-global counters (or any stateful module-level binding) "
        "in the NetContext-owned allocator modules; allocation state lives "
        "on NetContext."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return in_scope(ctx, NETCTX_MODULES)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        visitor = _CounterVisitor(ctx)
        visitor.visit(ctx.tree)
        return visitor.violations
