"""RP801-RP802 — async-safety invariants for the campaign service.

``repro.service`` runs a single asyncio dispatcher; its correctness
model is "atomic between awaits". Two things break that model:

* RP801 — a blocking call directly inside an ``async def`` body:
  ``time.sleep``, synchronous file IO (``open``, ``Path.read_text``
  and friends), or a direct executor ``.run_unit``/``.run_traces``/
  ``.run_fuzz`` call not routed through ``run_in_executor``. Each one
  stalls every coroutine on the loop. (Deliberately-synchronous
  helpers — plain ``def`` — are out of scope; making a blocking
  section structural rather than incidental is exactly the sanctioned
  idiom, as ``CampaignService._execute`` documents.)
* RP802 — shared-state check-then-act across an ``await``: a guard on
  ``self.<attr>`` (directly, or via a local snapshot of it) whose
  body awaits, followed by a mutation of the same attribute with no
  re-read in between. While the coroutine awaited, another task may
  have changed the attribute; the PR 7 admission race was exactly
  this shape. The fix — re-reading the attribute after the await —
  satisfies the rule.

Both are per-file passes scoped to ``repro.service``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..base import FileContext, FileRule, Violation, register

#: Dotted call targets that block the event loop.
BLOCKING_CALLS = {
    "time.sleep": "blocks the event loop; use asyncio.sleep",
    "open": "synchronous file IO on the event loop",
}

#: Method names that are file IO no matter the receiver.
BLOCKING_METHODS = {
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
}

#: Executor entry points that must go through run_in_executor when
#: called from a coroutine.
EXECUTOR_METHODS = {"run_unit", "run_traces", "run_fuzz"}

#: Calls that mutate a container receiver in place.
MUTATING_METHODS = {
    "append",
    "add",
    "insert",
    "extend",
    "update",
    "setdefault",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "discard",
    "clear",
}

SERVICE_PACKAGE = "repro.service"


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _iter_async_defs(tree: ast.Module) -> Iterable[ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


def _walk_async_body(func: ast.AsyncFunctionDef) -> Iterable[ast.AST]:
    """Nodes of the coroutine itself, skipping nested function defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class _ServiceRule(FileRule):
    def applies_to(self, ctx: FileContext) -> bool:
        return bool(
            ctx.module
            and (
                ctx.module == SERVICE_PACKAGE
                or ctx.module.startswith(SERVICE_PACKAGE + ".")
            )
        )


@register
class BlockingCallInCoroutine(_ServiceRule):
    id = "RP801"
    name = "async-blocking-call"
    description = (
        "No blocking calls (time.sleep, sync file IO, direct executor "
        "run_unit) inside async def bodies — they stall every "
        "coroutine on the loop."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        violations: List[Violation] = []
        for func in _iter_async_defs(ctx.tree):
            for node in _walk_async_body(func):
                if not isinstance(node, ast.Call):
                    continue
                message = self._blocking_reason(node)
                if message is not None:
                    violations.append(
                        Violation(
                            rule_id=self.id,
                            path=ctx.relative,
                            line=node.lineno,
                            message=f"in async def {func.name}: {message}",
                        )
                    )
        return violations

    @staticmethod
    def _blocking_reason(node: ast.Call) -> Optional[str]:
        dotted = _dotted(node.func)
        if dotted in BLOCKING_CALLS:
            return f"{dotted}() — {BLOCKING_CALLS[dotted]}"
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in BLOCKING_METHODS:
                return (
                    f".{attr}() — synchronous file IO on the event loop; "
                    "move it to a sync helper or run_in_executor"
                )
            if attr in EXECUTOR_METHODS:
                return (
                    f".{attr}() called directly on the loop — route it "
                    "through loop.run_in_executor (or a deliberate sync "
                    "helper)"
                )
        return None


@register
class CheckThenActAcrossAwait(_ServiceRule):
    id = "RP802"
    name = "async-check-then-act"
    description = (
        "A guard on shared self-state followed by an await must re-read "
        "the state before mutating it (the admission-race shape)."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        violations: List[Violation] = []
        for func in _iter_async_defs(ctx.tree):
            violations.extend(self._check_coroutine(ctx, func))
        return violations

    def _check_coroutine(
        self, ctx: FileContext, func: ast.AsyncFunctionDef
    ) -> List[Violation]:
        # Locals that snapshot a self attribute: x = self._states.get(k),
        # x = self._states[k], x = self._states.
        snapshot_of: Dict[str, str] = {}
        for node in _walk_async_body(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                attr = self._snapshotted_attr(node.value)
                if isinstance(target, ast.Name) and attr is not None:
                    snapshot_of[target.id] = attr

        # Linearize the events the race shape is made of.
        loads: Dict[str, List[int]] = {}
        mutations: Dict[str, List[Tuple[int, str]]] = {}
        for node in _walk_async_body(func):
            for attr, line, how in self._mutations(node):
                mutations.setdefault(attr, []).append((line, how))
            attr = self._self_attr_load(node)
            if attr is not None:
                loads.setdefault(attr, []).append(node.lineno)

        violations: List[Violation] = []
        reported: Set[Tuple[str, int]] = set()
        for guard in _walk_async_body(func):
            if not isinstance(guard, ast.If):
                continue
            guarded = self._guarded_attrs(guard.test, snapshot_of)
            if not guarded:
                continue
            first_await = self._first_await_within(guard)
            if first_await is None:
                continue
            for attr in sorted(guarded):
                for line, how in sorted(mutations.get(attr, ())):
                    if line <= first_await:
                        continue
                    rechecked = any(
                        first_await < load < line
                        for load in loads.get(attr, ())
                    )
                    if rechecked or (attr, line) in reported:
                        break
                    reported.add((attr, line))
                    violations.append(
                        Violation(
                            rule_id=self.id,
                            path=ctx.relative,
                            line=line,
                            message=(
                                f"in async def {func.name}: self.{attr} "
                                f"is {how} after the await at line "
                                f"{first_await}, but the guard at line "
                                f"{guard.lineno} checked it before the "
                                "await — re-read it after awaiting "
                                "(check-then-act race)"
                            ),
                        )
                    )
                    break
        return violations

    # -- shape helpers ----------------------------------------------

    @staticmethod
    def _self_attr(node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _snapshotted_attr(self, value: ast.AST) -> Optional[str]:
        attr = self._self_attr(value)
        if attr is not None:
            return attr
        if isinstance(value, ast.Subscript):
            return self._self_attr(value.value)
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "get"
        ):
            return self._self_attr(value.func.value)
        return None

    def _guarded_attrs(
        self, test: ast.AST, snapshot_of: Dict[str, str]
    ) -> Set[str]:
        guarded: Set[str] = set()
        for node in ast.walk(test):
            attr = self._self_attr(node)
            if attr is not None:
                guarded.add(attr)
            if isinstance(node, ast.Name) and node.id in snapshot_of:
                guarded.add(snapshot_of[node.id])
        return guarded

    @staticmethod
    def _first_await_within(guard: ast.If) -> Optional[int]:
        lines = [
            node.lineno
            for node in ast.walk(guard)
            if isinstance(node, ast.Await)
        ]
        return min(lines) if lines else None

    def _mutations(
        self, node: ast.AST
    ) -> List[Tuple[str, int, str]]:
        found: List[Tuple[str, int, str]] = []
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = self._self_attr(target)
                if attr is None and isinstance(target, ast.Subscript):
                    attr = self._self_attr(target.value)
                if attr is not None:
                    found.append((attr, node.lineno, "assigned"))
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in MUTATING_METHODS:
                attr = self._self_attr(node.func.value)
                if attr is not None:
                    found.append(
                        (attr, node.lineno, f"mutated ({node.func.attr})")
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = self._self_attr(target)
                if attr is None and isinstance(target, ast.Subscript):
                    attr = self._self_attr(target.value)
                if attr is not None:
                    found.append((attr, node.lineno, "deleted"))
        return found

    def _self_attr_load(self, node: ast.AST) -> Optional[str]:
        # A Load of self.<attr> anywhere counts as a potential re-check.
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None
