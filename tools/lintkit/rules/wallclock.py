"""RP101 — no wall-clock reads outside ``repro.telemetry``.

The simulator's virtual clock is the only time source measurement code
may consult: a stray ``time.time()`` / ``perf_counter()`` in a hot path
silently breaks the serial-vs-parallel bit-identity contract (wall
readings differ between runs and can leak into results).
``repro.telemetry.wall_now()`` wraps the one sanctioned read.

This pass superseded the repo's first standalone determinism linter
(removed after a deprecation period) and closes its aliased-import
blind spot: that script matched the literal names ``time`` /
``datetime``, so ::

    import time as t
    t.time()            # escaped the old lint; RP101 catches it

    from datetime import datetime as dt
    dt.now()            # likewise

walked straight past it. RP101 tracks every alias the module binds.
``strftime``-style formatting of an *existing* timestamp is fine;
acquiring one is not (``time.sleep`` is also allowed — it does not
*read* the clock).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from ..base import FileContext, FileRule, Violation, register

#: Clock-acquiring attributes of the ``time`` module.
FORBIDDEN_TIME_ATTRS = {
    "time",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "time_ns",
    "clock_gettime",
    "clock_gettime_ns",
}
#: Clock-acquiring constructors of ``datetime.datetime`` / ``date``.
FORBIDDEN_DATETIME_ATTRS = {"now", "today", "utcnow"}

#: The single module allowed to read the wall clock.
SANCTIONED_MODULE = "repro.telemetry"


class _WallClockVisitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.violations: List[Violation] = []
        # Aliases of the `time` module: {"time", "t", ...}
        self._time_aliases: Set[str] = set()
        # Aliases of the `datetime` *module*.
        self._datetime_mod_aliases: Set[str] = set()
        # Aliases of the `datetime.datetime` / `datetime.date` classes.
        self._datetime_cls_aliases: Set[str] = set()
        # Directly imported clock functions: {"perf_counter", "pc", ...}
        self._direct_reads: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "time":
                self._time_aliases.add(bound)
            elif alias.name == "datetime":
                self._datetime_mod_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in FORBIDDEN_TIME_ATTRS:
                    bound = alias.asname or alias.name
                    self._direct_reads[bound] = f"time.{alias.name}"
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in {"datetime", "date"}:
                    self._datetime_cls_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            self._check_attribute_call(node, func)
        elif isinstance(func, ast.Name) and func.id in self._direct_reads:
            self._record(node, f"{self._direct_reads[func.id]} (as {func.id}())")
        self.generic_visit(node)

    def _check_attribute_call(self, node: ast.Call, func: ast.Attribute) -> None:
        value = func.value
        if isinstance(value, ast.Name):
            if (
                value.id in self._time_aliases
                and func.attr in FORBIDDEN_TIME_ATTRS
            ):
                self._record(node, f"time.{func.attr}() (via {value.id})")
            elif (
                value.id in self._datetime_cls_aliases
                and func.attr in FORBIDDEN_DATETIME_ATTRS
            ):
                self._record(node, f"datetime.{func.attr}() (via {value.id})")
        elif (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id in self._datetime_mod_aliases
            and value.attr in {"datetime", "date"}
            and func.attr in FORBIDDEN_DATETIME_ATTRS
        ):
            self._record(node, f"datetime.{value.attr}.{func.attr}()")

    def _record(self, node: ast.AST, what: str) -> None:
        self.violations.append(
            Violation(
                rule_id="RP101",
                path=self.ctx.relative,
                line=node.lineno,
                message=(
                    f"wall-clock read {what} — use the simulator clock, or "
                    "repro.telemetry.wall_now() for observability"
                ),
            )
        )


@register
class WallClockRule(FileRule):
    id = "RP101"
    name = "wall-clock"
    description = (
        "No wall-clock reads (time.time/perf_counter/datetime.now, including "
        "aliased imports) outside repro.telemetry."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module != SANCTIONED_MODULE

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        visitor = _WallClockVisitor(ctx)
        visitor.visit(ctx.tree)
        return visitor.violations
