"""RP001 — stale suppression pragmas.

A ``# lint: ignore[RPxxx]`` whose rule never fires on the shielded
line(s) is documentation pointing at nothing: the violation it once
waived has been fixed (or the pragma was wrong from the start), and
leaving it behind teaches readers that pragmas are noise. RP001 flags
every such pragma at **warning** severity — reported, counted in the
baseline, but not an exit-1 failure, so a fix that removes a violation
does not atomically require touching the pragma in the same commit.

The check itself lives in the walker (``run_rules``): only the
suppression layer knows which pragmas actually fired, and it only
convicts IDs among the rules that ran, so ``--select`` subsets never
produce false positives. This class exists to give the pass a stable
registered ID for ``--list-rules`` and ``--select``.
"""

from __future__ import annotations

from typing import Iterable

from ..base import FileContext, FileRule, Violation, register


@register
class UnusedPragma(FileRule):
    id = "RP001"
    name = "unused-pragma"
    description = (
        "A # lint: ignore[RPxxx] pragma that suppresses nothing is a "
        "stale waiver — delete it (warning severity)."
    )

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        # Driven by the walker after all other passes have run; see
        # tools/lintkit/walker.py (UNUSED_PRAGMA_ID).
        return ()
