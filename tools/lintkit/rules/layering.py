"""RP401/RP402 — the ``repro`` layer DAG.

The reproduction is layered so that the packet model knows nothing of
the simulator, the simulator knows nothing of the measurement tools,
and the tools know nothing of the experiment harness. The declared map
(``LAYER_DEPS``) is the single source of truth: each top-level
``repro`` subpackage lists the subpackages it may import.

* RP401 — an import edge not allowed by the map. This encodes the
  repo's standing rules: ``netmodel`` imports nothing from repro;
  ``netsim``/``devices``/``geo`` never import
  ``core``/``experiments``/``analysis``; ``analysis`` never reaches
  into ``netsim`` internals; nothing imports ``cli``.
* RP402 — an import cycle among repro modules, detected over
  *module-level* imports only (a function-local import is the
  sanctioned way to break a would-be cycle at runtime, so it joins the
  RP401 edge check but not the cycle graph).

Relative imports are resolved against the importing module's dotted
name, so ``from ...netmodel.dns import X`` inside
``repro.core.cenfuzz.dns_fuzz`` correctly registers the edge
``core -> netmodel``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..base import FileContext, ProjectRule, Violation, register
from ..index import resolve_relative

#: package -> packages it may import. ``*`` means "anything but the
#: packages everyone is banned from" (see NEVER_IMPORTED).
LAYER_DEPS: Dict[str, Set[str]] = {
    "telemetry": set(),
    # The declared telemetry name registry (RP6xx contract): pure data,
    # imports nothing; only entry points render it at runtime.
    "telemetry_registry": set(),
    "netmodel": set(),
    "netsim": {"netmodel", "telemetry"},
    "services": {"netmodel", "netsim"},
    "devices": {"netmodel", "netsim", "services"},
    "geo": {"netmodel", "netsim", "devices", "services"},
    "core": {"netmodel", "netsim", "devices", "services", "geo", "telemetry"},
    # Localization consumes measurement primitives and world routing but
    # must never be imported back by them: the CenTrace classifier's
    # voting seam lives in core/centrace/attribution.py precisely so the
    # edge points localize -> core only.
    "localize": {"core", "geo", "netmodel", "netsim", "telemetry"},
    "persist": {"core", "localize", "netmodel", "netsim", "telemetry"},
    "analysis": {"core", "netmodel"},
    "baselines": {"core", "netmodel"},
    "viz": {"core", "geo", "netmodel"},
    "experiments": {
        "analysis",
        "baselines",
        "core",
        "devices",
        "geo",
        "localize",
        "netmodel",
        "netsim",
        "persist",
        "services",
        "telemetry",
        "viz",
    },
    # The campaign service (job queue) sits ABOVE the engine: it may
    # drive the executor and report telemetry, but the engine must
    # never grow a dependency on its own front end.
    "service": {
        "core",
        "experiments",
        "geo",
        "netmodel",
        "netsim",
        "persist",
        "telemetry",
    },
    # The fact store reads campaigns (persist/experiments layers) and
    # drift plans (geo) to extract longitudinal records; nothing below
    # the CLI drives it.
    "store": {
        "core",
        "experiments",
        "geo",
        "netmodel",
        "netsim",
        "persist",
        "telemetry",
    },
    "cli": {"*"},
    # The package root re-exports the public API.
    "<root>": {"*"},
}

#: No layer may import these, ever (entry points only).
NEVER_IMPORTED = {"cli"}

#: package -> the only layers allowed to import it. Checked before the
#: per-importer allowance and regardless of a ``*`` wildcard, so even
#: ``cli``-like layers and the package root are bound by it.
RESTRICTED_IMPORTERS: Dict[str, Set[str]] = {
    "service": {"cli"},
    "store": {"cli"},
    # Localizers are an analysis product: the harness and the CLI drive
    # them, persist serializes their dataclasses — measurement layers
    # (core, netsim, geo) must stay free of localization knowledge.
    "localize": {"cli", "experiments", "persist"},
}

PACKAGE = "repro"


def _layer_of(module: str) -> Optional[str]:
    """Top-level repro subpackage of ``module``, or ``<root>``/None."""
    if module == PACKAGE:
        return "<root>"
    if not module.startswith(PACKAGE + "."):
        return None
    return module.split(".")[1]


def _expand_targets(base: str, names: Tuple[str, ...]) -> List[str]:
    """Resolve ``from <base> import <names>`` to layer-bearing modules.

    ``from .. import viz`` targets the root package, but the thing being
    imported is the ``viz`` subpackage — the edge that matters. For any
    deeper base the first component after ``repro`` already decides the
    layer, so the base alone suffices.
    """
    if base != PACKAGE or not names:
        return [base]
    return [f"{PACKAGE}.{name}" for name in names]


class _ImportCollector(ast.NodeVisitor):
    """All repro-internal imports of one module, with nesting depth.

    Each entry is ``(base_module, alias_names, lineno, module_level)``;
    ``from .. import viz`` records base ``repro`` with names
    ``("viz",)`` so the checker can resolve the alias to the actual
    subpackage being pulled in.
    """

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.module = ctx.module or ""
        self.is_package = ctx.path.name == "__init__.py"
        self.imports: List[Tuple[str, Tuple[str, ...], int, bool]] = []
        self._depth = 0

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._add(alias.name, (), node.lineno)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        target = resolve_relative(
            self.module, self.is_package, node.level, node.module
        )
        if target is not None:
            names = tuple(alias.name for alias in node.names)
            self._add(target, names, node.lineno)

    def _add(self, target: str, names: Tuple[str, ...], lineno: int) -> None:
        if target == PACKAGE or target.startswith(PACKAGE + "."):
            self.imports.append((target, names, lineno, self._depth == 0))

    def _descend(self, node) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_FunctionDef(self, node):  # noqa: N802
        self._descend(node)

    def visit_AsyncFunctionDef(self, node):  # noqa: N802
        self._descend(node)


@register
class LayerMapRule(ProjectRule):
    id = "RP401"
    name = "layer-map"
    description = (
        "Every repro-internal import must be an edge the declared layer "
        "map allows (netmodel imports nothing; netsim/devices/geo never "
        "import core/experiments/analysis; nothing imports cli)."
    )

    #: Overridable in tests.
    layer_deps = LAYER_DEPS
    never_imported = NEVER_IMPORTED
    restricted_importers = RESTRICTED_IMPORTERS

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterable[Violation]:
        violations: List[Violation] = []
        for ctx in contexts:
            if not ctx.module:
                continue
            src_layer = _layer_of(ctx.module)
            if src_layer is None:
                continue
            collector = _ImportCollector(ctx)
            collector.visit(ctx.tree)
            for target, names, lineno, _ in collector.imports:
                for resolved in _expand_targets(target, names):
                    dst_layer = _layer_of(resolved)
                    if dst_layer is None or dst_layer == src_layer:
                        continue
                    allowed = self.layer_deps.get(src_layer, set())
                    if dst_layer in self.never_imported:
                        violations.append(
                            self._violation(
                                ctx,
                                lineno,
                                f"{ctx.module} imports {resolved} — "
                                f"{dst_layer!r} is an entry point no layer "
                                "may import",
                            )
                        )
                    elif (
                        dst_layer in self.restricted_importers
                        and src_layer
                        not in self.restricted_importers[dst_layer]
                    ):
                        violations.append(
                            self._violation(
                                ctx,
                                lineno,
                                f"{ctx.module} imports {resolved} — "
                                f"{dst_layer!r} may only be imported by "
                                f"{sorted(self.restricted_importers[dst_layer])}",
                            )
                        )
                    elif (
                        dst_layer in self.layer_deps
                        and "*" not in allowed
                        and dst_layer not in allowed
                    ):
                        violations.append(
                            self._violation(
                                ctx,
                                lineno,
                                f"{ctx.module} imports {resolved} — layer "
                                f"{src_layer!r} may only import "
                                f"{sorted(allowed) or 'nothing'}",
                            )
                        )
        return violations

    def _violation(self, ctx, lineno: int, message: str) -> Violation:
        return Violation(
            rule_id=self.id,
            path=ctx.relative,
            line=lineno,
            message=message,
        )


@register
class ImportCycleRule(ProjectRule):
    id = "RP402"
    name = "import-cycle"
    description = (
        "No module-level import cycles among repro modules (function-local "
        "imports are the sanctioned runtime cycle-breaker)."
    )

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterable[Violation]:
        # Module-level import graph, with edge -> first import line.
        by_module = {ctx.module: ctx for ctx in contexts if ctx.module}
        graph: Dict[str, Dict[str, int]] = {}
        for ctx in by_module.values():
            collector = _ImportCollector(ctx)
            collector.visit(ctx.tree)
            edges = graph.setdefault(ctx.module, {})
            for target, names, lineno, module_level in collector.imports:
                if not module_level:
                    continue
                # Normalise `from pkg import name`: when pkg.name is itself
                # a module we know, the edge targets the submodule (this is
                # how `from . import x` in __init__.py files joins the
                # graph); otherwise the edge targets pkg.
                candidates = [target] + [f"{target}.{name}" for name in names]
                for resolved in candidates:
                    if resolved in by_module and resolved != ctx.module:
                        edges.setdefault(resolved, lineno)

        violations: List[Violation] = []
        seen_cycles: Set[Tuple[str, ...]] = set()
        # Iterative DFS cycle detection, deterministic order.
        WHITE, GREY, BLACK = 0, 1, 2
        color = {m: WHITE for m in graph}
        stack: List[str] = []

        def dfs(start: str) -> None:
            path: List[str] = []

            def visit(module: str) -> None:
                color[module] = GREY
                path.append(module)
                for target in sorted(graph.get(module, ())):
                    if target not in color:
                        continue
                    if color[target] == GREY:
                        cycle = tuple(path[path.index(target):] + [target])
                        key = tuple(sorted(set(cycle)))
                        if key not in seen_cycles:
                            seen_cycles.add(key)
                            ctx = by_module[cycle[0]]
                            lineno = graph[cycle[0]][cycle[1]]
                            violations.append(
                                Violation(
                                    rule_id=self.id,
                                    path=ctx.relative,
                                    line=lineno,
                                    message=(
                                        "import cycle: "
                                        + " -> ".join(cycle)
                                    ),
                                )
                            )
                    elif color[target] == WHITE:
                        visit(target)
                color[module] = BLACK
                path.pop()

            visit(start)

        for module in sorted(graph):
            if color[module] == WHITE:
                dfs(module)
        return violations
