"""RP301/RP302 — stable iteration order in result-producing modules.

Python sets iterate in hash order, which for ``str`` keys varies with
``PYTHONHASHSEED`` and across builds; a bare ``for x in some_set`` in a
module that produces campaign results is a nondeterminism bug waiting
for a hash-seed change. Dicts preserve insertion order, but a dict
*comprehension built from an unordered source* inherits that source's
order, so iterating its ``.keys()`` is equally suspect.

* RP301 — iterating directly over a set literal, set comprehension,
  ``set(...)``/``frozenset(...)`` call, or a local name bound to one,
  without a ``sorted()`` wrapper. Membership tests (``x in s``),
  ``len(s)``, and ``sorted(s)`` are all fine — only *ordered traversal*
  of an unordered container is flagged.
* RP302 — ``for k in d.keys()`` (or a comprehension over ``d.keys()``)
  where ``d`` was bound to a dict comprehension in the same scope.

The analysis is scope-local and last-assignment-wins, trading recall
for near-zero false positives — the repo convention is that *every*
cross-boundary iteration is explicitly ``sorted()``.

Scope: ``repro.netsim``, ``repro.core``, ``repro.analysis``,
``repro.experiments`` — the modules whose outputs feed persisted
results and reports.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from ..base import FileContext, FileRule, Violation, register
from .rng import in_scope

SCOPE_PREFIXES = (
    "repro.netsim",
    "repro.core",
    "repro.analysis",
    "repro.experiments",
)

_SET_CALLS = {"set", "frozenset"}

#: Consumers whose result does not depend on traversal order — feeding
#: an unordered container (or a comprehension over one) straight into
#: these pins or discards the order, so it is not a violation.
ORDER_INSENSITIVE_CONSUMERS = {
    "sorted",
    "set",
    "frozenset",
    "len",
    "sum",
    "min",
    "max",
    "any",
    "all",
    "Counter",
}


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _SET_CALLS
    )


class _ScopeVisitor(ast.NodeVisitor):
    """Walks one scope (module / function), tracking set- and
    dict-comp-bound names, and descends into nested scopes with a fresh
    tracker (closures over outer unordered names are rare enough that
    the precision loss is acceptable)."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.violations: List[Violation] = []
        self._set_names: Set[str] = set()
        self._dictcomp_names: Set[str] = set()
        # Comprehension nodes whose order is pinned/discarded by an
        # enclosing sorted()/len()/... call (tracked by identity).
        self._order_pinned: Set[int] = set()

    # -- assignments track provenance ---------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self._bind(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._bind([node.target], node.value)
        self.generic_visit(node)

    def _bind(self, targets: List[ast.expr], value: ast.expr) -> None:
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            self._set_names.discard(target.id)
            self._dictcomp_names.discard(target.id)
            if _is_set_expr(value):
                self._set_names.add(target.id)
            elif isinstance(value, ast.DictComp):
                self._dictcomp_names.add(target.id)

    # -- iteration sites ----------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ORDER_INSENSITIVE_CONSUMERS
        ):
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                    self._order_pinned.add(id(arg))
        self.generic_visit(node)

    def _visit_comprehension_generators(self, node) -> None:
        if id(node) not in self._order_pinned:
            for gen in node.generators:
                self._check_iter(gen.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node):  # noqa: N802
        self._visit_comprehension_generators(node)

    def visit_GeneratorExp(self, node):  # noqa: N802
        self._visit_comprehension_generators(node)

    def visit_DictComp(self, node):  # noqa: N802
        self._visit_comprehension_generators(node)

    def visit_SetComp(self, node):  # noqa: N802
        # Building one unordered container from another is fine; only
        # *ordered traversal* matters, so set comprehensions over sets
        # are not flagged.
        self.generic_visit(node)

    def _check_iter(self, iter_node: ast.expr) -> None:
        if _is_set_expr(iter_node):
            self._record(
                iter_node,
                "RP301",
                "iteration over an unordered set expression — wrap in "
                "sorted(...) to pin the order",
            )
        elif (
            isinstance(iter_node, ast.Name)
            and iter_node.id in self._set_names
        ):
            self._record(
                iter_node,
                "RP301",
                f"iteration over set-typed name {iter_node.id!r} — wrap in "
                "sorted(...) to pin the order",
            )
        elif (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Attribute)
            and iter_node.func.attr == "keys"
            and isinstance(iter_node.func.value, ast.Name)
            and iter_node.func.value.id in self._dictcomp_names
        ):
            self._record(
                iter_node,
                "RP302",
                f"iteration over {iter_node.func.value.id}.keys() of a "
                "comprehension-built dict — the key order is the "
                "comprehension source's order; wrap in sorted(...)",
            )

    # -- nested scopes get fresh trackers -----------------------------

    def _enter_scope(self, node) -> None:
        nested = _ScopeVisitor(self.ctx)
        for child in ast.iter_child_nodes(node):
            nested.visit(child)
        self.violations.extend(nested.violations)

    def visit_FunctionDef(self, node):  # noqa: N802
        self._enter_scope(node)

    def visit_AsyncFunctionDef(self, node):  # noqa: N802
        self._enter_scope(node)

    def _record(self, node: ast.AST, rule_id: str, message: str) -> None:
        self.violations.append(
            Violation(
                rule_id=rule_id,
                path=self.ctx.relative,
                line=node.lineno,
                message=message,
            )
        )


class _IterationRuleBase(FileRule):
    def applies_to(self, ctx: FileContext) -> bool:
        return in_scope(ctx, SCOPE_PREFIXES)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        visitor = _ScopeVisitor(ctx)
        visitor.visit(ctx.tree)
        return [v for v in visitor.violations if v.rule_id == self.id]


@register
class SetIterationRule(_IterationRuleBase):
    id = "RP301"
    name = "set-iteration-order"
    description = (
        "No direct iteration over set literals/comprehensions (or names "
        "bound to them) in result-producing modules without sorted()."
    )


@register
class DictCompKeysRule(_IterationRuleBase):
    id = "RP302"
    name = "dictcomp-keys-order"
    description = (
        "No iteration over .keys() of a comprehension-built dict without "
        "sorted() in result-producing modules."
    )
