"""Rule passes. Importing this package registers every rule.

Adding a pass: create a module here, subclass ``FileRule`` or
``ProjectRule`` with a fresh ``RPxxx`` id, decorate with ``@register``,
and import the module below. Each invariant family owns a hundred
block: RP1xx determinism clocks, RP2xx RNG discipline, RP3xx iteration
order, RP4xx layering, RP5xx shared state.
"""

from . import wallclock  # noqa: F401  (RP101)
from . import rng  # noqa: F401  (RP201-RP203)
from . import iteration  # noqa: F401  (RP301-RP302)
from . import layering  # noqa: F401  (RP401-RP402)
from . import mutable_state  # noqa: F401  (RP501-RP502)
