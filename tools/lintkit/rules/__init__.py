"""Rule passes. Importing this package registers every rule.

Adding a pass: create a module here, subclass ``FileRule``,
``ProjectRule``, or ``IndexRule`` with a fresh ``RPxxx`` id, decorate
with ``@register``, and import the module below. Each invariant family
owns a hundred block: RP0xx the framework itself (stale pragmas),
RP1xx determinism clocks, RP2xx RNG discipline, RP3xx iteration order,
RP4xx layering, RP5xx shared state, RP6xx the telemetry registry,
RP7xx serializer schema drift, RP8xx async safety, RP9xx the typed
error contract.
"""

from . import pragmas  # noqa: F401  (RP001)
from . import wallclock  # noqa: F401  (RP101)
from . import rng  # noqa: F401  (RP201-RP203)
from . import iteration  # noqa: F401  (RP301-RP302)
from . import layering  # noqa: F401  (RP401-RP402)
from . import mutable_state  # noqa: F401  (RP501-RP503)
from . import telemetry_contract  # noqa: F401  (RP601-RP603)
from . import serializers  # noqa: F401  (RP701-RP703)
from . import async_safety  # noqa: F401  (RP801-RP802)
from . import error_contract  # noqa: F401  (RP901-RP902)
