"""RP901-RP902 — the typed-error contract on user-reachable paths.

The CLI promises "a clear message and exit 2, never a traceback" for
anything a user can cause with bad inputs or a corrupt run directory.
That promise rests on two conventions these passes enforce:

* RP901 — the persistence and longitudinal layers (``repro.persist``,
  ``repro.store.*``, ``repro.geo.drift``) raise only their declared
  typed errors (``PersistError``, ``DriftError``). A raw ``ValueError``
  escaping from a load path is a traceback in the user's terminal.
  Programmer-contract raises (impossible-by-construction dispatch
  arms) are waived with a justified pragma.
* RP902 — the CLI entry point (``main`` in ``repro.cli``) must route
  every typed error through the exit-2 handler: each declared error
  type needs an ``except`` clause, and each such clause must actually
  ``return 2`` / ``sys.exit(2)``. Every subcommand dispatches through
  ``main``, so one handler covers all of them — but only if it lists
  every typed error.

RP901 resolves exception names through the phase-1 index, so an
aliased or re-exported ``PersistError`` still satisfies the contract
while a same-named local impostor in an unrelated module does not.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..base import FileContext, FileRule, IndexRule, Violation, register
from ..index import ProjectIndex

#: module (exact, or prefix for packages) -> it is in RP901 scope.
TYPED_ERROR_SCOPES: Tuple[str, ...] = (
    "repro.persist",
    "repro.store",
    "repro.geo.drift",
)

#: The canonical typed errors, by absolute dotted name.
TYPED_ERRORS: Dict[str, str] = {
    "PersistError": "repro.persist.PersistError",
    "DriftError": "repro.geo.drift.DriftError",
}

#: The CLI module and its entry point.
CLI_MODULE = "repro.cli"
CLI_ENTRY = "main"

#: Typed errors main() must handle with an exit-2 clause.
REQUIRED_HANDLED: Tuple[str, ...] = ("PersistError", "DriftError")


def _in_scope(module: Optional[str]) -> bool:
    if not module:
        return False
    return any(
        module == scope or module.startswith(scope + ".")
        for scope in TYPED_ERROR_SCOPES
    )


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


@register
class TypedErrorsOnly(IndexRule):
    id = "RP901"
    name = "typed-errors-only"
    description = (
        "persist/store/geo.drift raise only PersistError/DriftError on "
        "user-reachable paths (raw built-ins become CLI tracebacks)."
    )

    def check_index(
        self, index: ProjectIndex, contexts: Sequence[FileContext]
    ) -> Iterable[Violation]:
        allowed = set(TYPED_ERRORS.values())
        allowed_names = set(TYPED_ERRORS)
        violations: List[Violation] = []
        for ctx in contexts:
            if not _in_scope(ctx.module):
                continue
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                target = node.exc
                if isinstance(target, ast.Call):
                    target = target.func
                dotted = _dotted(target)
                if dotted is None:
                    continue  # raise of a computed expression — rare
                resolved = index.resolve_symbol(ctx.module, dotted)
                if resolved in allowed:
                    continue
                # Unresolvable names (no import table in a partial
                # fixture tree) still pass on the bare class name.
                if resolved is None and dotted.split(".")[-1] in allowed_names:
                    continue
                violations.append(
                    Violation(
                        rule_id=self.id,
                        path=ctx.relative,
                        line=node.lineno,
                        message=(
                            f"raises {dotted} — this layer's contract is "
                            f"{sorted(allowed_names)} only (wrap it, or "
                            "waive a programmer-contract raise with a "
                            "justified pragma)"
                        ),
                    )
                )
        return violations


@register
class CliRoutesTypedErrors(FileRule):
    id = "RP902"
    name = "cli-error-routing"
    description = (
        "The CLI entry point must catch every typed error "
        "(PersistError, DriftError) and turn it into message + exit 2."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module == CLI_MODULE

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        entry: Optional[ast.FunctionDef] = None
        for node in ctx.tree.body:
            if isinstance(node, ast.FunctionDef) and node.name == CLI_ENTRY:
                entry = node
        if entry is None:
            return [
                Violation(
                    rule_id=self.id,
                    path=ctx.relative,
                    line=1,
                    message=(
                        f"no {CLI_ENTRY}() entry point found to route "
                        "typed errors through"
                    ),
                )
            ]
        handled: Dict[str, ast.ExceptHandler] = {}
        for node in ast.walk(entry):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            types = (
                node.type.elts
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for type_node in types:
                dotted = _dotted(type_node)
                if dotted is not None:
                    handled.setdefault(dotted.split(".")[-1], node)

        violations: List[Violation] = []
        for required in REQUIRED_HANDLED:
            handler = handled.get(required)
            if handler is None:
                violations.append(
                    Violation(
                        rule_id=self.id,
                        path=ctx.relative,
                        line=entry.lineno,
                        message=(
                            f"{CLI_ENTRY}() does not catch {required} — "
                            "a user-reachable one tracebacks instead of "
                            "exiting 2"
                        ),
                    )
                )
            elif not self._exits_two(handler):
                violations.append(
                    Violation(
                        rule_id=self.id,
                        path=ctx.relative,
                        line=handler.lineno,
                        message=(
                            f"the {required} handler must report and "
                            "exit 2 (return 2 or sys.exit(2))"
                        ),
                    )
                )
        return violations

    @staticmethod
    def _exits_two(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if (
                isinstance(node, ast.Return)
                and isinstance(node.value, ast.Constant)
                and node.value.value == 2
            ):
                return True
            if (
                isinstance(node, ast.Call)
                and _dotted(node.func) in {"sys.exit", "exit"}
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == 2
            ):
                return True
        return False
