"""RP701-RP703 — serializer/schema drift between dataclasses and dicts.

``persist.py`` hand-writes a ``*_to_dict`` / ``*_from_dict`` pair per
persisted dataclass. The PR 8 round-trip tests catch drift at runtime
for the objects a test happens to construct; these passes catch it
statically for every pair: the dataclass's field inventory (from the
phase-1 index, inherited fields included) is matched against the key
literals the pair writes and reads.

* RP701 — a dataclass field the ``to_dict`` never writes and that is
  not declared in the module's ``SERIALIZER_EXCLUDED_FIELDS`` table
  (data silently dropped on save).
* RP702 — pair asymmetry: a key written but never read back by the
  paired ``from_dict`` (dead weight, or a forgotten reader), or read
  but never written (can only come from hand-edited files).
* RP703 — a written or read key that is not a field at all (the
  classic rename-one-side typo).

Static model: "written keys" are the immediate constant keys of dict
literals the ``to_dict`` returns (plus ``data["k"] = ...`` stores on a
returned name); "read keys" are constant subscripts / ``.get("k")``
calls on the ``from_dict``'s first parameter. Nested helper functions
are skipped — nested dataclasses get their own pair. Meta keys
(``version``) are exempt from field matching. A deliberately
unserialized field is declared per pair prefix::

    SERIALIZER_EXCLUDED_FIELDS = {"trace_result": ("sweeps_control",)}
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..base import FileContext, IndexRule, Violation, register
from ..index import ProjectIndex

#: Keys every serializer may write without a matching field.
META_KEYS = {"version"}

#: Module-level table declaring deliberately-unserialized fields.
EXCLUSIONS_CONSTANT = "SERIALIZER_EXCLUDED_FIELDS"

TO_SUFFIX = "_to_dict"
FROM_SUFFIX = "_from_dict"


def _walk_skip_nested(func: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _written_keys(func: ast.FunctionDef) -> Dict[str, int]:
    """Constant keys the function serializes, with line numbers."""
    keys: Dict[str, int] = {}
    returned_names: Set[str] = set()
    for node in _walk_skip_nested(func):
        if isinstance(node, ast.Return):
            if isinstance(node.value, ast.Dict):
                for key in node.value.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        keys.setdefault(key.value, key.lineno)
            elif isinstance(node.value, ast.Name):
                returned_names.add(node.value.id)
    if returned_names:
        for node in _walk_skip_nested(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and target.id in returned_names
                    and isinstance(node.value, ast.Dict)
                ):
                    for key in node.value.keys:
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            keys.setdefault(key.value, key.lineno)
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in returned_names
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.setdefault(target.slice.value, target.lineno)
    return keys


def _read_keys(func: ast.FunctionDef) -> Dict[str, int]:
    """Constant keys read off the function's first parameter."""
    keys: Dict[str, int] = {}
    if not func.args.args:
        return keys
    param = func.args.args[0].arg
    for node in _walk_skip_nested(func):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == param
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            keys.setdefault(node.slice.value, node.lineno)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == param
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            keys.setdefault(node.args[0].value, node.lineno)
    return keys


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        parts: List[str] = []
        cur: ast.AST = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            parts.append(cur.id)
            return ".".join(reversed(parts))
    return None


class _Pair:
    """One prefix's to_dict/from_dict functions in a module."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self.to_func: Optional[ast.FunctionDef] = None
        self.from_func: Optional[ast.FunctionDef] = None

    @property
    def exclusion_key(self) -> str:
        return self.prefix.lstrip("_")


def _collect_pairs(tree: ast.Module) -> List[_Pair]:
    pairs: Dict[str, _Pair] = {}
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        if node.name.endswith(TO_SUFFIX):
            prefix = node.name[: -len(TO_SUFFIX)]
            pairs.setdefault(prefix, _Pair(prefix)).to_func = node
        elif node.name.endswith(FROM_SUFFIX):
            prefix = node.name[: -len(FROM_SUFFIX)]
            pairs.setdefault(prefix, _Pair(prefix)).from_func = node
    return [pairs[k] for k in sorted(pairs)]


def _pair_dataclass(
    index: ProjectIndex, module: str, pair: _Pair
) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """(dataclass name, full field inventory) for a pair, if resolvable."""
    annotation: Optional[str] = None
    if pair.to_func is not None and pair.to_func.args.args:
        annotation = _annotation_name(pair.to_func.args.args[0].annotation)
    if annotation is None and pair.from_func is not None:
        annotation = _annotation_name(pair.from_func.returns)
    if annotation is None:
        return None
    fields = index.dataclass_fields(module, annotation)
    if fields is None:
        return None
    return annotation.strip("'\""), fields


def _excluded_fields(
    index: ProjectIndex, module: str, pair: _Pair
) -> Set[str]:
    info = index.modules.get(module)
    if info is None:
        return set()
    table = info.constants.get(EXCLUSIONS_CONSTANT)
    if not isinstance(table, dict):
        return set()
    declared = table.get(pair.exclusion_key, ())
    return set(declared) if isinstance(declared, (list, tuple, set)) else set()


def _pairs_with_fields(index: ProjectIndex, ctx: FileContext):
    """Analyzable (pair, dataclass name, fields) triples of one module."""
    if not ctx.module:
        return
    for pair in _collect_pairs(ctx.tree):
        resolved = _pair_dataclass(index, ctx.module, pair)
        if resolved is None:
            continue  # dispatcher or non-dataclass helper
        yield pair, resolved[0], resolved[1]


@register
class UnserializedField(IndexRule):
    id = "RP701"
    name = "serializer-field-dropped"
    description = (
        "Every dataclass field must be written by its *_to_dict or be "
        "declared in SERIALIZER_EXCLUDED_FIELDS (silent data loss on "
        "save otherwise)."
    )

    def check_index(
        self, index: ProjectIndex, contexts: Sequence[FileContext]
    ) -> Iterable[Violation]:
        violations: List[Violation] = []
        for ctx in contexts:
            for pair, cls_name, fields in _pairs_with_fields(index, ctx):
                if pair.to_func is None:
                    continue
                written = _written_keys(pair.to_func)
                if not written:
                    continue  # opaque serializer (generic/dynamic keys)
                excluded = _excluded_fields(index, ctx.module, pair)
                for field_name in fields:
                    if field_name in written or field_name in excluded:
                        continue
                    violations.append(
                        Violation(
                            rule_id=self.id,
                            path=ctx.relative,
                            line=pair.to_func.lineno,
                            message=(
                                f"{cls_name}.{field_name} is never "
                                f"serialized by {pair.to_func.name} — "
                                "write it, or declare it in "
                                f"{EXCLUSIONS_CONSTANT}"
                                f"[{pair.exclusion_key!r}]"
                            ),
                        )
                    )
        return violations


@register
class SerializerPairAsymmetry(IndexRule):
    id = "RP702"
    name = "serializer-pair-asymmetry"
    description = (
        "Keys written by *_to_dict and keys read by the paired "
        "*_from_dict must match (meta keys aside) — one-sided keys are "
        "drift."
    )

    def check_index(
        self, index: ProjectIndex, contexts: Sequence[FileContext]
    ) -> Iterable[Violation]:
        violations: List[Violation] = []
        for ctx in contexts:
            for pair, cls_name, _fields in _pairs_with_fields(index, ctx):
                if pair.to_func is None or pair.from_func is None:
                    continue
                written = _written_keys(pair.to_func)
                read = _read_keys(pair.from_func)
                if not written or not read:
                    continue
                for key in sorted(set(written) - set(read) - META_KEYS):
                    violations.append(
                        Violation(
                            rule_id=self.id,
                            path=ctx.relative,
                            line=written[key],
                            message=(
                                f"key {key!r} is written by "
                                f"{pair.to_func.name} but never read by "
                                f"{pair.from_func.name}"
                            ),
                        )
                    )
                for key in sorted(set(read) - set(written) - META_KEYS):
                    violations.append(
                        Violation(
                            rule_id=self.id,
                            path=ctx.relative,
                            line=read[key],
                            message=(
                                f"key {key!r} is read by "
                                f"{pair.from_func.name} but never "
                                f"written by {pair.to_func.name}"
                            ),
                        )
                    )
        return violations


@register
class SerializerUnknownKey(IndexRule):
    id = "RP703"
    name = "serializer-unknown-key"
    description = (
        "Serialized keys must be dataclass fields (or declared meta "
        "keys) — an unknown key is a rename-one-side typo."
    )

    def check_index(
        self, index: ProjectIndex, contexts: Sequence[FileContext]
    ) -> Iterable[Violation]:
        violations: List[Violation] = []
        for ctx in contexts:
            for pair, cls_name, fields in _pairs_with_fields(index, ctx):
                excluded = _excluded_fields(index, ctx.module, pair)
                known = set(fields) | META_KEYS | excluded
                sides = []
                if pair.to_func is not None:
                    sides.append(
                        (pair.to_func.name, "writes", _written_keys(pair.to_func))
                    )
                if pair.from_func is not None:
                    sides.append(
                        (pair.from_func.name, "reads", _read_keys(pair.from_func))
                    )
                for func_name, verb, keys in sides:
                    for key in sorted(set(keys) - known):
                        violations.append(
                            Violation(
                                rule_id=self.id,
                                path=ctx.relative,
                                line=keys[key],
                                message=(
                                    f"{func_name} {verb} key {key!r} "
                                    f"which is not a field of {cls_name}"
                                ),
                            )
                        )
        return violations
