"""RP201/RP202/RP203 — seeded-RNG discipline in ``repro``.

Every random draw in the reproduction must come from an explicitly
seeded ``random.Random(seed)`` instance, threaded from the world spec
(PR 1's serial/parallel bit-identity contract and PR 2's salted fault
stream both depend on it). Three ways a stray draw sneaks in:

* RP201 — module-level ``random.*`` calls (``random.random()``,
  ``random.choice()``, ``random.SystemRandom()``...): they draw from the
  interpreter-global Mersenne Twister whose state depends on import
  order and on every other caller in the process.
* RP202 — ``random.Random()`` with no seed argument: seeds from the OS
  entropy pool, different every run.
* RP203 — ``random.seed(...)``: mutates the *global* RNG underneath
  every other module, so even a seeded call is cross-contamination.

Aliased imports (``import random as rnd``, ``from random import
choice``) are tracked the same way RP101 tracks ``time`` aliases.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from ..base import FileContext, FileRule, Violation, register

#: Rule scope: any module in these packages (dotted-prefix match).
SCOPE_PREFIXES = ("repro",)


def in_scope(ctx: FileContext, prefixes=SCOPE_PREFIXES) -> bool:
    if ctx.module is None:
        return True  # free-standing fixture files are linted as-is
    return any(
        ctx.module == p or ctx.module.startswith(p + ".") for p in prefixes
    )


class _RngVisitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.violations: List[Violation] = []
        self._module_aliases: Set[str] = set()
        # name -> original attr for `from random import X [as Y]`
        self._direct: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self._module_aliases.add(alias.asname or "random")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                self._direct[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self._module_aliases
        ):
            self._check(node, func.attr, f"random.{func.attr}")
        elif isinstance(func, ast.Name) and func.id in self._direct:
            original = self._direct[func.id]
            self._check(node, original, f"random.{original} (as {func.id})")
        self.generic_visit(node)

    def _check(self, node: ast.Call, attr: str, shown: str) -> None:
        if attr == "Random":
            if not node.args and not node.keywords:
                self._record(
                    node,
                    "RP202",
                    f"unseeded {shown}() — seeds from OS entropy; pass an "
                    "explicit seed derived from the world spec",
                )
            return  # random.Random(seed) is the sanctioned form
        if attr == "seed":
            self._record(
                node,
                "RP203",
                f"{shown}() mutates the process-global RNG — construct a "
                "local random.Random(seed) instead",
            )
            return
        self._record(
            node,
            "RP201",
            f"global-RNG call {shown}() — draw from an explicitly seeded "
            "random.Random(seed) instance",
        )

    def _record(self, node: ast.AST, rule_id: str, message: str) -> None:
        self.violations.append(
            Violation(
                rule_id=rule_id,
                path=self.ctx.relative,
                line=node.lineno,
                message=message,
            )
        )


class _RngRuleBase(FileRule):
    def applies_to(self, ctx: FileContext) -> bool:
        return in_scope(ctx)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        visitor = _RngVisitor(ctx)
        visitor.visit(ctx.tree)
        return [v for v in visitor.violations if v.rule_id == self.id]


@register
class GlobalRngCallRule(_RngRuleBase):
    id = "RP201"
    name = "rng-global-call"
    description = (
        "No module-level random.* draws in repro — only explicitly seeded "
        "random.Random(seed) instances."
    )


@register
class UnseededRandomRule(_RngRuleBase):
    id = "RP202"
    name = "rng-unseeded"
    description = "random.Random() must be constructed with an explicit seed."


@register
class GlobalSeedRule(_RngRuleBase):
    id = "RP203"
    name = "rng-global-seed"
    description = (
        "random.seed() mutates the interpreter-global RNG and is forbidden."
    )
