"""RP601-RP603 — the telemetry name registry contract.

The telemetry layer identifies every counter/span/event by a string
name; reports, the service stats surface, and the fact store all key
off those names, so a typo silently forks a metric. The declared
registry (``src/repro/telemetry_registry.py``) is the single source of
truth; these passes hold call sites and registry to each other:

* RP601 — a literal telemetry name not declared in the registry
  (unregistered counter, or a typo of a registered one).
* RP602 — a telemetry name computed at runtime outside a whitelisted
  helper (``NONLITERAL_NAME_SITES``); computed names defeat the
  registry check, so each such site needs a declared justification.
* RP603 — a registry entry with no remaining literal call site: stale
  documentation (unless declared in ``INDIRECT_COUNTERS`` as emitted
  through a whitelisted dynamic site).

All three run over the phase-1 :class:`ProjectIndex` telemetry
call-site table, so they see every module at once and cost no extra
parse. The telemetry implementation itself (``repro.telemetry``) is
exempt — its span bookkeeping re-emits ``self._name``.
"""

from __future__ import annotations

import ast
import difflib
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..base import FileContext, IndexRule, Violation, register
from ..index import ProjectIndex, TelemetryCall

#: Where the declared registry lives inside the linted tree.
REGISTRY_MODULE = "repro.telemetry_registry"

#: Modules exempt from the contract: the registry itself and the
#: telemetry implementation (spans re-emit their own stored name).
EXEMPT_MODULES = {REGISTRY_MODULE, "repro.telemetry"}

#: API -> (exact-table name, dynamic-table name) in the registry.
API_SECTIONS: Dict[str, Tuple[str, str]] = {
    "count": ("COUNTERS", "DYNAMIC_COUNTERS"),
    "span": ("SPANS", "DYNAMIC_SPANS"),
    "add_virtual": ("SPANS", "DYNAMIC_SPANS"),
    "add_wall": ("SPANS", "DYNAMIC_SPANS"),
    "event": ("EVENTS", ""),
}


def _registry_tables(
    index: ProjectIndex, package: str
) -> Dict[str, object]:
    info = index.modules.get(f"{package}.telemetry_registry")
    return dict(info.constants) if info is not None else {}


def _scoped_calls(
    index: ProjectIndex, package: str
) -> List[TelemetryCall]:
    prefix = package + "."
    return [
        call
        for call in index.telemetry_calls
        if (call.module == package or call.module.startswith(prefix))
        and call.module
        not in {f"{package}.telemetry", f"{package}.telemetry_registry"}
    ]


def _packages(index: ProjectIndex) -> List[str]:
    """Top-level packages that declare a telemetry registry."""
    return sorted(
        {
            module.rsplit(".", 1)[0]
            for module in index.modules
            if module.endswith(".telemetry_registry")
        }
    )


class _RegistryView:
    """The declared tables of one package's registry, pre-resolved."""

    def __init__(self, tables: Dict[str, object]) -> None:
        def table(name: str) -> Dict[str, str]:
            value = tables.get(name)
            return dict(value) if isinstance(value, dict) else {}

        self.exact: Dict[str, Dict[str, str]] = {
            name: table(name) for name in ("COUNTERS", "SPANS", "EVENTS")
        }
        self.dynamic: Dict[str, Dict[str, str]] = {
            name: table(name)
            for name in ("DYNAMIC_COUNTERS", "DYNAMIC_SPANS")
        }
        indirect = tables.get("INDIRECT_COUNTERS")
        self.indirect: Set[str] = (
            set(indirect) if isinstance(indirect, (set, frozenset, list, tuple)) else set()
        )
        sites = tables.get("NONLITERAL_NAME_SITES")
        self.nonliteral_sites: Set[str] = (
            set(sites) if isinstance(sites, (dict, set, list, tuple)) else set()
        )

    def covers(self, api: str, name: str) -> bool:
        exact_name, dynamic_name = API_SECTIONS[api]
        if name in self.exact.get(exact_name, {}):
            return True
        dynamics = self.dynamic.get(dynamic_name, {}) if dynamic_name else {}
        return any(name.startswith(prefix) for prefix in dynamics)


@register
class UnregisteredTelemetryName(IndexRule):
    id = "RP601"
    name = "telemetry-registry"
    description = (
        "Every literal telemetry counter/span/event name must be "
        "declared in the telemetry_registry tables (typos fork metrics "
        "silently)."
    )

    def check_index(
        self, index: ProjectIndex, contexts: Sequence[FileContext]
    ) -> Iterable[Violation]:
        violations: List[Violation] = []
        for package in _packages(index):
            view = _RegistryView(_registry_tables(index, package))
            known: List[str] = [
                name
                for table in view.exact.values()
                for name in table
            ]
            for call in _scoped_calls(index, package):
                for name in call.names:
                    if view.covers(call.api, name):
                        continue
                    hint = ""
                    close = difflib.get_close_matches(name, known, n=1)
                    if close:
                        hint = f" (did you mean {close[0]!r}?)"
                    violations.append(
                        Violation(
                            rule_id=self.id,
                            path=Path(call.path),
                            line=call.lineno,
                            message=(
                                f"telemetry {call.api} name {name!r} is "
                                "not declared in "
                                f"{package}.telemetry_registry{hint}"
                            ),
                        )
                    )
        # A tree that emits telemetry but declares no registry at all
        # cannot satisfy the contract.
        if not _packages(index):
            for call in index.telemetry_calls[:1]:
                violations.append(
                    Violation(
                        rule_id=self.id,
                        path=Path(call.path),
                        line=call.lineno,
                        message=(
                            "telemetry is emitted but no "
                            "telemetry_registry module declares the "
                            "name tables"
                        ),
                    )
                )
        return violations


@register
class NonLiteralTelemetryName(IndexRule):
    id = "RP602"
    name = "telemetry-literal-names"
    description = (
        "Telemetry names must be string literals except in helpers "
        "whitelisted (with justification) in NONLITERAL_NAME_SITES."
    )

    def check_index(
        self, index: ProjectIndex, contexts: Sequence[FileContext]
    ) -> Iterable[Violation]:
        violations: List[Violation] = []
        for package in _packages(index):
            view = _RegistryView(_registry_tables(index, package))
            for call in _scoped_calls(index, package):
                if call.names:
                    continue
                site = f"{call.module}:{call.function}"
                if site in view.nonliteral_sites:
                    continue
                violations.append(
                    Violation(
                        rule_id=self.id,
                        path=Path(call.path),
                        line=call.lineno,
                        message=(
                            f"telemetry {call.api} name is computed "
                            f"({call.expr}); whitelist {site!r} in "
                            "NONLITERAL_NAME_SITES with a justification "
                            "or use a literal"
                        ),
                    )
                )
        return violations


@register
class StaleRegistryEntry(IndexRule):
    id = "RP603"
    name = "telemetry-stale-entry"
    description = (
        "Every exact registry entry needs a live literal call site "
        "(or an INDIRECT_COUNTERS declaration) — dead entries are "
        "documentation rot."
    )

    def check_index(
        self, index: ProjectIndex, contexts: Sequence[FileContext]
    ) -> Iterable[Violation]:
        violations: List[Violation] = []
        by_module = {ctx.module: ctx for ctx in contexts if ctx.module}
        for package in _packages(index):
            registry_module = f"{package}.telemetry_registry"
            view = _RegistryView(_registry_tables(index, package))
            used: Dict[str, Set[str]] = {
                "COUNTERS": set(),
                "SPANS": set(),
                "EVENTS": set(),
            }
            for call in _scoped_calls(index, package):
                exact_name, _ = API_SECTIONS[call.api]
                used[exact_name].update(call.names)
            key_lines = self._key_lines(by_module.get(registry_module))
            reg_info = index.modules.get(registry_module)
            path = Path(reg_info.relative if reg_info else registry_module)
            for table_name, table in sorted(view.exact.items()):
                for name in table:
                    if name in used[table_name]:
                        continue
                    if (
                        table_name == "COUNTERS"
                        and name in view.indirect
                    ):
                        continue
                    violations.append(
                        Violation(
                            rule_id=self.id,
                            path=path,
                            line=key_lines.get((table_name, name), 1),
                            message=(
                                f"registry entry {name!r} in {table_name} "
                                "has no literal call site — delete it or "
                                "declare it in INDIRECT_COUNTERS"
                            ),
                        )
                    )
        return violations

    @staticmethod
    def _key_lines(ctx) -> Dict[Tuple[str, str], int]:
        """(table, key) -> line of the key literal in the registry."""
        lines: Dict[Tuple[str, str], int] = {}
        if ctx is None:
            return lines
        for node in ctx.tree.body:
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign):
                target = node.target
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if isinstance(value, ast.Dict):
                for key in value.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        lines[(target.id, key.value)] = key.lineno
        return lines
