"""File discovery and the multi-pass driver.

``walk_paths`` turns CLI arguments (files or directories) into parsed
:class:`FileContext` objects — one ``ast.parse`` per file no matter how
many passes run. ``run_rules`` then applies every selected rule:
per-file rules stream over each context, project rules see the whole
set at once (for DAG/cycle analysis). Pragma suppression is applied
centrally here so individual rules never have to think about it.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from .base import FileContext, FileRule, ProjectRule, Rule, Violation

#: Directories never descended into.
SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", "build", "dist"}


def module_name(path: Path) -> Optional[str]:
    """Dotted module name for ``path``, walking up while __init__.py exists.

    ``src/repro/netsim/simulator.py`` -> ``repro.netsim.simulator``;
    a free-standing script (no enclosing package) -> ``None``.
    """
    parts: List[str] = []
    if path.name != "__init__.py":
        parts.append(path.stem)
    parent = path.parent
    found_package = False
    while (parent / "__init__.py").exists():
        found_package = True
        parts.append(parent.name)
        parent = parent.parent
    if not found_package:
        return None
    return ".".join(reversed(parts))


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path


def load_context(path: Path, root: Optional[Path] = None) -> FileContext:
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    relative = path
    if root is not None:
        try:
            relative = path.resolve().relative_to(root.resolve())
        except ValueError:
            relative = path
    return FileContext(path, relative, source, tree, module_name(path))


def walk_paths(
    paths: Sequence[Path], root: Optional[Path] = None
) -> Tuple[List[FileContext], List[Violation]]:
    """Parse every file once; syntax errors become RP000 violations."""
    contexts: List[FileContext] = []
    errors: List[Violation] = []
    for path in iter_python_files(paths):
        try:
            contexts.append(load_context(path, root))
        except SyntaxError as exc:
            errors.append(
                Violation(
                    rule_id="RP000",
                    path=path,
                    line=exc.lineno or 1,
                    message=f"syntax error: {exc.msg}",
                )
            )
    return contexts, errors


def run_rules(
    contexts: Sequence[FileContext], rules: Sequence[Rule]
) -> List[Violation]:
    violations: List[Violation] = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            found = rule.check_project(
                [ctx for ctx in contexts if rule.applies_to(ctx)]
            )
            by_path = {ctx.relative: ctx for ctx in contexts}
            for violation in found:
                ctx = by_path.get(violation.path)
                if ctx is not None and ctx.is_suppressed(
                    violation.rule_id, violation.line
                ):
                    continue
                violations.append(violation)
        elif isinstance(rule, FileRule):
            for ctx in contexts:
                if not rule.applies_to(ctx):
                    continue
                for violation in rule.check(ctx):
                    if ctx.is_suppressed(violation.rule_id, violation.line):
                        continue
                    violations.append(violation)
    violations.sort(key=lambda v: (str(v.path), v.line, v.rule_id))
    return violations
