"""File discovery and the two-phase multi-pass driver.

``walk_paths`` turns CLI arguments (files or directories) into parsed
:class:`FileContext` objects — one ``ast.parse`` per file no matter how
many passes run. Files the parser cannot consume (syntax errors,
non-UTF-8 bytes, unreadable paths) surface as clean per-file ``RP000``
diagnostics, never tracebacks.

``run_rules`` then applies every selected rule. Per-file rules stream
over each context; project rules see the whole set at once; index
rules (phase 2) share one :class:`~tools.lintkit.index.ProjectIndex`
built lazily when the first one is selected. Pragma suppression is
applied centrally here so individual rules never have to think about
it — and because it is central, the walker also knows which pragmas
never fired, which it reports as warning-severity ``RP001`` findings.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from .base import (
    FileContext,
    FileRule,
    IndexRule,
    ProjectRule,
    Rule,
    Violation,
)
from .index import ProjectIndex

#: Directories never descended into.
SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", "build", "dist"}

#: Rule id of the stale-pragma pass (driven here, not by a checker —
#: only the walker knows which suppressions fired).
UNUSED_PRAGMA_ID = "RP001"


def module_name(path: Path) -> Optional[str]:
    """Dotted module name for ``path``, walking up while __init__.py exists.

    ``src/repro/netsim/simulator.py`` -> ``repro.netsim.simulator``;
    a free-standing script (no enclosing package) -> ``None``.
    """
    parts: List[str] = []
    if path.name != "__init__.py":
        parts.append(path.stem)
    parent = path.parent
    found_package = False
    while (parent / "__init__.py").exists():
        found_package = True
        parts.append(parent.name)
        parent = parent.parent
    if not found_package:
        return None
    return ".".join(reversed(parts))


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path


def _relative(path: Path, root: Optional[Path]) -> Path:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve())
        except ValueError:
            pass
    return path


def load_context(path: Path, root: Optional[Path] = None) -> FileContext:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return FileContext(
        path, _relative(path, root), source, tree, module_name(path)
    )


def walk_paths(
    paths: Sequence[Path], root: Optional[Path] = None
) -> Tuple[List[FileContext], List[Violation]]:
    """Parse every file once; unreadable files become RP000 violations.

    Covered failure modes: syntax errors (with the offending line),
    files that are not valid UTF-8, files containing NUL bytes, and
    OS-level read failures (permissions, vanished files). Each yields
    one diagnostic and exit code 1 — never a traceback (exit 2).
    """
    contexts: List[FileContext] = []
    errors: List[Violation] = []

    def diag(path: Path, line: int, message: str) -> None:
        errors.append(
            Violation(
                rule_id="RP000",
                path=_relative(path, root),
                line=line,
                message=message,
            )
        )

    for path in iter_python_files(paths):
        try:
            contexts.append(load_context(path, root))
        except SyntaxError as exc:
            diag(path, exc.lineno or 1, f"syntax error: {exc.msg}")
        except UnicodeDecodeError as exc:
            diag(
                path,
                1,
                f"cannot decode file as UTF-8 ({exc.reason} at byte "
                f"{exc.start})",
            )
        except ValueError as exc:
            # ast.parse refuses NUL bytes with a bare ValueError.
            diag(path, 1, f"cannot parse file: {exc}")
        except OSError as exc:
            diag(path, 1, f"cannot read file: {exc.strerror or exc}")
    return contexts, errors


def run_rules(
    contexts: Sequence[FileContext], rules: Sequence[Rule]
) -> List[Violation]:
    violations: List[Violation] = []
    by_path = {ctx.relative: ctx for ctx in contexts}
    index: Optional[ProjectIndex] = None

    def keep(violation: Violation) -> bool:
        ctx = by_path.get(violation.path)
        return ctx is None or not ctx.is_suppressed(
            violation.rule_id, violation.line
        )

    for rule in rules:
        if isinstance(rule, IndexRule):
            if index is None:
                index = ProjectIndex.build(contexts)
            scoped = [ctx for ctx in contexts if rule.applies_to(ctx)]
            violations.extend(
                v for v in rule.check_index(index, scoped) if keep(v)
            )
        elif isinstance(rule, ProjectRule):
            scoped = [ctx for ctx in contexts if rule.applies_to(ctx)]
            violations.extend(
                v for v in rule.check_project(scoped) if keep(v)
            )
        elif isinstance(rule, FileRule):
            for ctx in contexts:
                if not rule.applies_to(ctx):
                    continue
                for violation in rule.check(ctx):
                    if ctx.is_suppressed(violation.rule_id, violation.line):
                        continue
                    violations.append(violation)

    # Stale-pragma pass: runs last, once every selected rule has had
    # its chance to fire a suppression. Only rule ids that actually ran
    # are considered, so `--select RP101` never convicts RP5xx pragmas.
    active_ids = {rule.id for rule in rules}
    if UNUSED_PRAGMA_ID in active_ids:
        for ctx in contexts:
            for line, rule_id in ctx.unused_pragma_ids(active_ids):
                violation = Violation(
                    rule_id=UNUSED_PRAGMA_ID,
                    path=ctx.relative,
                    line=line,
                    message=(
                        f"pragma suppresses nothing: no {rule_id} finding "
                        "on the shielded line(s) — delete the stale "
                        "suppression"
                    ),
                    severity="warning",
                )
                if keep(violation):
                    violations.append(violation)

    violations.sort(key=lambda v: (str(v.path), v.line, v.rule_id))
    return violations
