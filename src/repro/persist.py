"""Persistence: serialize measurement results to JSON(L) and back.

The real measurement platforms publish their raw data (Censored Planet
"raw data" releases, OONI measurements); this module provides the same
capability for campaign outputs:

* one JSON object per CenTrace result / CenFuzz report / banner grab,
* directory-level save/load for a whole campaign
  (``traces.jsonl`` / ``fuzz.jsonl`` / ``banners.jsonl`` / ``meta.json``),
* loaded results reconstruct the dataclasses the analysis pipeline
  consumes, so saved campaigns can be re-clustered offline.

Sweep-level packet observations are summarized (hop maps and
terminating responses), not archived byte-for-byte.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from .core.cenfuzz.runner import (
    EndpointFuzzReport,
    FuzzProbeOutcome,
    PermutationResult,
)
from .core.cenprobe.scanner import BannerGrab, ProbeReport
from .core.centrace.results import CenTraceResult, HopInfo
from .netmodel.icmp import QuoteDelta
from .telemetry import RunReport

# 2: adds optional report.json (telemetry run report) + has_report meta.
# Version-1 directories (no report) load unchanged.
FORMAT_VERSION = 2


# ---------------------------------------------------------------------------
# CenTrace results
# ---------------------------------------------------------------------------


def trace_result_to_dict(result: CenTraceResult) -> Dict:
    """Serialize a classified CenTrace result (analysis-complete)."""
    def hop(info: Optional[HopInfo]) -> Optional[Dict]:
        if info is None:
            return None
        return {
            "ttl": info.ttl,
            "ip": info.ip,
            "asn": info.asn,
            "as_name": info.as_name,
            "country": info.country,
        }

    def quote(delta: Optional[QuoteDelta]) -> Optional[Dict]:
        if delta is None:
            return None
        return {
            "tos_changed": delta.tos_changed,
            "ip_flags_changed": delta.ip_flags_changed,
            "ttl_delta": delta.ttl_delta,
            "identification_changed": delta.identification_changed,
            "length_changed": delta.length_changed,
            "transport_bytes_quoted": delta.transport_bytes_quoted,
            "follows_rfc792": delta.follows_rfc792,
            "payload_modified": delta.payload_modified,
        }

    return {
        "version": FORMAT_VERSION,
        "endpoint_ip": result.endpoint_ip,
        "endpoint_asn": result.endpoint_asn,
        "test_domain": result.test_domain,
        "protocol": result.protocol,
        "blocked": result.blocked,
        "valid": result.valid,
        "degraded": result.degraded,
        "blocking_type": result.blocking_type,
        "terminating_ttl": result.terminating_ttl,
        "endpoint_distance": result.endpoint_distance,
        "blocking_hop": hop(result.blocking_hop),
        "location_class": result.location_class,
        "in_path": result.in_path,
        "hops_from_endpoint": result.hops_from_endpoint,
        "ttl_copy_detected": result.ttl_copy_detected,
        "corrected_device_distance": result.corrected_device_distance,
        "injected_ip_id": result.injected_ip_id,
        "injected_ip_tos": result.injected_ip_tos,
        "injected_ip_flags": result.injected_ip_flags,
        "injected_ttl": result.injected_ttl,
        "injected_initial_ttl": result.injected_initial_ttl,
        "injected_tcp_flags": result.injected_tcp_flags,
        "injected_tcp_window": result.injected_tcp_window,
        "injected_tcp_options": list(result.injected_tcp_options),
        "blockpage_fingerprint": result.blockpage_fingerprint,
        "quote_delta": quote(result.quote_delta),
        "control_hops": {
            str(ttl): counts for ttl, counts in result.control_hops.items()
        },
    }


def trace_result_from_dict(data: Dict) -> CenTraceResult:
    """Reconstruct a CenTrace result (sweep transcripts excluded)."""
    result = CenTraceResult(
        endpoint_ip=data["endpoint_ip"],
        endpoint_asn=data.get("endpoint_asn"),
        test_domain=data["test_domain"],
        protocol=data["protocol"],
        blocked=data["blocked"],
        valid=data.get("valid", True),
        degraded=data.get("degraded", False),
        blocking_type=data["blocking_type"],
        terminating_ttl=data.get("terminating_ttl"),
        endpoint_distance=data.get("endpoint_distance"),
        location_class=data.get("location_class"),
        in_path=data.get("in_path"),
        hops_from_endpoint=data.get("hops_from_endpoint"),
        ttl_copy_detected=data.get("ttl_copy_detected", False),
        corrected_device_distance=data.get("corrected_device_distance"),
        injected_ip_id=data.get("injected_ip_id"),
        injected_ip_tos=data.get("injected_ip_tos"),
        injected_ip_flags=data.get("injected_ip_flags"),
        injected_ttl=data.get("injected_ttl"),
        injected_initial_ttl=data.get("injected_initial_ttl"),
        injected_tcp_flags=data.get("injected_tcp_flags"),
        injected_tcp_window=data.get("injected_tcp_window"),
        injected_tcp_options=tuple(data.get("injected_tcp_options", ())),
        blockpage_fingerprint=data.get("blockpage_fingerprint"),
    )
    hop = data.get("blocking_hop")
    if hop is not None:
        result.blocking_hop = HopInfo(
            ttl=hop["ttl"],
            ip=hop.get("ip"),
            asn=hop.get("asn"),
            as_name=hop.get("as_name"),
            country=hop.get("country"),
        )
    quote = data.get("quote_delta")
    if quote is not None:
        result.quote_delta = QuoteDelta(
            tos_changed=quote["tos_changed"],
            ip_flags_changed=quote["ip_flags_changed"],
            ttl_delta=quote.get("ttl_delta", 0),
            identification_changed=quote.get("identification_changed", False),
            length_changed=quote.get("length_changed", False),
            transport_bytes_quoted=quote.get("transport_bytes_quoted", 0),
            follows_rfc792=quote.get("follows_rfc792", False),
            payload_modified=quote.get("payload_modified", False),
        )
    result.control_hops = {
        int(ttl): counts
        for ttl, counts in data.get("control_hops", {}).items()
    }
    return result


# ---------------------------------------------------------------------------
# CenFuzz reports
# ---------------------------------------------------------------------------


def _outcome_to_dict(outcome: FuzzProbeOutcome) -> Dict:
    return {
        "outcome": outcome.outcome,
        "status_code": outcome.status_code,
        "served_vhost": outcome.served_vhost,
        "reprobed": outcome.reprobed,
    }


def _outcome_from_dict(data: Dict) -> FuzzProbeOutcome:
    return FuzzProbeOutcome(
        outcome=data["outcome"],
        status_code=data.get("status_code"),
        served_vhost=data.get("served_vhost"),
        reprobed=data.get("reprobed", False),
    )


def fuzz_report_to_dict(report: EndpointFuzzReport) -> Dict:
    return {
        "version": FORMAT_VERSION,
        "endpoint_ip": report.endpoint_ip,
        "test_domain": report.test_domain,
        "protocol": report.protocol,
        "normal_test": _outcome_to_dict(report.normal_test),
        "normal_control": _outcome_to_dict(report.normal_control),
        "degraded": report.degraded,
        "results": [
            {
                "strategy": r.strategy,
                "label": r.label,
                "successful": r.successful,
                "unsuccessful": r.unsuccessful,
                "circumvented": r.circumvented,
                "degraded": r.degraded,
                "test": _outcome_to_dict(r.test),
                "control": _outcome_to_dict(r.control),
            }
            for r in report.results
        ],
    }


def fuzz_report_from_dict(data: Dict) -> EndpointFuzzReport:
    report = EndpointFuzzReport(
        endpoint_ip=data["endpoint_ip"],
        test_domain=data["test_domain"],
        protocol=data["protocol"],
        normal_test=_outcome_from_dict(data["normal_test"]),
        normal_control=_outcome_from_dict(data["normal_control"]),
        degraded=data.get("degraded", False),
    )
    for entry in data["results"]:
        report.results.append(
            PermutationResult(
                endpoint_ip=report.endpoint_ip,
                test_domain=report.test_domain,
                strategy=entry["strategy"],
                label=entry["label"],
                protocol=report.protocol,
                normal_blocked=report.normal_blocked,
                test=_outcome_from_dict(entry["test"]),
                control=_outcome_from_dict(entry["control"]),
                successful=entry["successful"],
                unsuccessful=entry["unsuccessful"],
                circumvented=entry["circumvented"],
                degraded=entry.get("degraded", False),
            )
        )
    return report


# ---------------------------------------------------------------------------
# Work-unit results (service streaming delivery)
# ---------------------------------------------------------------------------


def unit_result_to_dict(kind: str, result) -> Dict:
    """Serialize one executor work-unit result by kind.

    The campaign service delivers results per work unit rather than per
    campaign; this dispatches to the same serializers ``save_campaign``
    uses, so a streamed payload is byte-identical to the corresponding
    record in a directly-saved campaign.
    """
    if kind == "trace":
        return trace_result_to_dict(result)
    if kind == "fuzz":
        return fuzz_report_to_dict(result)
    raise ValueError(f"unknown work-unit kind {kind!r}")


# ---------------------------------------------------------------------------
# CenProbe reports
# ---------------------------------------------------------------------------


def probe_report_to_dict(report: ProbeReport) -> Dict:
    return {
        "version": FORMAT_VERSION,
        "ip": report.ip,
        "reachable": report.reachable,
        "open_ports": list(report.open_ports),
        "grabs": [
            {
                "port": g.port,
                "protocol": g.protocol,
                "banner": g.banner,
                "response": g.response,
            }
            for g in report.grabs
        ],
        "vendor": report.vendor,
        "matched_rule": report.matched_rule,
        "other_identifications": list(report.other_identifications),
        "os_features": dict(report.os_features),
        "os_name": report.os_name,
    }


def probe_report_from_dict(data: Dict) -> ProbeReport:
    report = ProbeReport(
        ip=data["ip"],
        reachable=data["reachable"],
        open_ports=list(data["open_ports"]),
        vendor=data.get("vendor"),
        matched_rule=data.get("matched_rule"),
        other_identifications=list(data.get("other_identifications", [])),
        os_features=dict(data.get("os_features", {})),
        os_name=data.get("os_name"),
    )
    for grab in data.get("grabs", []):
        report.grabs.append(
            BannerGrab(
                port=grab["port"],
                protocol=grab["protocol"],
                banner=grab.get("banner", ""),
                response=grab.get("response", ""),
            )
        )
    return report


# ---------------------------------------------------------------------------
# Campaign-level save/load
# ---------------------------------------------------------------------------


def _write_jsonl(path: Path, records: Iterable[Dict]) -> int:
    count = 0
    with path.open("w") as handle:
        for record in records:
            handle.write(json.dumps(record, ensure_ascii=False) + "\n")
            count += 1
    return count


def _read_jsonl(path: Path) -> List[Dict]:
    if not path.exists():
        return []
    with path.open() as handle:
        return [json.loads(line) for line in handle if line.strip()]


def save_campaign(campaign, directory: Union[str, Path]) -> Dict[str, int]:
    """Write a campaign's measurements to ``directory``.

    Produces ``traces.jsonl`` (remote + in-country CenTraces),
    ``fuzz.jsonl``, ``banners.jsonl`` and ``meta.json`` — plus
    ``report.json`` when the campaign carries a telemetry
    :class:`~repro.telemetry.RunReport`; returns the per-file record
    counts.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    counts = {
        "traces": _write_jsonl(
            directory / "traces.jsonl",
            (
                {**trace_result_to_dict(r), "vantage": vantage}
                for vantage, results in (
                    ("remote", campaign.remote_results),
                    ("in-country", campaign.in_country_results),
                )
                for r in results
            ),
        ),
        "fuzz": _write_jsonl(
            directory / "fuzz.jsonl",
            (fuzz_report_to_dict(r) for r in campaign.fuzz_reports),
        ),
        "banners": _write_jsonl(
            directory / "banners.jsonl",
            (probe_report_to_dict(r) for r in campaign.probe_reports.values()),
        ),
    }
    run_report = getattr(campaign, "run_report", None)
    if run_report is not None:
        (directory / "report.json").write_text(
            json.dumps(run_report.to_dict(), indent=2, sort_keys=True)
        )
        counts["report"] = 1
    meta = {
        "version": FORMAT_VERSION,
        "country": campaign.world.country,
        "world": campaign.world.name,
        "test_domains": list(campaign.world.test_domains),
        "control_domain": campaign.world.control_domain,
        "endpoints": len(campaign.world.endpoints),
        "repetitions": campaign.config.repetitions,
        "has_report": run_report is not None,
        "counts": counts,
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    return counts


def save_service_run(
    run_report: RunReport,
    payloads: Iterable[Dict],
    directory: Union[str, Path],
) -> Dict[str, int]:
    """Write one service run: delivered unit payloads + its run report.

    Produces ``results.jsonl`` (one record per *delivered* unit, in
    delivery order — coalesced duplicates appear once per subscriber,
    as each client received them) and ``report.json`` in the same
    format ``save_campaign`` uses, so ``repro report --run`` reads it.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    counts = {"results": _write_jsonl(directory / "results.jsonl", payloads)}
    (directory / "report.json").write_text(
        json.dumps(run_report.to_dict(), indent=2, sort_keys=True)
    )
    counts["report"] = 1
    return counts


class LoadedCampaign:
    """Measurement data reloaded from disk (analysis-ready)."""

    def __init__(
        self,
        meta: Dict,
        remote_results: List[CenTraceResult],
        in_country_results: List[CenTraceResult],
        fuzz_reports: List[EndpointFuzzReport],
        probe_reports: Dict[str, ProbeReport],
        run_report: Optional[RunReport] = None,
    ) -> None:
        self.meta = meta
        self.remote_results = remote_results
        self.in_country_results = in_country_results
        self.fuzz_reports = fuzz_reports
        self.probe_reports = probe_reports
        self.run_report = run_report

    def blocked_remote(self) -> List[CenTraceResult]:
        return [r for r in self.remote_results if r.blocked and r.valid]


def load_campaign(directory: Union[str, Path]) -> LoadedCampaign:
    """Reload a campaign saved by :func:`save_campaign`."""
    directory = Path(directory)
    meta = json.loads((directory / "meta.json").read_text())
    remote: List[CenTraceResult] = []
    in_country: List[CenTraceResult] = []
    for record in _read_jsonl(directory / "traces.jsonl"):
        result = trace_result_from_dict(record)
        if record.get("vantage") == "in-country":
            in_country.append(result)
        else:
            remote.append(result)
    fuzz = [
        fuzz_report_from_dict(record)
        for record in _read_jsonl(directory / "fuzz.jsonl")
    ]
    banners = {
        record["ip"]: probe_report_from_dict(record)
        for record in _read_jsonl(directory / "banners.jsonl")
    }
    # report.json appeared in FORMAT_VERSION 2; version-1 directories
    # (and version-2 runs without telemetry) simply have none.
    run_report = None
    report_path = directory / "report.json"
    if report_path.exists():
        run_report = RunReport.from_dict(json.loads(report_path.read_text()))
    return LoadedCampaign(meta, remote, in_country, fuzz, banners, run_report)
