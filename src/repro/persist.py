"""Persistence: serialize measurement results to JSON(L) and back.

The real measurement platforms publish their raw data (Censored Planet
"raw data" releases, OONI measurements); this module provides the same
capability for campaign outputs:

* one JSON object per CenTrace result / CenFuzz report / banner grab,
* directory-level save/load for a whole campaign
  (``traces.jsonl`` / ``fuzz.jsonl`` / ``banners.jsonl`` / ``meta.json``),
* loaded results reconstruct the dataclasses the analysis pipeline
  consumes, so saved campaigns can be re-clustered offline.

Sweep-level packet observations are summarized (hop maps and
terminating responses), not archived byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from .core.cenfuzz.runner import (
    EndpointFuzzReport,
    FuzzProbeOutcome,
    PermutationResult,
)
from .core.cenprobe.scanner import BannerGrab, ProbeReport
from .core.centrace.results import CenTraceResult, HopInfo
from .localize.evidence import PathEvidence
from .localize.verdicts import LocalizationVerdict
from .netmodel.icmp import QuoteDelta
from .telemetry import NULL_TELEMETRY, RunReport

# 2: adds optional report.json (telemetry run report) + has_report meta.
# 3: meta.json gains "kind" + "provenance" (world seed/scale/fault plan/
#    drift plan/epoch) + "environment" (workers); service-run dirs gain
#    their own kind-tagged meta.json. Version-1/2 directories (no kind,
#    no provenance) load unchanged.
FORMAT_VERSION = 3

VANTAGE_VALUES = ("remote", "in-country")


class PersistError(RuntimeError):
    """A persisted run directory is missing, truncated, or corrupt.

    Raised instead of raw ``FileNotFoundError``/``JSONDecodeError`` so
    analysis CLI paths can catch one exception type and exit cleanly;
    the message always names the offending path.
    """


def _read_json(path: Path, what: str) -> Dict:
    """Read one JSON file, converting failures into PersistError."""
    try:
        text = path.read_text()
    except FileNotFoundError:
        raise PersistError(
            f"{what} not found: {path} (is this a saved run directory?)"
        ) from None
    except OSError as exc:
        raise PersistError(f"cannot read {what} {path}: {exc}") from None
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistError(
            f"corrupt {what} {path}: {exc} (truncated write?)"
        ) from None
    if not isinstance(data, dict):
        raise PersistError(
            f"corrupt {what} {path}: expected a JSON object, got "
            f"{type(data).__name__}"
        )
    return data


# ---------------------------------------------------------------------------
# CenTrace results
# ---------------------------------------------------------------------------


#: Dataclass fields deliberately absent from the serialized form, by
#: serializer-pair prefix (lintkit RP701 reads this). The raw per-TTL
#: sweeps are inputs to classification, not results: the saved record
#: is analysis-complete, and replaying sweeps requires re-probing.
SERIALIZER_EXCLUDED_FIELDS = {
    "trace_result": ("sweeps_control", "sweeps_test"),
}


def trace_result_to_dict(result: CenTraceResult) -> Dict:
    """Serialize a classified CenTrace result (analysis-complete)."""
    def hop(info: Optional[HopInfo]) -> Optional[Dict]:
        if info is None:
            return None
        return {
            "ttl": info.ttl,
            "ip": info.ip,
            "asn": info.asn,
            "as_name": info.as_name,
            "country": info.country,
        }

    def quote(delta: Optional[QuoteDelta]) -> Optional[Dict]:
        if delta is None:
            return None
        return {
            "tos_changed": delta.tos_changed,
            "ip_flags_changed": delta.ip_flags_changed,
            "ttl_delta": delta.ttl_delta,
            "identification_changed": delta.identification_changed,
            "length_changed": delta.length_changed,
            "transport_bytes_quoted": delta.transport_bytes_quoted,
            "follows_rfc792": delta.follows_rfc792,
            "payload_modified": delta.payload_modified,
        }

    return {
        "version": FORMAT_VERSION,
        "endpoint_ip": result.endpoint_ip,
        "endpoint_asn": result.endpoint_asn,
        "test_domain": result.test_domain,
        "protocol": result.protocol,
        "blocked": result.blocked,
        "valid": result.valid,
        "degraded": result.degraded,
        "blocking_type": result.blocking_type,
        "terminating_ttl": result.terminating_ttl,
        "endpoint_distance": result.endpoint_distance,
        "blocking_hop": hop(result.blocking_hop),
        "location_class": result.location_class,
        "in_path": result.in_path,
        "hops_from_endpoint": result.hops_from_endpoint,
        "ttl_copy_detected": result.ttl_copy_detected,
        "corrected_device_distance": result.corrected_device_distance,
        "injected_ip_id": result.injected_ip_id,
        "injected_ip_tos": result.injected_ip_tos,
        "injected_ip_flags": result.injected_ip_flags,
        "injected_ttl": result.injected_ttl,
        "injected_initial_ttl": result.injected_initial_ttl,
        "injected_tcp_flags": result.injected_tcp_flags,
        "injected_tcp_window": result.injected_tcp_window,
        "injected_tcp_options": list(result.injected_tcp_options),
        "blockpage_fingerprint": result.blockpage_fingerprint,
        "quote_delta": quote(result.quote_delta),
        "control_hops": {
            str(ttl): counts for ttl, counts in result.control_hops.items()
        },
    }


def trace_result_from_dict(data: Dict) -> CenTraceResult:
    """Reconstruct a CenTrace result (sweep transcripts excluded)."""
    result = CenTraceResult(
        endpoint_ip=data["endpoint_ip"],
        endpoint_asn=data.get("endpoint_asn"),
        test_domain=data["test_domain"],
        protocol=data["protocol"],
        blocked=data["blocked"],
        valid=data.get("valid", True),
        degraded=data.get("degraded", False),
        blocking_type=data["blocking_type"],
        terminating_ttl=data.get("terminating_ttl"),
        endpoint_distance=data.get("endpoint_distance"),
        location_class=data.get("location_class"),
        in_path=data.get("in_path"),
        hops_from_endpoint=data.get("hops_from_endpoint"),
        ttl_copy_detected=data.get("ttl_copy_detected", False),
        corrected_device_distance=data.get("corrected_device_distance"),
        injected_ip_id=data.get("injected_ip_id"),
        injected_ip_tos=data.get("injected_ip_tos"),
        injected_ip_flags=data.get("injected_ip_flags"),
        injected_ttl=data.get("injected_ttl"),
        injected_initial_ttl=data.get("injected_initial_ttl"),
        injected_tcp_flags=data.get("injected_tcp_flags"),
        injected_tcp_window=data.get("injected_tcp_window"),
        injected_tcp_options=tuple(data.get("injected_tcp_options", ())),
        blockpage_fingerprint=data.get("blockpage_fingerprint"),
    )
    hop = data.get("blocking_hop")
    if hop is not None:
        result.blocking_hop = HopInfo(
            ttl=hop["ttl"],
            ip=hop.get("ip"),
            asn=hop.get("asn"),
            as_name=hop.get("as_name"),
            country=hop.get("country"),
        )
    quote = data.get("quote_delta")
    if quote is not None:
        result.quote_delta = QuoteDelta(
            tos_changed=quote["tos_changed"],
            ip_flags_changed=quote["ip_flags_changed"],
            ttl_delta=quote.get("ttl_delta", 0),
            identification_changed=quote.get("identification_changed", False),
            length_changed=quote.get("length_changed", False),
            transport_bytes_quoted=quote.get("transport_bytes_quoted", 0),
            follows_rfc792=quote.get("follows_rfc792", False),
            payload_modified=quote.get("payload_modified", False),
        )
    result.control_hops = {
        int(ttl): counts
        for ttl, counts in data.get("control_hops", {}).items()
    }
    return result


# ---------------------------------------------------------------------------
# CenFuzz reports
# ---------------------------------------------------------------------------


def _outcome_to_dict(outcome: FuzzProbeOutcome) -> Dict:
    return {
        "outcome": outcome.outcome,
        "status_code": outcome.status_code,
        "served_vhost": outcome.served_vhost,
        "reprobed": outcome.reprobed,
    }


def _outcome_from_dict(data: Dict) -> FuzzProbeOutcome:
    return FuzzProbeOutcome(
        outcome=data["outcome"],
        status_code=data.get("status_code"),
        served_vhost=data.get("served_vhost"),
        reprobed=data.get("reprobed", False),
    )


def fuzz_report_to_dict(report: EndpointFuzzReport) -> Dict:
    return {
        "version": FORMAT_VERSION,
        "endpoint_ip": report.endpoint_ip,
        "test_domain": report.test_domain,
        "protocol": report.protocol,
        "normal_test": _outcome_to_dict(report.normal_test),
        "normal_control": _outcome_to_dict(report.normal_control),
        "degraded": report.degraded,
        "results": [
            {
                "strategy": r.strategy,
                "label": r.label,
                "successful": r.successful,
                "unsuccessful": r.unsuccessful,
                "circumvented": r.circumvented,
                "degraded": r.degraded,
                "test": _outcome_to_dict(r.test),
                "control": _outcome_to_dict(r.control),
            }
            for r in report.results
        ],
    }


def fuzz_report_from_dict(data: Dict) -> EndpointFuzzReport:
    report = EndpointFuzzReport(
        endpoint_ip=data["endpoint_ip"],
        test_domain=data["test_domain"],
        protocol=data["protocol"],
        normal_test=_outcome_from_dict(data["normal_test"]),
        normal_control=_outcome_from_dict(data["normal_control"]),
        degraded=data.get("degraded", False),
    )
    for entry in data["results"]:
        report.results.append(
            PermutationResult(
                endpoint_ip=report.endpoint_ip,
                test_domain=report.test_domain,
                strategy=entry["strategy"],
                label=entry["label"],
                protocol=report.protocol,
                normal_blocked=report.normal_blocked,
                test=_outcome_from_dict(entry["test"]),
                control=_outcome_from_dict(entry["control"]),
                successful=entry["successful"],
                unsuccessful=entry["unsuccessful"],
                circumvented=entry["circumvented"],
                degraded=entry.get("degraded", False),
            )
        )
    return report


# ---------------------------------------------------------------------------
# Work-unit results (service streaming delivery)
# ---------------------------------------------------------------------------


def unit_result_to_dict(kind: str, result) -> Dict:
    """Serialize one executor work-unit result by kind.

    The campaign service delivers results per work unit rather than per
    campaign; this dispatches to the same serializers ``save_campaign``
    uses, so a streamed payload is byte-identical to the corresponding
    record in a directly-saved campaign.
    """
    if kind == "trace":
        return trace_result_to_dict(result)
    if kind == "fuzz":
        return fuzz_report_to_dict(result)
    # Programmer contract: kinds come from WorkUnit literals, not data.
    raise ValueError(  # lint: ignore[RP901] -- not user-reachable
        f"unknown work-unit kind {kind!r}"
    )


def unit_result_from_dict(kind: str, payload: Dict):
    """Inverse of :func:`unit_result_to_dict` (epoch-scheduler reuse)."""
    if kind == "trace":
        return trace_result_from_dict(payload)
    if kind == "fuzz":
        return fuzz_report_from_dict(payload)
    # The kind is read back from a stored fact payload: corrupt or
    # hand-edited stores reach this, so it reports as a typed error.
    raise PersistError(f"unknown work-unit kind {kind!r}")


# ---------------------------------------------------------------------------
# CenProbe reports
# ---------------------------------------------------------------------------


def probe_report_to_dict(report: ProbeReport) -> Dict:
    return {
        "version": FORMAT_VERSION,
        "ip": report.ip,
        "reachable": report.reachable,
        "open_ports": list(report.open_ports),
        "grabs": [
            {
                "port": g.port,
                "protocol": g.protocol,
                "banner": g.banner,
                "response": g.response,
            }
            for g in report.grabs
        ],
        "vendor": report.vendor,
        "matched_rule": report.matched_rule,
        "other_identifications": list(report.other_identifications),
        "os_features": dict(report.os_features),
        "os_name": report.os_name,
    }


def probe_report_from_dict(data: Dict) -> ProbeReport:
    report = ProbeReport(
        ip=data["ip"],
        reachable=data["reachable"],
        open_ports=list(data["open_ports"]),
        vendor=data.get("vendor"),
        matched_rule=data.get("matched_rule"),
        other_identifications=list(data.get("other_identifications", [])),
        os_features=dict(data.get("os_features", {})),
        os_name=data.get("os_name"),
    )
    for grab in data.get("grabs", []):
        report.grabs.append(
            BannerGrab(
                port=grab["port"],
                protocol=grab["protocol"],
                banner=grab.get("banner", ""),
                response=grab.get("response", ""),
            )
        )
    return report


# ---------------------------------------------------------------------------
# Localization evidence and verdicts
# ---------------------------------------------------------------------------


def path_evidence_to_dict(evidence: PathEvidence) -> Dict:
    """Serialize one localization evidence record."""
    return {
        "client_ip": evidence.client_ip,
        "endpoint_ip": evidence.endpoint_ip,
        "domain": evidence.domain,
        "protocol": evidence.protocol,
        "sport": evidence.sport,
        "dport": evidence.dport,
        "outcome": evidence.outcome,
        "blocked": evidence.blocked,
        "links": [list(link) for link in evidence.links],
        "epoch": evidence.epoch,
        "source": evidence.source,
        "terminating_ttl": evidence.terminating_ttl,
        "blocking_hop_ip": evidence.blocking_hop_ip,
        "endpoint_distance": evidence.endpoint_distance,
    }


def path_evidence_from_dict(data: Dict) -> PathEvidence:
    return PathEvidence(
        client_ip=data["client_ip"],
        endpoint_ip=data["endpoint_ip"],
        domain=data["domain"],
        protocol=data["protocol"],
        sport=data["sport"],
        dport=data["dport"],
        outcome=data["outcome"],
        blocked=data["blocked"],
        links=tuple(tuple(link) for link in data["links"]),
        epoch=data.get("epoch", 0),
        source=data.get("source", "outcome"),
        terminating_ttl=data.get("terminating_ttl"),
        blocking_hop_ip=data.get("blocking_hop_ip"),
        endpoint_distance=data.get("endpoint_distance"),
    )


def localization_verdict_to_dict(verdict: LocalizationVerdict) -> Dict:
    """Serialize one localizer claim."""
    return {
        "method": verdict.method,
        "endpoint_ip": verdict.endpoint_ip,
        "domain": verdict.domain,
        "candidate_links": [list(link) for link in verdict.candidate_links],
        "hop_low": verdict.hop_low,
        "hop_high": verdict.hop_high,
        "confidence": verdict.confidence,
        "evidence_count": verdict.evidence_count,
        "detail": verdict.detail,
    }


def localization_verdict_from_dict(data: Dict) -> LocalizationVerdict:
    return LocalizationVerdict(
        method=data["method"],
        endpoint_ip=data["endpoint_ip"],
        domain=data["domain"],
        candidate_links=tuple(
            tuple(link) for link in data["candidate_links"]
        ),
        hop_low=data.get("hop_low"),
        hop_high=data.get("hop_high"),
        confidence=data["confidence"],
        evidence_count=data["evidence_count"],
        detail=data.get("detail", ""),
    )


def save_localization(
    verdicts: Sequence[LocalizationVerdict],
    evidence: Sequence[PathEvidence],
    directory: Union[str, Path],
    *,
    xval: Optional[Dict] = None,
) -> Dict[str, int]:
    """Write one localization run: verdicts + the evidence behind them.

    Produces ``verdicts.jsonl``, ``evidence.jsonl`` and a kind-tagged
    ``meta.json``; ``xval`` (a cross-validation report dict, see
    ``experiments.localize_xval.XvalReport.to_dict``) lands in
    ``xval.json`` when given.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    counts = {
        "verdicts": _write_jsonl(
            directory / "verdicts.jsonl",
            (localization_verdict_to_dict(v) for v in verdicts),
        ),
        "evidence": _write_jsonl(
            directory / "evidence.jsonl",
            (path_evidence_to_dict(e) for e in evidence),
        ),
    }
    if xval is not None:
        (directory / "xval.json").write_text(
            json.dumps(xval, indent=2, sort_keys=True)
        )
        counts["xval"] = 1
    meta = {
        "version": FORMAT_VERSION,
        "kind": "localization",
        "counts": counts,
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    return counts


class LoadedLocalization:
    """A localization run reloaded from disk."""

    def __init__(
        self,
        meta: Dict,
        verdicts: List[LocalizationVerdict],
        evidence: List[PathEvidence],
        xval: Optional[Dict] = None,
    ) -> None:
        self.meta = meta
        self.verdicts = verdicts
        self.evidence = evidence
        self.xval = xval

    def by_method(self) -> Dict[str, List[LocalizationVerdict]]:
        grouped: Dict[str, List[LocalizationVerdict]] = {}
        for verdict in self.verdicts:
            grouped.setdefault(verdict.method, []).append(verdict)
        return grouped


def load_localization(directory: Union[str, Path]) -> LoadedLocalization:
    """Reload a ``save_localization`` directory (PersistError on rot)."""
    directory = Path(directory)
    meta = _read_json(directory / "meta.json", "localization meta")
    kind = meta.get("kind", "localization")
    if kind != "localization":
        raise PersistError(
            f"{directory} holds a {kind!r} run, not a localization run "
            "(point repro localize --load at a save_localization dir)"
        )
    verdicts = [
        localization_verdict_from_dict(record)
        for record in _read_jsonl(directory / "verdicts.jsonl")
    ]
    evidence = [
        path_evidence_from_dict(record)
        for record in _read_jsonl(directory / "evidence.jsonl")
    ]
    xval_path = directory / "xval.json"
    xval = _read_json(xval_path, "xval report") if xval_path.exists() else None
    return LoadedLocalization(meta, verdicts, evidence, xval)


# ---------------------------------------------------------------------------
# Campaign-level save/load
# ---------------------------------------------------------------------------


def _write_jsonl(path: Path, records: Iterable[Dict]) -> int:
    count = 0
    with path.open("w") as handle:
        for record in records:
            handle.write(json.dumps(record, ensure_ascii=False) + "\n")
            count += 1
    return count


def read_jsonl(path: Path) -> List[Dict]:
    """Hardened JSONL reader: missing file -> [], corrupt -> PersistError.

    Public because the fact store (``repro.store``) builds on the same
    hardened readers as campaign persistence.
    """
    return _read_jsonl(path)


def _read_jsonl(path: Path) -> List[Dict]:
    if not path.exists():
        return []
    records = []
    with path.open() as handle:
        for lineno, line in enumerate(handle, 1):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise PersistError(
                    f"corrupt record in {path} at line {lineno}: {exc} "
                    "(truncated write?)"
                ) from None
    return records


def save_campaign(campaign, directory: Union[str, Path]) -> Dict[str, int]:
    """Write a campaign's measurements to ``directory``.

    Produces ``traces.jsonl`` (remote + in-country CenTraces),
    ``fuzz.jsonl``, ``banners.jsonl`` and ``meta.json`` — plus
    ``report.json`` when the campaign carries a telemetry
    :class:`~repro.telemetry.RunReport`; returns the per-file record
    counts.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    counts = {
        "traces": _write_jsonl(
            directory / "traces.jsonl",
            (
                {**trace_result_to_dict(r), "vantage": vantage}
                for vantage, results in (
                    ("remote", campaign.remote_results),
                    ("in-country", campaign.in_country_results),
                )
                for r in results
            ),
        ),
        "fuzz": _write_jsonl(
            directory / "fuzz.jsonl",
            (fuzz_report_to_dict(r) for r in campaign.fuzz_reports),
        ),
        "banners": _write_jsonl(
            directory / "banners.jsonl",
            (probe_report_to_dict(r) for r in campaign.probe_reports.values()),
        ),
    }
    run_report = getattr(campaign, "run_report", None)
    if run_report is not None:
        (directory / "report.json").write_text(
            json.dumps(run_report.to_dict(), indent=2, sort_keys=True)
        )
        counts["report"] = 1
    meta = {
        "version": FORMAT_VERSION,
        "kind": "campaign",
        "country": campaign.world.country,
        "world": campaign.world.name,
        "test_domains": list(campaign.world.test_domains),
        "control_domain": campaign.world.control_domain,
        "endpoints": len(campaign.world.endpoints),
        "repetitions": campaign.config.repetitions,
        "has_report": run_report is not None,
        "counts": counts,
        "provenance": _campaign_provenance(campaign),
        # Environment facts (how fast, not what): excluded from identity
        # comparisons the same way workers_requested lives in the run
        # report's wall section — serial and parallel runs of one
        # campaign must stay identical everywhere else.
        "environment": {"workers": getattr(campaign, "workers", None)},
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    return counts


def _campaign_provenance(campaign) -> Dict:
    """The configuration that produced a campaign, replayably.

    Drawn from ``world.spec`` when the world was built through
    ``build_world`` (the normal path — it carries seed/scale/fault plan/
    drift plan/epoch); hand-built worlds fall back to what the campaign
    itself knows.
    """
    spec = getattr(campaign.world, "spec", None)
    fault_plan = spec.fault_plan if spec is not None else campaign.config.fault_plan
    drift_plan = spec.drift_plan if spec is not None else None
    return {
        "country": spec.country if spec is not None else campaign.world.country,
        "seed": spec.seed if spec is not None else None,
        "scale": spec.scale if spec is not None else None,
        "fault_plan": fault_plan.to_dict() if fault_plan is not None else None,
        "drift_plan": drift_plan.to_dict() if drift_plan is not None else None,
        "epoch": spec.epoch if spec is not None else 0,
    }


def save_service_run(
    run_report: RunReport,
    payloads: Iterable[Dict],
    directory: Union[str, Path],
) -> Dict[str, int]:
    """Write one service run: delivered unit payloads + its run report.

    Produces ``results.jsonl`` (one record per *delivered* unit, in
    delivery order — coalesced duplicates appear once per subscriber,
    as each client received them) and ``report.json`` in the same
    format ``save_campaign`` uses, so ``repro report --run`` reads it.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    counts = {"results": _write_jsonl(directory / "results.jsonl", payloads)}
    (directory / "report.json").write_text(
        json.dumps(run_report.to_dict(), indent=2, sort_keys=True)
    )
    counts["report"] = 1
    # Kind-tagged so load_campaign can reject this directory with a
    # clear message instead of crashing on the absent campaign files.
    meta = {
        "version": FORMAT_VERSION,
        "kind": "service-run",
        "counts": counts,
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    return counts


class LoadedCampaign:
    """Measurement data reloaded from disk (analysis-ready)."""

    def __init__(
        self,
        meta: Dict,
        remote_results: List[CenTraceResult],
        in_country_results: List[CenTraceResult],
        fuzz_reports: List[EndpointFuzzReport],
        probe_reports: Dict[str, ProbeReport],
        run_report: Optional[RunReport] = None,
    ) -> None:
        self.meta = meta
        self.remote_results = remote_results
        self.in_country_results = in_country_results
        self.fuzz_reports = fuzz_reports
        self.probe_reports = probe_reports
        self.run_report = run_report

    def blocked_remote(self) -> List[CenTraceResult]:
        return [r for r in self.remote_results if r.blocked and r.valid]


def load_campaign(directory: Union[str, Path]) -> LoadedCampaign:
    """Reload a campaign saved by :func:`save_campaign`.

    Raises :class:`PersistError` on missing/corrupt files, on
    directories of a different kind (e.g. ``save_service_run`` output),
    and on records whose ``vantage`` tag is missing or unknown — a
    typo'd vantage must not silently land in the remote bucket.
    """
    directory = Path(directory)
    meta = _read_json(directory / "meta.json", "campaign meta")
    # "kind" arrived in version 3; version-1/2 metas are campaigns.
    kind = meta.get("kind", "campaign")
    if kind != "campaign":
        raise PersistError(
            f"{directory} holds a {kind!r} run, not a campaign "
            "(use 'repro report --run' for service runs)"
        )
    remote: List[CenTraceResult] = []
    in_country: List[CenTraceResult] = []
    traces_path = directory / "traces.jsonl"
    for index, record in enumerate(_read_jsonl(traces_path), 1):
        result = trace_result_from_dict(record)
        vantage = record.get("vantage")
        if vantage == "in-country":
            in_country.append(result)
        elif vantage == "remote":
            remote.append(result)
        else:
            raise PersistError(
                f"record {index} in {traces_path} has "
                f"{'no vantage' if vantage is None else f'unknown vantage {vantage!r}'}"
                f"; expected one of {VANTAGE_VALUES}"
            )
    fuzz = [
        fuzz_report_from_dict(record)
        for record in _read_jsonl(directory / "fuzz.jsonl")
    ]
    banners = {
        record["ip"]: probe_report_from_dict(record)
        for record in _read_jsonl(directory / "banners.jsonl")
    }
    # report.json appeared in FORMAT_VERSION 2; version-1 directories
    # (and version-2 runs without telemetry) simply have none.
    run_report = None
    report_path = directory / "report.json"
    if report_path.exists():
        run_report = RunReport.from_dict(
            _read_json(report_path, "run report")
        )
    return LoadedCampaign(meta, remote, in_country, fuzz, banners, run_report)


# ---------------------------------------------------------------------------
# Persistent work-unit cache (longitudinal observatory / service restarts)
# ---------------------------------------------------------------------------


def unit_cache_key(
    world_identity: Sequence,
    work_key: Sequence,
    touching_ops: Sequence = (),
) -> str:
    """Canonical :class:`UnitCache` key for one work unit.

    ``world_identity`` is the JSON-serializable identity of the base
    world (country, seed, scale, fault-plan dict); ``work_key`` the
    executor's :func:`~repro.experiments.executor.unit_work_key` parts;
    ``touching_ops`` the serialized drift ops that can affect this unit
    (empty outside the epoch scheduler). The service and the epoch
    scheduler both derive keys here, so an undrifted unit hashes the
    same for either — their caches interoperate.
    """
    material = json.dumps(
        [list(world_identity), list(work_key), list(touching_ops)],
        sort_keys=True,
        default=list,
    )
    return hashlib.blake2b(
        material.encode("utf-8"), digest_size=16
    ).hexdigest()


class UnitCache:
    """Append-only content-keyed cache of serialized work-unit results.

    One ``units.jsonl`` under ``directory``; each line is
    ``{"key": ..., "kind": "trace"|"fuzz", "payload": {...}}``. Keys are
    caller-computed content hashes (the epoch scheduler hashes the world
    spec + unit + the drift ops that can touch the unit; the service
    uses its coalescing work key), so a hit is by construction the
    payload an actual run would have produced — byte-identity is the
    repo-wide contract that makes this sound.

    Loads are tolerant of a corrupt *final* line (a crash mid-append
    loses that one record, never the cache); corruption anywhere else is
    a :class:`PersistError`. ``store.unit_cache_*`` counters flow to the
    supplied telemetry sink.
    """

    FILENAME = "units.jsonl"

    def __init__(
        self, directory: Union[str, Path], telemetry=NULL_TELEMETRY
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / self.FILENAME
        self.telemetry = telemetry
        self._entries: Dict[str, Dict] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open() as handle:
            lines = handle.readlines()
        last_content = len(lines)
        while last_content and not lines[last_content - 1].strip():
            last_content -= 1
        for lineno, line in enumerate(lines, 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                key, kind, payload = (
                    record["key"], record["kind"], record["payload"]
                )
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                if lineno == last_content:
                    # Torn final append: drop the lost record, keep the
                    # cache usable (misses re-run and re-append).
                    self.telemetry.count("store.unit_cache_torn_tail")
                    break
                raise PersistError(
                    f"corrupt unit cache {self.path} at line {lineno}: "
                    f"{exc}"
                ) from None
            self._entries[key] = {"kind": kind, "payload": payload}
        self.telemetry.count("store.unit_cache_loaded", len(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[Dict]:
        """The ``{"kind", "payload"}`` entry for ``key``, counting hits."""
        entry = self._entries.get(key)
        if entry is None:
            self.telemetry.count("store.unit_cache_misses")
            return None
        self.telemetry.count("store.unit_cache_hits")
        return entry

    def put(self, key: str, kind: str, payload: Dict) -> None:
        """Record a freshly computed unit result (idempotent per key)."""
        if key in self._entries:
            return
        self._entries[key] = {"kind": kind, "payload": payload}
        record = {"key": key, "kind": kind, "payload": payload}
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, ensure_ascii=False) + "\n")
        self.telemetry.count("store.unit_cache_writes")
