"""The declared telemetry registry — the documented ops surface.

Every counter, span, and event name the reproduction emits is declared
here with a one-line description. This module is pure data: it imports
nothing, it is rendered by ``repro report --registry``, and it is the
single source of truth the RP6xx lint passes check call sites against:

* a ``tel.count("…")`` / ``tel.span("…")`` / ``tel.event(kind=…)``
  literal that is not declared below is an unregistered name (RP601) —
  usually a typo, occasionally a new counter missing its registration;
* a telemetry name computed at runtime is only allowed from the
  helpers whitelisted in :data:`NONLITERAL_NAME_SITES` (RP602), and
  the names those helpers can produce must still be covered by an
  exact entry or a dynamic-family prefix;
* an exact entry with no remaining call site is stale (RP603) unless
  listed in :data:`INDIRECT_COUNTERS` as deliberately emitted through
  a whitelisted dynamic site.

Adding a counter (the short recipe also in the README): emit it with a
string literal, add one entry to the matching table below with a
description worth reading in a report, and run ``make lint`` — RP601
fails until the registration exists, RP603 fails once the last call
site disappears.
"""

from __future__ import annotations

from typing import Dict, Set

#: Exact counter names -> what the number means.
COUNTERS: Dict[str, str] = {
    # -- packet plane (netsim) --------------------------------------
    "sim.client_packets": "probe packets sent by simulated clients",
    "sim.deliveries": "packets delivered end-to-end (either direction)",
    "sim.packets_lost": "packets dropped by loss rolls or fault plans",
    "sim.fault_loss_rolls": "fault-layer loss lotteries drawn",
    "sim.fault_device_rolls": "fault-layer flaky-device lotteries drawn",
    "sim.device_inspections": "packets inspected by a censorship device",
    "sim.device_actions": "device verdicts that acted on a packet",
    "sim.device_drops": "packets a device silently dropped",
    "sim.icmp_silent": "TTL expiries that produced no ICMP (silent hop)",
    "sim.icmp_rate_limited": "ICMP replies suppressed by rate limiting",
    "sim.icmp_generated": "ICMP time-exceeded replies generated",
    "sim.injected_to_client": "forged packets injected toward the client",
    "sim.injected_to_server": "forged packets injected toward the server",
    "sim.injected_ttl_expired": "injected packets that expired in transit",
    "sim.reverse_ttl_expired": "reverse-path packets that expired in transit",
    "sim.batches": "batched sweeps walked by the packet plane",
    "sim.batch_fast_path": "sweeps served by the array fast path",
    "sim.batch_scalar_fallback": "sweeps that fell back to scalar transit",
    # -- measurement tools (core) -----------------------------------
    "centrace.measurements": "CenTrace endpoint measurements started",
    "centrace.blocked": "measurements that observed censorship",
    "centrace.degraded_measurements": "measurements degraded by weather",
    "centrace.sweeps": "TTL sweeps executed",
    "centrace.degraded_sweeps": "sweeps with rate-limited/lossy hops",
    "centrace.probes": "individual TTL-limited probes sent",
    "centrace.probe_retries": "probes retried after silence",
    "centrace.handshake_failures": "application handshakes that failed",
    "centrace.hops_rate_limited": "hops that answered only some probes",
    "cenfuzz.endpoints": "CenFuzz endpoints fuzzed",
    "cenfuzz.permutations": "fuzzing permutations evaluated",
    "cenfuzz.probes": "fuzz probes sent (test + control)",
    "cenfuzz.blocked_probes": "fuzz probes that observed blocking",
    "cenfuzz.handshake_failures": "fuzz handshakes that failed",
    "cenfuzz.reprobes": "tie-breaking re-probes issued",
    "cenfuzz.evasions": "permutations that evaded the censor",
    "cenfuzz.degraded_endpoints": "endpoints needing degraded handling",
    "cenprobe.scans": "CenProbe device scans started",
    "cenprobe.ports_scanned": "ports probed across all scans",
    "cenprobe.open_ports": "ports found open",
    "cenprobe.unreachable": "scan targets that never answered",
    "cenprobe.banner_grabs": "banners grabbed from open ports",
    "cenprobe.vendor_labels": "scans that yielded a vendor label",
    # -- localization layer (repro.localize) ------------------------
    "localize.probes": "plain outcome probes sent for path evidence",
    "localize.evidence_records": "path-evidence records collected",
    "localize.blocked_evidence": "evidence records that observed blocking",
    "localize.verdicts": "localization verdicts produced",
    # -- campaign service (repro.service) ---------------------------
    "service.requests": "client requests admitted by the service",
    "service.units_requested": "work units named across all requests",
    "service.coalesced": "unit requests answered by coalescing",
    "service.coalesced_cached": "coalesced hits served from finished units",
    "service.coalesced_inflight": "coalesced hits joined to in-flight units",
    "service.units_enqueued": "units enqueued for execution",
    "service.units_executed": "units actually executed",
    "service.unit_retries": "unit executions retried after faults",
    "service.unit_failures": "units abandoned after exhausting retries",
    "service.cache_restored": "units answered from the persistent cache",
    "service.rate_limited_waits": "token-bucket waits imposed on tenants",
    "service.backpressure_waits": "admissions stalled on queue depth",
    # -- persistence + fact store (repro.persist / repro.store) -----
    "store.unit_cache_loaded": "unit-cache records loaded from disk",
    "store.unit_cache_torn_tail": "truncated trailing cache records dropped",
    "store.unit_cache_hits": "unit-cache lookups that hit",
    "store.unit_cache_misses": "unit-cache lookups that missed",
    "store.unit_cache_writes": "unit results appended to the cache",
    "store.facts_loaded": "facts loaded from a fact store",
    "store.facts_appended": "facts appended to a fact store",
    "store.epochs_appended": "epoch manifests appended",
    "store.epochs_run": "observatory epochs executed",
    "store.queries": "fact-store queries answered",
}

#: Counter-name prefixes emitted with runtime-computed suffixes. Every
#: name produced by a whitelisted non-literal site must match one of
#: these families (or an exact entry above).
DYNAMIC_COUNTERS: Dict[str, str] = {
    "faults.": "per-fault-kind totals merged from FaultCounters "
    "(packets_lost, icmp_suppressed, duplicated, reordered, "
    "churn_epochs, fail_open, fail_closed)",
    "store.units_reused.": "cache-reused units per work-unit kind",
    "store.units_executed.": "re-simulated units per work-unit kind",
}

#: Exact span names (virtual-clock spans, plus the wall-clock
#: campaign envelope) -> what the duration covers.
SPANS: Dict[str, str] = {
    "campaign": "whole-campaign wall-clock envelope",
    "campaign.probe": "CenProbe stage of a campaign",
    "centrace.sweep": "one CenTrace TTL sweep",
    "cenfuzz.endpoint": "all permutations for one fuzzed endpoint",
    "localize.collect": "one outcome-evidence collection campaign",
    "localize.xval": "whole localization cross-validation sweep",
    "service.unit": "one work unit executed by the campaign service",
}

#: Span-name prefixes with runtime-computed suffixes.
DYNAMIC_SPANS: Dict[str, str] = {
    "campaign.": "per-stage campaign time (campaign.traces, "
    "campaign.fuzz, ... — one per executor stage)",
}

#: Exact event kinds -> what one event records.
EVENTS: Dict[str, str] = {
    "stage": "one executor stage finished (stage name, unit count)",
    "sim.batch": "one batched sweep walked (size, fast-path flag)",
    "centrace.blocked": "a measurement observed blocking (endpoint, type)",
    "cenfuzz.endpoint": "one endpoint fuzzed (evasion/permutation counts)",
    "localize.placement": "one placement world scored (true index, methods)",
}

#: Registered counters with **no** literal call site: they are emitted
#: only through a whitelisted dynamic site (RP603 exempts them).
INDIRECT_COUNTERS: Set[str] = {
    # Emitted via TransitPolicy.expiry_counter in the simulator's
    # policy-driven transit engine.
    "sim.injected_ttl_expired",
}

#: ``module:Scope.function`` sites allowed to pass a computed (non
#: literal) telemetry name, with the justification. Anything else that
#: does so is an RP602 violation.
NONLITERAL_NAME_SITES: Dict[str, str] = {
    "repro.netsim.simulator:Simulator._expire_at_router": (
        "emits TransitPolicy.expiry_counter — policy table literals "
        "covered by sim.*_ttl_expired entries"
    ),
    "repro.experiments.epochs:EpochScheduler._run_cached": (
        "per-kind reuse counters — covered by the "
        "store.units_reused./store.units_executed. families"
    ),
    "repro.experiments.executor:CampaignExecutor._run": (
        "per-stage span names — covered by the campaign. span family"
    ),
}

#: Section ordering used by ``repro report --registry``.
SECTIONS = (
    ("Counters", COUNTERS),
    ("Counter families (dynamic suffix)", DYNAMIC_COUNTERS),
    ("Spans", SPANS),
    ("Span families (dynamic suffix)", DYNAMIC_SPANS),
    ("Events", EVENTS),
)


def render_registry() -> str:
    """Human-readable registry listing (``repro report --registry``)."""
    lines = ["Telemetry registry — the documented ops surface"]
    lines.append("=" * len(lines[0]))
    for title, table in SECTIONS:
        lines.append("")
        lines.append(title)
        lines.append("-" * len(title))
        width = max(len(name) for name in table)
        for name in sorted(table):
            lines.append(f"  {name:<{width}}  {table[name]}")
    return "\n".join(lines)


def registry_as_dict() -> Dict[str, Dict[str, str]]:
    """JSON-able registry (``repro report --registry --json``)."""
    return {
        "counters": dict(sorted(COUNTERS.items())),
        "dynamic_counters": dict(sorted(DYNAMIC_COUNTERS.items())),
        "spans": dict(sorted(SPANS.items())),
        "dynamic_spans": dict(sorted(DYNAMIC_SPANS.items())),
        "events": dict(sorted(EVENTS.items())),
        "indirect_counters": sorted(INDIRECT_COUNTERS),
        "nonliteral_name_sites": dict(sorted(NONLITERAL_NAME_SITES.items())),
    }
