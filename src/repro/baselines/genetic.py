"""Geneva-style genetic discovery of HTTP evasion strategies.

Bock et al.'s Geneva evolves packet-manipulation strategies against a
live censor with a genetic algorithm; the paper contrasts CenFuzz's
deterministic catalog with that approach (§6.1): genetic search
converges quickly on *some* working strategy but its probe sequence is
randomized, so results are not comparable across devices.

This module implements the application-layer analog: individuals are
sequences of request-mutation genes, fitness is measured by live probes
through the simulator (exactly like Geneva trains against a real
censor), and the search reports how many probes it spent before the
first success — the quantity the ablation benchmark compares against
CenFuzz's fixed 410-probe sweep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.cenfuzz.runner import CenFuzz, CenFuzzConfig
from ..core.cenfuzz.strategies import (
    ALT_SUBDOMAINS,
    ALT_TLDS,
    Permutation,
    swap_subdomain,
    swap_tld,
)
from ..netmodel.http import HTTPRequest, RawHeader

# ---------------------------------------------------------------------------
# Genes: atomic request mutations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Gene:
    """One atomic mutation of the outgoing request."""

    name: str
    parameter: str

    def apply(self, request: HTTPRequest) -> HTTPRequest:
        action = _GENE_ACTIONS[self.name]
        return action(request, self.parameter)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}({self.parameter})"


def _set_method(request: HTTPRequest, parameter: str) -> HTTPRequest:
    return request.copy(method=parameter)


def _set_http_word(request: HTTPRequest, parameter: str) -> HTTPRequest:
    return request.copy(http_word=parameter)


def _set_host_word(request: HTTPRequest, parameter: str) -> HTTPRequest:
    return request.copy(host_word=parameter)


def _set_path(request: HTTPRequest, parameter: str) -> HTTPRequest:
    return request.copy(path=parameter)


def _pad_host(request: HTTPRequest, parameter: str) -> HTTPRequest:
    lead, _, trail = parameter.partition("|")
    return request.copy(host=f"{lead}{request.host}{trail}")


def _swap_tld(request: HTTPRequest, parameter: str) -> HTTPRequest:
    return request.copy(host=swap_tld(request.host, parameter))


def _swap_subdomain(request: HTTPRequest, parameter: str) -> HTTPRequest:
    return request.copy(host=swap_subdomain(request.host, parameter))


def _set_delimiter(request: HTTPRequest, parameter: str) -> HTTPRequest:
    return request.copy(line_delimiter=parameter.replace("CR", "\r").replace("LF", "\n"))


def _add_header(request: HTTPRequest, parameter: str) -> HTTPRequest:
    name, _, value = parameter.partition("=")
    return request.copy(
        extra_headers=list(request.extra_headers) + [RawHeader(name, value)]
    )


def _case_host_word(request: HTTPRequest, parameter: str) -> HTTPRequest:
    word = request.host_word
    transformed = word.upper() if parameter == "upper" else word.lower()
    return request.copy(host_word=transformed)


_GENE_ACTIONS: Dict[str, Callable[[HTTPRequest, str], HTTPRequest]] = {
    "set_method": _set_method,
    "set_http_word": _set_http_word,
    "set_host_word": _set_host_word,
    "set_path": _set_path,
    "pad_host": _pad_host,
    "swap_tld": _swap_tld,
    "swap_subdomain": _swap_subdomain,
    "set_delimiter": _set_delimiter,
    "add_header": _add_header,
    "case_host_word": _case_host_word,
}

GENE_POOL: Tuple[Gene, ...] = tuple(
    [Gene("set_method", m) for m in ("POST", "PUT", "PATCH", "DELETE", "XXXX", "")]
    + [Gene("set_http_word", w) for w in ("HTTP/1.0", "HTTP/9", "HTTP1.1", "XXXX/1.1")]
    + [Gene("set_host_word", w) for w in ("HostHeader", "XHost", "HOST", "ost")]
    + [Gene("set_path", p) for p in ("?", "z", "/index.html", "//")]
    + [Gene("pad_host", p) for p in ("*|", "|*", "**|**", "|**")]
    + [Gene("swap_tld", t) for t in ALT_TLDS[:4]]
    + [Gene("swap_subdomain", s) for s in ALT_SUBDOMAINS[:4]]
    + [Gene("set_delimiter", d) for d in ("LF", "CR")]
    + [Gene("add_header", h) for h in ("Connection=keep-alive", "X-Pad=xxxx")]
    + [Gene("case_host_word", c) for c in ("upper", "lower")]
)


# ---------------------------------------------------------------------------
# Individuals and the search
# ---------------------------------------------------------------------------


@dataclass
class Individual:
    """A candidate strategy: genes applied in order to the request."""

    genes: Tuple[Gene, ...]
    fitness: Optional[float] = None
    evaded: bool = False
    circumvented: bool = False

    def build(self, domain: str) -> bytes:
        request = HTTPRequest(host=domain)
        for gene in self.genes:
            request = gene.apply(request)
        return request.build()

    def describe(self) -> str:
        return " + ".join(str(g) for g in self.genes) or "<identity>"


@dataclass
class GeneticConfig:
    """Knobs for the search (Geneva-flavoured defaults, miniaturized)."""

    population_size: int = 16
    generations: int = 12
    tournament_size: int = 3
    crossover_rate: float = 0.6
    mutation_rate: float = 0.5
    max_genes: int = 4
    elite: int = 2
    success_fitness: float = 100.0
    parsimony_penalty: float = 1.0
    circumvention_bonus: float = 50.0
    stop_on_circumvention: bool = True


@dataclass
class SearchOutcome:
    """What the search found and what it cost."""

    best: Individual
    probes_used: int
    generations_run: int
    succeeded: bool
    history: List[float] = field(default_factory=list)  # best fitness per gen


class GeneticSearch:
    """Evolve evasion strategies against one endpoint's censor."""

    def __init__(
        self,
        sim,
        client,
        endpoint_ip: str,
        test_domain: str,
        *,
        control_domain: str = "www.example.com",
        config: Optional[GeneticConfig] = None,
        seed: int = 0,
    ) -> None:
        self.fuzzer = CenFuzz(sim, client, config=CenFuzzConfig())
        self.endpoint_ip = endpoint_ip
        self.test_domain = test_domain
        self.control_domain = control_domain
        self.config = config or GeneticConfig()
        self.rng = random.Random(seed)
        self.probes_used = 0
        self._fitness_cache: Dict[Tuple[Gene, ...], Tuple[float, bool, bool]] = {}

    # -- evaluation --------------------------------------------------------

    def _probe(self, individual: Individual, domain: str):
        self.probes_used += 1
        permutation = Permutation(
            strategy="genetic",
            label=individual.describe()[:60],
            protocol="http",
            build=lambda _d, _i=individual, _dom=domain: _i.build(_dom),
        )
        return self.fuzzer.probe(self.endpoint_ip, permutation, domain)

    def evaluate(self, individual: Individual) -> float:
        """Live fitness: probe test + control domains (cached per genome)."""
        key = individual.genes
        if key in self._fitness_cache:
            fitness, evaded, circumvented = self._fitness_cache[key]
        else:
            test = self._probe(individual, self.test_domain)
            control = self._probe(individual, self.control_domain)
            evaded = not test.blocked and not control.blocked
            circumvented = evaded and test.served(self.test_domain)
            fitness = 0.0
            if evaded:
                fitness += self.config.success_fitness
            if circumvented:
                fitness += self.config.circumvention_bonus
            fitness -= self.config.parsimony_penalty * len(individual.genes)
            self._fitness_cache[key] = (fitness, evaded, circumvented)
        individual.fitness = fitness
        individual.evaded = evaded
        individual.circumvented = circumvented
        return fitness

    # -- operators -----------------------------------------------------------

    def _random_individual(self) -> Individual:
        count = self.rng.randint(1, 2)
        genes = tuple(self.rng.choice(GENE_POOL) for _ in range(count))
        return Individual(genes=genes)

    def _tournament(self, population: List[Individual]) -> Individual:
        contenders = self.rng.sample(
            population, min(self.config.tournament_size, len(population))
        )
        return max(contenders, key=lambda i: i.fitness or -1e9)

    def _crossover(self, a: Individual, b: Individual) -> Individual:
        if not a.genes or not b.genes:
            return Individual(genes=a.genes or b.genes)
        cut_a = self.rng.randint(0, len(a.genes))
        cut_b = self.rng.randint(0, len(b.genes))
        genes = (a.genes[:cut_a] + b.genes[cut_b:])[: self.config.max_genes]
        return Individual(genes=genes or (self.rng.choice(GENE_POOL),))

    def _mutate(self, individual: Individual) -> Individual:
        genes = list(individual.genes)
        roll = self.rng.random()
        if roll < 0.4 and len(genes) < self.config.max_genes:
            genes.insert(
                self.rng.randint(0, len(genes)), self.rng.choice(GENE_POOL)
            )
        elif roll < 0.7 and len(genes) > 1:
            genes.pop(self.rng.randrange(len(genes)))
        else:
            genes[self.rng.randrange(len(genes))] = self.rng.choice(GENE_POOL)
        return Individual(genes=tuple(genes))

    # -- main loop -------------------------------------------------------------

    def run(self) -> SearchOutcome:
        config = self.config
        population = [
            self._random_individual() for _ in range(config.population_size)
        ]
        history: List[float] = []
        best: Optional[Individual] = None
        generations_run = 0
        for generation in range(config.generations):
            generations_run = generation + 1
            for individual in population:
                self.evaluate(individual)
            population.sort(key=lambda i: i.fitness or -1e9, reverse=True)
            if best is None or (population[0].fitness or -1e9) > (best.fitness or -1e9):
                best = population[0]
            history.append(best.fitness or 0.0)
            done = best.circumvented if config.stop_on_circumvention else best.evaded
            if done:
                break
            next_population = population[: config.elite]
            while len(next_population) < config.population_size:
                parent = self._tournament(population)
                if self.rng.random() < config.crossover_rate:
                    child = self._crossover(parent, self._tournament(population))
                else:
                    child = Individual(genes=parent.genes)
                if self.rng.random() < config.mutation_rate:
                    child = self._mutate(child)
                next_population.append(child)
            population = next_population
        assert best is not None
        return SearchOutcome(
            best=best,
            probes_used=self.probes_used,
            generations_run=generations_run,
            succeeded=best.evaded,
            history=history,
        )
