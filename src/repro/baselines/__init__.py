"""Baseline comparison algorithms.

The paper positions CenFuzz against Geneva-style genetic strategy
discovery (§3.4/§6.1): genetic search finds *one* working evasion fast
but yields a non-deterministic, non-comparable feature space, while
CenFuzz tests a fixed strategy set everywhere. This package implements
the genetic baseline so the trade-off can be measured.
"""

from .genetic import (
    GENE_POOL,
    GeneticConfig,
    GeneticSearch,
    Individual,
    SearchOutcome,
)

__all__ = [
    "GENE_POOL",
    "GeneticConfig",
    "GeneticSearch",
    "Individual",
    "SearchOutcome",
]
