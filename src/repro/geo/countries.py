"""Study worlds: the AZ / BY / KZ / RU networks of §4.2, the blockpage
case-study network of §5.2, and the path-variance calibration network
of §4.1.

Each world mirrors the AS-level structure the paper reports:

* **AZ** — centralized: one in-path dropping device on the Telia
  (AS1299) → Delta Telecom (AS29049) ingress link carries ~89% of
  endpoints; a handful of org-level commercial devices elsewhere.
* **BY** — on-path RST injectors inside endpoint ASes (Beltelecom
  AS6697 and others); an upstream drop of ``bridges.torproject.org``
  inside Cogent (AS174), before traffic ever enters BY.
* **KZ** — the state ISP JSC-Kazakhtelecom (AS9198) drops in-path;
  about a third of endpoints are routed through Russian transit
  (Megafon AS31133, Kvant-telekom AS43727) whose devices block first.
* **RU** — decentralized: devices in many endpoint ASes, a mix of
  droppers, RST injectors, TTL-copying injectors ("Past E") and
  commercial boxes.

Everything is seeded and deterministic. ``scale`` shrinks endpoint
counts proportionally (RU defaults to a tenth of the paper's 1,291
endpoints; see EXPERIMENTS.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..devices.base import CensorshipDevice
from ..devices.vendors import (
    AZ_STATE,
    BY_DPI,
    CISCO,
    DDOSGUARD,
    FORTINET,
    KASPERSKY,
    KERIO,
    KZ_STATE,
    MIKROTIK,
    NETSWEEPER,
    PALO_ALTO,
    SONICWALL,
    SOPHOS,
    SQUID,
    TSPU_INPATH,
    TSPU_TTLCOPY,
    VendorProfile,
    make_device,
)
from ..netmodel.icmp import QUOTE_RFC792, QUOTE_RFC1812
from ..netsim.faults import FaultPlan
from ..netsim.routing import Hop, Path, Route
from ..netsim.simulator import Simulator
from ..netsim.topology import Client, Endpoint, Router, Topology
from ..services.banners import generic_linux_services
from ..services.webserver import FilteringWebServer, ServerProfile, WebServer
from .asdb import ASDatabase
from .drift import DriftPlan, apply_drift

CONTROL_DOMAIN = "www.example.com"

TEST_DOMAINS = {
    "AZ": [
        "www.azadliq.info",
        "www.meydan.tv",
        "www.rferl.org",
        "www.abzas.net",
        "www.ocmedia.az",
    ],
    "BY": [
        "charter97.org",
        "belsat.eu",
        "www.svaboda.org",
        "nashaniva.com",
        "bridges.torproject.org",
    ],
    "KZ": [
        "www.pokerstars.com",
        "www.dailymotion.com",
        "www.azattyq.org",
        "www.bet365.com",
        "bridges.torproject.org",
    ],
    "RU": [
        "bridges.torproject.org",
        "www.linkedin.com",
        "rutracker.org",
        "grani.ru",
        "kasparov.ru",
    ],
}


@dataclass(frozen=True)
class WorldSpec:
    """Everything needed to rebuild a study world from scratch.

    Worlds are fully deterministic functions of (country, seed, scale),
    so a parallel campaign worker can reconstruct a bit-identical
    replica in its own process from this spec alone.
    """

    country: str
    seed: Optional[int] = None
    scale: Optional[float] = None
    # Optional fault-injection plan (repro.netsim.faults.FaultPlan).
    # FaultPlan is frozen/hashable, so the spec stays usable as a cache
    # key and travels to parallel campaign workers unchanged.
    fault_plan: Optional[FaultPlan] = None
    # Longitudinal drift (repro.geo.drift): the world as of ``epoch``
    # under ``drift_plan``. Both frozen/hashable for the same reasons;
    # epoch 0 with any plan is identical to no plan at all.
    drift_plan: Optional[DriftPlan] = None
    epoch: int = 0

    def build(self) -> "StudyWorld":
        return build_world(
            self.country,
            seed=self.seed,
            scale=self.scale,
            fault_plan=self.fault_plan,
            drift_plan=self.drift_plan,
            epoch=self.epoch,
        )


@dataclass
class StudyWorld:
    """One country's measurement environment."""

    name: str
    country: str
    topology: Topology
    sim: Simulator
    asdb: ASDatabase
    remote_client: Client
    endpoints: List[Endpoint]
    test_domains: List[str]
    control_domain: str = CONTROL_DOMAIN
    in_country_client: Optional[Client] = None
    in_country_targets: List[Endpoint] = field(default_factory=list)
    devices: List[CensorshipDevice] = field(default_factory=list)
    device_host_ip: Dict[str, str] = field(default_factory=dict)
    notes: Dict[str, object] = field(default_factory=dict)
    # Set by build_world(); None for hand-built worlds (which then
    # cannot be sharded across processes — see experiments/executor.py).
    spec: Optional[WorldSpec] = None

    @property
    def net_context(self):
        """The simulator-owned identifier context (IP IDs, ephemeral
        ports, injection IDs, DNS cursor). The per-unit reset protocol
        rewinds it via ``world.net_context.reset()``."""
        return self.sim.net_context

    def endpoint_by_ip(self, ip: str) -> Optional[Endpoint]:
        node = self.topology.node_at(ip)
        return node if isinstance(node, Endpoint) else None


class WorldBuilder:
    """Shared plumbing for constructing study worlds."""

    # §4.3 measures 57.6% of *blocking-hop quotes* following RFC 792.
    # Routers are assigned a quoting policy with this share, set a bit
    # above the target because blocking hops oversample edge routers.
    RFC792_SHARE = 0.72

    def __init__(self, name: str, country: str, seed: int) -> None:
        self.name = name
        self.country = country
        self.rng = random.Random(seed)
        self.asdb = ASDatabase()
        self.topology = Topology(name)
        self.devices: List[CensorshipDevice] = []
        self.device_host_ip: Dict[str, str] = {}
        self._counter = 0

    # -- nodes ------------------------------------------------------------

    def register_as(self, asn: int, name: str, country: str) -> int:
        self.asdb.register(asn, name, country)
        return asn

    def _next_name(self, kind: str) -> str:
        self._counter += 1
        return f"{kind}{self._counter}"

    def router(
        self,
        asn: int,
        *,
        rewrite_tos: Optional[int] = None,
        rewrite_ip_flags: Optional[int] = None,
        responds_icmp: bool = True,
        quoting: Optional[str] = None,
    ) -> Router:
        if quoting is None:
            quoting = (
                QUOTE_RFC792
                if self.rng.random() < self.RFC792_SHARE
                else QUOTE_RFC1812
            )
        router = Router(
            name=self._next_name("r"),
            ip=self.asdb.allocate(asn),
            asn=asn,
            quoting=quoting,
            responds_icmp=responds_icmp,
            rewrite_tos=rewrite_tos,
            rewrite_ip_flags=rewrite_ip_flags,
        )
        return self.topology.add_router(router)

    def chain(self, asn: int, count: int, **kwargs) -> List[Router]:
        return [self.router(asn, **kwargs) for _ in range(count)]

    def client(self, asn: int, country: str, *, in_country: bool) -> Client:
        client = Client(
            name=self._next_name("client"),
            ip=self.asdb.allocate(asn),
            asn=asn,
            country=country,
            in_country=in_country,
        )
        return self.topology.add_client(client)

    def endpoint(
        self,
        asn: int,
        country: str,
        domains: Sequence[str],
        *,
        server: Optional[WebServer] = None,
        profile: Optional[ServerProfile] = None,
    ) -> Endpoint:
        if server is None:
            server = WebServer(domains, profile or ServerProfile())
        endpoint = Endpoint(
            name=self._next_name("ep"),
            ip=self.asdb.allocate(asn),
            asn=asn,
            server=server,
            country=country,
            domains=tuple(domains),
        )
        return self.topology.add_endpoint(endpoint)

    # -- devices ------------------------------------------------------------

    def place_device(
        self,
        profile: VendorProfile,
        domains: Sequence[str],
        host_router: Router,
        *,
        url_scope: Optional[bool] = None,
        rule_kind: Optional[str] = None,
        rule_kinds: Optional[Sequence[str]] = None,
        with_banners: Optional[bool] = None,
        generic_banners: bool = False,
    ) -> CensorshipDevice:
        """Create a device whose link leads into ``host_router``.

        The caller still has to put the device on the right Hop when
        building routes; this registers ground truth and attaches the
        vendor's management services to the host router (the IP a
        Control-Domain CenTrace reports as the terminating hop, which
        is exactly where CenProbe's banner grabs go, §5.2).
        """
        if url_scope is None:
            # Per-deployment coin flip weighted by how often this
            # vendor's rules carry a path component.
            url_scope = self.rng.random() < profile.path_scope_url_share
        device = make_device(
            profile,
            self._next_name("dev"),
            domains,
            url_scope=url_scope,
            rule_kind=rule_kind,
            rule_kinds=rule_kinds,
        )
        expose = (
            profile.has_management_plane if with_banners is None else with_banners
        )
        if expose:
            for service in profile.management_services():
                host_router.add_service(service)
        elif generic_banners:
            for service in generic_linux_services():
                host_router.add_service(service)
        if profile.name:
            from ..devices.personality import VENDOR_PERSONALITIES

            host_router.personality = VENDOR_PERSONALITIES.get(profile.name)
        self.devices.append(device)
        self.device_host_ip[device.name] = host_router.ip
        return device

    # -- routes -------------------------------------------------------------

    def route(
        self,
        client: Client,
        endpoint: Endpoint,
        hops: Sequence[Tuple[Router, Sequence[CensorshipDevice]]],
        *,
        alternates: Sequence[Sequence[Tuple[Router, Sequence[CensorshipDevice]]]] = (),
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        """Register the route client -> endpoint.

        ``hops`` is the primary path as (router, devices-on-link-to-it)
        pairs, endpoint excluded (appended automatically).
        """

        def to_path(pairs) -> Path:
            hop_list = [
                Hop(router.name, link_devices=list(devices))
                for router, devices in pairs
            ]
            hop_list.append(Hop(endpoint.name))
            return Path(hop_list)

        paths = [to_path(hops)] + [to_path(alt) for alt in alternates]
        self.topology.add_route(
            client.ip, endpoint.ip, Route(paths, weights=weights)
        )

    def finish(
        self,
        remote_client: Client,
        endpoints: List[Endpoint],
        test_domains: List[str],
        *,
        seed: int = 0,
        loss_rate: float = 0.002,
        **extra,
    ) -> StudyWorld:
        sim = Simulator(self.topology, seed=seed, loss_rate=loss_rate)
        return StudyWorld(
            name=self.name,
            country=self.country,
            topology=self.topology,
            sim=sim,
            asdb=self.asdb,
            remote_client=remote_client,
            endpoints=endpoints,
            test_domains=test_domains,
            devices=self.devices,
            device_host_ip=self.device_host_ip,
            **extra,
        )


def _scaled(count: int, scale: float) -> int:
    return max(1, round(count * scale))


def _spread(rng: random.Random, items: List, buckets: int) -> List[List]:
    """Distribute ``items`` round-robin into ``buckets`` groups."""
    groups: List[List] = [[] for _ in range(buckets)]
    for i, item in enumerate(items):
        groups[i % buckets].append(item)
    return groups


# ---------------------------------------------------------------------------
# Azerbaijan
# ---------------------------------------------------------------------------


def build_az_world(seed: int = 11, scale: float = 1.0) -> StudyWorld:
    """Azerbaijan: centralized blocking at the Telia -> Delta Telecom
    ingress, plus a few org-level commercial devices (§4.3, §5.3)."""
    b = WorldBuilder("AZ-study", "AZ", seed)
    domains = TEST_DOMAINS["AZ"]

    as_us = b.register_as(394089, "MEASUREMENT-LAB-US", "US")
    as_telia = b.register_as(1299, "TELIANET Telia Company", "SE")
    as_retn = b.register_as(9002, "RETN-AS", "EU")
    as_delta = b.register_as(29049, "Delta Telecom Ltd", "AZ")
    endpoint_ases = [
        b.register_as(8503, "AzTelecomNet", "AZ"),
        b.register_as(41997, "AzMobile LLC", "AZ"),
        b.register_as(28787, "AzInternet", "AZ"),
        b.register_as(57293, "BakuNet", "AZ"),
        b.register_as(49800, "AzEduNet", "AZ"),
        b.register_as(197712, "AzHost Solutions", "AZ"),
        b.register_as(39232, "CaspianNet", "AZ"),
        b.register_as(209092, "GanjaNet", "AZ"),
        b.register_as(34876, "AzDataCom", "AZ"),
        as_delta,
    ]

    remote = b.client(as_us, "US", in_country=False)
    client_side = b.chain(as_us, 2)
    telia = b.chain(as_telia, 2)
    telia[1].rewrite_tos = 0x28  # transit DSCP remarking (quoted-delta source)
    retn = b.chain(as_retn, 2)
    delta_ingress = b.router(as_delta)
    delta_core = b.chain(as_delta, 2)

    # The centralized state device on the Telia -> Delta link: the
    # terminating hop (and thus the "potential device IP") is Delta's
    # ingress router, which exposes no services.
    state_device = b.place_device(
        AZ_STATE, domains[:2], delta_ingress, url_scope=True,
        rule_kinds=("exact", "suffix"),
    )

    # Org-level commercial devices on RETN-routed paths.
    as_cisco_org = endpoint_ases[4]  # AzEduNet
    cisco_edge = b.router(as_cisco_org)
    cisco_device = b.place_device(CISCO, [domains[2], domains[3]], cisco_edge)
    as_forti_org = endpoint_ases[5]  # AzHost
    forti_edge = b.router(as_forti_org)
    forti_device = b.place_device(FORTINET, domains[:3], forti_edge)
    as_pa_org = endpoint_ases[6]  # CaspianNet
    pa_edge = b.router(as_pa_org)
    pa_device = b.place_device(PALO_ALTO, [domains[0]], pa_edge)

    endpoints: List[Endpoint] = []
    total = _scaled(29, scale)
    retn_count = max(3, round(total * 0.12)) if total >= 8 else 1
    telia_count = total - retn_count

    # Telia-routed endpoints (behind the state device).
    telia_as_pool = endpoint_ases[:4] + endpoint_ases[7:]
    for i in range(telia_count):
        asn = telia_as_pool[i % len(telia_as_pool)]
        edge = b.router(asn)
        if i < 2:
            # Local (endpoint/NAT) filtering of a domain the upstream
            # device does NOT block — the paper's "At E" cases.
            server = FilteringWebServer(
                [f"org{i}.az"], [domains[3]], mode="drop"
            )
            ep = b.endpoint(asn, "AZ", [f"org{i}.az"], server=server)
        else:
            ep = b.endpoint(asn, "AZ", [f"org{i}.az"])
        hops = (
            [(r, []) for r in client_side]
            + [(telia[0], []), (telia[1], [])]
            + [(delta_ingress, [state_device])]
            + [(r, []) for r in delta_core]
            + [(edge, [])]
        )
        alt = (
            [(r, []) for r in client_side]
            + [(telia[0], []), (b.router(as_telia), [])]
            + [(delta_ingress, [state_device])]
            + [(r, []) for r in delta_core]
            + [(edge, [])]
        )
        if i % 4 == 0:
            b.route(remote, ep, hops, alternates=[alt], weights=[0.8, 0.2])
        else:
            b.route(remote, ep, hops)
        endpoints.append(ep)

    # RETN-routed endpoints (org-level devices).
    org_devices = [
        (as_cisco_org, cisco_edge, cisco_device),
        (as_forti_org, forti_edge, forti_device),
        (as_pa_org, pa_edge, pa_device),
    ]
    for i in range(retn_count):
        asn, edge, device = org_devices[i % len(org_devices)]
        ep = b.endpoint(asn, "AZ", [f"retnorg{i}.az"])
        hops = (
            [(r, []) for r in client_side]
            + [(r, []) for r in retn]
            + [(edge, [device])]
        )
        b.route(remote, ep, hops)
        endpoints.append(ep)

    # In-country client inside Delta Telecom, two hops from the device.
    in_client = b.client(as_delta, "AZ", in_country=True)
    delta_access = b.router(as_delta)
    as_origin = b.register_as(16509, "GLOBAL-ORIGIN-HOSTING", "US")
    origin_edge = b.chain(as_origin, 2)
    targets = []
    for i, origin_domain in enumerate([domains[0], domains[4]]):
        origin = b.endpoint(as_origin, "US", [origin_domain])
        hops = (
            [(delta_access, [])]
            + [(delta_ingress, [state_device])]
            + [(telia[1], []), (telia[0], [])]
            + [(r, []) for r in origin_edge]
        )
        b.route(in_client, origin, hops)
        targets.append(origin)

    world = b.finish(
        remote,
        endpoints,
        domains,
        seed=seed,
        in_country_client=in_client,
        in_country_targets=targets,
    )
    world.notes["state_device"] = state_device.name
    world.notes["ingress_ip"] = delta_ingress.ip
    return world


# ---------------------------------------------------------------------------
# Belarus
# ---------------------------------------------------------------------------


def build_by_world(seed: int = 13, scale: float = 1.0) -> StudyWorld:
    """Belarus: on-path RST injectors in endpoint ASes; an upstream
    Cogent drop of bridges.torproject.org before traffic enters BY."""
    b = WorldBuilder("BY-study", "BY", seed)
    domains = TEST_DOMAINS["BY"]

    as_us = b.register_as(394089, "MEASUREMENT-LAB-US", "US")
    as_cogent = b.register_as(174, "COGENT-174", "US")
    as_telia = b.register_as(1299, "TELIANET Telia Company", "SE")
    as_beltel = b.register_as(6697, "Beltelecom", "BY")
    other_ases = [
        b.register_as(60280, "NTEC Belarus", "BY"),
        b.register_as(21274, "MinskTrans Net", "BY"),
        b.register_as(50685, "BelCloud", "BY"),
        b.register_as(198252, "ByFiber", "BY"),
        b.register_as(44087, "GomelNet", "BY"),
        b.register_as(205943, "BrestTelecom", "BY"),
        b.register_as(31143, "VitebskNet", "BY"),
        b.register_as(56740, "MogilevOnline", "BY"),
        b.register_as(197695, "ByHosting", "BY"),
        b.register_as(39187, "GrodnoLink", "BY"),
        b.register_as(50294, "PolotskNet", "BY"),
        b.register_as(208575, "BarysawNet", "BY"),
        b.register_as(35647, "SlutskCom", "BY"),
        b.register_as(49711, "PinskNet", "BY"),
        b.register_as(60330, "OrshaTele", "BY"),
        b.register_as(199995, "LidaNet", "BY"),
        b.register_as(43395, "BabruyskISP", "BY"),
        b.register_as(197348, "NavapolackNet", "BY"),
    ]
    endpoint_ases = [as_beltel] + other_ases  # 19 ASes, as in Table 1

    remote = b.client(as_us, "US", in_country=False)
    client_side = b.chain(as_us, 2)
    cogent = b.chain(as_cogent, 2, quoting=QUOTE_RFC792)
    telia = b.chain(as_telia, 2)
    telia[0].rewrite_tos = 0x20  # only the minority Telia-routed paths
    beltel_backbone = b.chain(as_beltel, 2)

    # The upstream anomaly: Cogent drops bridges.torproject.org inside
    # its own network, before traffic enters BY (§4.3).
    cogent_device = b.place_device(
        TSPU_INPATH, ["bridges.torproject.org"], cogent[1], with_banners=False
    )

    endpoints: List[Endpoint] = []
    total = _scaled(123, scale)
    # Half the endpoints sit in ASes that deploy on-path RST injectors.
    device_as_share = endpoint_ases[: len(endpoint_ases) // 2 + 1]
    devices_by_as: Dict[int, Tuple[Router, CensorshipDevice]] = {}
    for i, asn in enumerate(device_as_share):
        edge = b.router(asn)
        blocked = domains[:2] if i % 2 == 0 else domains[:1]
        device = b.place_device(
            BY_DPI, blocked, edge, with_banners=False,
            generic_banners=(i % 4 == 0),
        )
        devices_by_as[asn] = (edge, device)

    for i in range(total):
        asn = endpoint_ases[i % len(endpoint_ases)]
        via_cogent = (i % 9) != 0  # ~89% of paths transit Cogent
        at_e = i % 13 == 7
        if at_e:
            server = FilteringWebServer(
                [f"org{i}.by"], [domains[2], domains[3]], mode="reset"
            )
            ep = b.endpoint(asn, "BY", [f"org{i}.by"], server=server)
        else:
            ep = b.endpoint(asn, "BY", [f"org{i}.by"])
        if asn in devices_by_as:
            edge, device = devices_by_as[asn]
            last = [(edge, [device])]
        else:
            last = [(b.router(asn), [])] if i % 3 == 0 else [
                (beltel_backbone[1], [])
            ]
        transit = (
            [(cogent[0], []), (cogent[1], [cogent_device])]
            if via_cogent
            else [(r, []) for r in telia]
        )
        hops = (
            [(r, []) for r in client_side]
            + transit
            + [(beltel_backbone[0], [])]
            + last
        )
        b.route(remote, ep, hops)
        endpoints.append(ep)

    world = b.finish(remote, endpoints, domains, seed=seed)
    world.notes["cogent_device"] = cogent_device.name
    return world


# ---------------------------------------------------------------------------
# Kazakhstan
# ---------------------------------------------------------------------------


def build_kz_world(seed: int = 17, scale: float = 1.0) -> StudyWorld:
    """Kazakhstan: JSC-Kazakhtelecom drops in-path; a third of remote
    endpoints are reached through Russian transit whose devices block
    first (§4.3's extraterritorial observation)."""
    b = WorldBuilder("KZ-study", "KZ", seed)
    domains = TEST_DOMAINS["KZ"]

    as_us = b.register_as(394089, "MEASUREMENT-LAB-US", "US")
    as_telia = b.register_as(1299, "TELIANET Telia Company", "SE")
    as_rostelecom = b.register_as(12389, "ROSTELECOM-AS", "RU")
    as_megafon = b.register_as(31133, "PJSC MegaFon", "RU")
    as_kvant = b.register_as(43727, "JSC Kvant-telekom", "RU")
    as_kaztel = b.register_as(9198, "JSC Kazakhtelecom", "KZ")
    as_hosting = b.register_as(203087, "KZ Hosting Provider", "KZ")
    other_ases = [
        b.register_as(21299, "Kar-Tel LLC", "KZ"),
        b.register_as(35104, "AlmatyNet", "KZ"),
        b.register_as(48503, "AstanaCom", "KZ"),
        b.register_as(206026, "QazCloud", "KZ"),
        b.register_as(29555, "ShymkentISP", "KZ"),
        b.register_as(50482, "AktobeNet", "KZ"),
        b.register_as(197156, "KaragandaTele", "KZ"),
        b.register_as(61343, "PavlodarLink", "KZ"),
        b.register_as(21131, "TarazNet", "KZ"),
        b.register_as(51341, "AtyrauCom", "KZ"),
        b.register_as(204997, "KostanayNet", "KZ"),
        b.register_as(44725, "SemeyOnline", "KZ"),
        b.register_as(34922, "OralISP", "KZ"),
        b.register_as(208950, "AktauTele", "KZ"),
        b.register_as(49151, "KyzylordaNet", "KZ"),
        b.register_as(198835, "TaldykorganCom", "KZ"),
        b.register_as(35168, "KokshetauLink", "KZ"),
        b.register_as(209750, "TurkistanNet", "KZ"),
        b.register_as(43994, "EkibastuzISP", "KZ"),
        b.register_as(50597, "RudnyNet", "KZ"),
        b.register_as(197695 + 100000, "ZhezkazganTele", "KZ"),
        b.register_as(61020, "BalkashCom", "KZ"),
        b.register_as(48502, "KentauNet", "KZ"),
        b.register_as(29046, "TemirtauISP", "KZ"),
        b.register_as(203999, "KulsaryLink", "KZ"),
        b.register_as(60771, "ZhanaozenNet", "KZ"),
        b.register_as(49532, "StepnogorskCom", "KZ"),
    ]
    endpoint_ases = [as_kaztel, as_hosting] + other_ases  # 29 ASes

    remote = b.client(as_us, "US", in_country=False)
    client_side = b.chain(as_us, 2)
    telia = b.chain(as_telia, 2)
    rostelecom = b.chain(as_rostelecom, 2)
    rostelecom[1].rewrite_tos = 0x48
    megafon = b.chain(as_megafon, 2)
    kvant = b.chain(as_kvant, 2)
    kaztel_ingress_w = b.router(as_kaztel)  # western (Telia) ingress
    kaztel_ingress_n = b.router(as_kaztel)  # northern (RU) ingress
    kaztel_core = b.chain(as_kaztel, 2)

    # State devices at both Kazakhtelecom ingress links. The state
    # blocklist covers four of the five test domains; the fifth
    # (bridges.torproject.org) is blocked upstream in Russian transit
    # for RU-routed endpoints and locally at a few "At E" endpoints.
    kz_blocklist = domains[:4]
    # pokerstars/dailymotion carry exact rules (their subdomain/padded
    # variants evade, §6.3's circumvention examples); the rest wildcard.
    state_rule_kinds = ("exact", "exact", "suffix", "suffix")
    kz_device_w = b.place_device(
        KZ_STATE, kz_blocklist, kaztel_ingress_w, url_scope=True,
        rule_kinds=state_rule_kinds,
    )
    kz_device_n = b.place_device(
        KZ_STATE, kz_blocklist, kaztel_ingress_n, url_scope=True,
        rule_kinds=state_rule_kinds,
    )
    # Russian transit devices (extraterritorial blocking): both block
    # the domains Russia censors among our KZ test list.
    ru_blocked = ["bridges.torproject.org", "www.bet365.com"]
    megafon_device = b.place_device(
        TSPU_INPATH, ru_blocked, megafon[1], with_banners=False
    )
    kvant_device = b.place_device(
        TSPU_INPATH, ru_blocked, kvant[1], with_banners=False
    )

    # Commercial org-level devices in directly-peered endpoint ASes
    # (they bypass the state device, so their own blocking terminates
    # there — these are the banner-grab targets of §5.3).
    org_profiles = [
        (CISCO, [domains[0], domains[3]]),
        (CISCO, [domains[0]]),
        (FORTINET, domains[:3]),
        (FORTINET, [domains[0], domains[1]]),
        (KERIO, [domains[0]]),
        (KERIO, [domains[0], domains[3]]),
        (MIKROTIK, [domains[0]]),
    ]
    org_devices = []
    for i, (profile, blocked) in enumerate(org_profiles):
        asn = other_ases[i]
        edge = b.router(asn)
        device = b.place_device(profile, blocked, edge)
        org_devices.append((asn, edge, device))

    endpoints: List[Endpoint] = []
    total = _scaled(95, scale)
    ru_routed = round(total * 0.34)
    direct_peered = min(len(org_devices) * 2, max(2, round(total * 0.14)))
    telia_routed = total - ru_routed - direct_peered

    index = 0
    for i in range(telia_routed):
        asn = endpoint_ases[index % len(endpoint_ases)]
        index += 1
        if i % 11 == 6:
            # "At E": the endpoint locally filters the one test domain
            # the state device does not block.
            server = FilteringWebServer(
                [f"org{i}.kz"], [domains[4]], mode="drop"
            )
            ep = b.endpoint(asn, "KZ", [f"org{i}.kz"], server=server)
        else:
            ep = b.endpoint(asn, "KZ", [f"org{i}.kz"])
        # Kazakhtelecom's internal depth varies: roughly half the
        # endpoints hang directly off the backbone (blocking two hops
        # away), the rest sit one AS-edge deeper (Figure 4's KZ
        # hop-distance spread).
        if i % 2 == 0:
            tail = [(kaztel_core[0], []), (b.router(asn), [])]
        else:
            tail = [(kaztel_core[1], [])]
        hops = (
            [(r, []) for r in client_side]
            + [(r, []) for r in telia]
            + [(kaztel_ingress_w, [kz_device_w])]
            + tail
        )
        b.route(remote, ep, hops)
        endpoints.append(ep)

    for i in range(ru_routed):
        asn = endpoint_ases[index % len(endpoint_ases)]
        index += 1
        ep = b.endpoint(asn, "KZ", [f"ruorg{i}.kz"])
        ru_leg = megafon if i % 2 == 0 else kvant
        ru_device = megafon_device if i % 2 == 0 else kvant_device
        hops = (
            [(r, []) for r in client_side]
            + [(r, []) for r in rostelecom]
            + [(ru_leg[0], []), (ru_leg[1], [ru_device])]
            + [(kaztel_ingress_n, [kz_device_n])]
            + [(kaztel_core[0], [])]
            + [(b.router(asn), [])]
        )
        b.route(remote, ep, hops)
        endpoints.append(ep)

    for i in range(direct_peered):
        asn, edge, device = org_devices[i % len(org_devices)]
        if i % 5 == 4:
            # "At E": the endpoint itself filters a domain its own
            # org device does not (visible because these paths bypass
            # the state device).
            server = FilteringWebServer(
                [f"peerorg{i}.kz"], [domains[2]], mode="drop"
            )
            ep = b.endpoint(asn, "KZ", [f"peerorg{i}.kz"], server=server)
        else:
            ep = b.endpoint(asn, "KZ", [f"peerorg{i}.kz"])
        hops = (
            [(r, []) for r in client_side]
            + [(r, []) for r in telia]
            + [(edge, [device])]
        )
        b.route(remote, ep, hops)
        endpoints.append(ep)

    # In-country client: a hosting provider downstream of AS9198; the
    # state device sits three hops away (§4.3 / Figure 1).
    in_client = b.client(as_hosting, "KZ", in_country=True)
    hosting_edge = b.router(as_hosting)
    kaztel_access = b.router(as_kaztel)
    as_origin = b.register_as(16509, "GLOBAL-ORIGIN-HOSTING", "US")
    origin_edge = b.chain(as_origin, 2)
    origin_specs = [
        ("www.pokerstars.com", ServerProfile.lenient("www.pokerstars.com")),
        (
            "www.dailymotion.com",
            ServerProfile(wildcard_subdomains=True, requires_valid_version=True),
        ),
        ("www.azattyq.org", ServerProfile()),
        ("neutral-origin.example", ServerProfile()),
        ("static-cdn.example", ServerProfile()),
    ]
    targets = []
    for origin_domain, profile in origin_specs:
        origin = b.endpoint(as_origin, "US", [origin_domain], profile=profile)
        hops = (
            [(hosting_edge, []), (kaztel_access, [])]
            + [(kaztel_ingress_w, [kz_device_w])]
            + [(telia[1], []), (telia[0], [])]
            + [(r, []) for r in origin_edge]
        )
        b.route(in_client, origin, hops)
        targets.append(origin)

    world = b.finish(
        remote,
        endpoints,
        domains,
        seed=seed,
        in_country_client=in_client,
        in_country_targets=targets,
    )
    world.notes["state_device_w"] = kz_device_w.name
    world.notes["ru_transit_asns"] = (31133, 43727)
    return world


# ---------------------------------------------------------------------------
# Russia
# ---------------------------------------------------------------------------


def build_ru_world(seed: int = 19, scale: float = 0.1) -> StudyWorld:
    """Russia: decentralized censorship — devices in many endpoint ASes
    with heterogeneous actions, including TTL-copying injectors.

    ``scale`` defaults to 0.1 of the paper's 1,291 endpoints; the
    *shape* of the results (who blocks, how, where) is scale-free.
    """
    b = WorldBuilder("RU-study", "RU", seed)
    domains = TEST_DOMAINS["RU"]

    as_us = b.register_as(394089, "MEASUREMENT-LAB-US", "US")
    as_telia = b.register_as(1299, "TELIANET Telia Company", "SE")
    as_rostelecom = b.register_as(12389, "ROSTELECOM-AS", "RU")
    rng = b.rng

    named_ases = [
        (8359, "MTS PJSC"),
        (3216, "PJSC Vimpelcom"),
        (31133, "PJSC MegaFon"),
        (20764, "RASCOM CJSC"),
        (12714, "PJSC TransTeleCom"),
        (8732, "JSC Comcor"),
        (25513, "PJSC Moscow city telephone network"),
        (42610, "Rostelecom Macro NCC"),
        (41661, "ER-Telecom Holding Izhevsk"),
        (9049, "JSC ER-Telecom Holding"),
    ]
    endpoint_ases: List[int] = []
    for asn, name in named_ases:
        endpoint_ases.append(b.register_as(asn, name, "RU"))
    for i in range(40):
        endpoint_ases.append(
            b.register_as(210000 + i, f"RU Regional ISP {i}", "RU")
        )

    remote = b.client(as_us, "US", in_country=False)
    client_side = b.chain(as_us, 2)
    telia = b.chain(as_telia, 2)
    backbone = b.chain(as_rostelecom, 3)
    backbone[1].rewrite_tos = 0x68  # about half the paths see remarking
    # Exactly one path remarks the IP flags field (§4.3 reports a
    # single trace with a different-flags quote).
    flags_router = b.router(as_rostelecom, rewrite_ip_flags=0x0)

    # Device deployment: ~40% of endpoint ASes run a device, with a mix
    # of behaviours reflecting §4.3/§5.3.
    device_plan = (
        [TSPU_INPATH] * 10
        + [TSPU_TTLCOPY] * 3
        + [BY_DPI] * 2  # on-path RST injectors also exist in RU (Fig 4)
        + [CISCO] * 3
        + [FORTINET, KASPERSKY, DDOSGUARD, PALO_ALTO]
    )
    devices_by_as: Dict[int, Tuple[Router, CensorshipDevice]] = {}
    for i, profile in enumerate(device_plan):
        asn = endpoint_ases[i]
        edge = b.router(asn)
        # Decentralized policy: each AS blocks its own subset.
        count = rng.choice([1, 2, 2, 3])
        blocked = rng.sample(domains, count)
        device = b.place_device(
            profile,
            blocked,
            edge,
            generic_banners=(profile.name is None and i % 3 == 0),
        )
        devices_by_as[asn] = (edge, device)

    # One path segment without ICMP responses (the "No ICMP" case):
    # an RST injector whose terminating hop and the hop before it both
    # stay silent, so the injected reset is the only signal there.
    silent_asn = endpoint_ases[0]
    silent_router = b.router(silent_asn, responds_icmp=False)
    silent_prev = b.router(silent_asn, responds_icmp=False)
    noicmp_device = b.place_device(
        BY_DPI, [domains[0]], silent_router, with_banners=False
    )

    endpoints: List[Endpoint] = []
    total = _scaled(1291, scale)
    device_as_count = len(device_plan)
    for i in range(total):
        # Devices' ASes hold ~1/6 of endpoints; the rest are clean.
        if i % 6 == 0:
            asn = endpoint_ases[(i // 6) % device_as_count]
        else:
            asn = endpoint_ases[device_as_count + (i % (len(endpoint_ases) - device_as_count))]
        at_e = i % 17 == 3
        if at_e:
            server = FilteringWebServer(
                [f"org{i}.ru"], [rng.choice(domains)], mode=rng.choice(["drop", "reset"])
            )
            ep = b.endpoint(asn, "RU", [f"org{i}.ru"], server=server)
        else:
            ep = b.endpoint(asn, "RU", [f"org{i}.ru"])
        if asn in devices_by_as:
            edge, device = devices_by_as[asn]
            if i == 0:
                # The No-ICMP case: neither the hop the device's link
                # leads to nor the one before it answers with ICMP.
                last = [(silent_prev, []), (silent_router, [noicmp_device])]
            else:
                last = [(edge, [device])]
        else:
            last = [(b.router(asn), [])]
        middle = [(backbone[0], []), (backbone[rng.choice([1, 2])], [])]
        if i == 6:
            middle.append((flags_router, []))
        hops = (
            [(r, []) for r in client_side]
            + [(r, []) for r in telia]
            + middle
            + last
        )
        b.route(remote, ep, hops)
        endpoints.append(ep)

    # In-country client (Moscow hosting, clean upstream): observes no
    # censorship, matching §4.3.
    as_mskhost = b.register_as(198610, "Moscow Hosting JSC", "RU")
    in_client = b.client(as_mskhost, "RU", in_country=True)
    msk_edge = b.chain(as_mskhost, 2)
    as_origin = b.register_as(16509, "GLOBAL-ORIGIN-HOSTING", "US")
    origin_edge = b.chain(as_origin, 2)
    targets = []
    for origin_domain in ["neutral-origin.example", "static-cdn.example"]:
        origin = b.endpoint(as_origin, "US", [origin_domain])
        hops = (
            [(r, []) for r in msk_edge]
            + [(backbone[0], [])]
            + [(telia[1], []), (telia[0], [])]
            + [(r, []) for r in origin_edge]
        )
        b.route(in_client, origin, hops)
        targets.append(origin)

    world = b.finish(
        remote,
        endpoints,
        domains,
        seed=seed,
        in_country_client=in_client,
        in_country_targets=targets,
    )
    world.notes["scale"] = scale
    return world


# ---------------------------------------------------------------------------
# §5.2 blockpage case-study world
# ---------------------------------------------------------------------------


def build_blockpage_study_world(seed: int = 23, scale: float = 1.0) -> StudyWorld:
    """Worldwide endpoints behind blockpage-injecting in-path devices.

    Models §5.2's validation set: Censored Planet saw blockpage
    injection toward these endpoints; CenTrace finds the device IP,
    CenProbe grabs banners, and blockpage labels validate banner labels.
    Vendor mix: commercial filters whose blockpages are fingerprintable.
    """
    b = WorldBuilder("blockpage-study", "WW", seed)
    blocked_domains = [
        "www.blockedcontent.example",
        "adult.example",
        "gambling-site.example",
        "proxysite.example",
        "streaming.example",
    ]

    as_us = b.register_as(394089, "MEASUREMENT-LAB-US", "US")
    remote = b.client(as_us, "US", in_country=False)
    client_side = b.chain(as_us, 2)
    as_transit = b.register_as(3356, "LEVEL3", "US")
    transit = b.chain(as_transit, 2)

    vendor_mix = (
        [FORTINET] * 18
        + [NETSWEEPER] * 16
        + [SONICWALL] * 12
        + [SQUID] * 16
        + [SOPHOS] * 14
    )
    countries = ["IN", "ID", "TH", "TR", "EG", "SA", "PK", "VN", "MX", "BR"]
    endpoints: List[Endpoint] = []
    total = _scaled(76, scale)
    for i in range(total):
        profile = vendor_mix[i % len(vendor_mix)]
        country = countries[i % len(countries)]
        asn = b.register_as(300000 + i, f"{country} Org Network {i}", country)
        edge = b.router(asn)
        # Banner exposure (§5.3 case study): 87% of device IPs expose at
        # least one service; of those, ~39% carry an explicit vendor
        # indication, the rest look generic.
        roll = i % 8
        if roll < 3:
            with_banners, generic = True, False
        elif roll < 7:
            with_banners, generic = False, True
        else:
            with_banners, generic = False, False
        blocked = blocked_domains[: 2 + (i % 3)]
        device = b.place_device(
            profile, blocked, edge, with_banners=with_banners,
            generic_banners=generic,
        )
        ep = b.endpoint(asn, country, [f"org{i}.example"])
        hops = (
            [(r, []) for r in client_side]
            + [(r, []) for r in transit]
            + [(b.router(asn), [])]
            + [(edge, [device])]
        )
        b.route(remote, ep, hops)
        endpoints.append(ep)

    return b.finish(remote, endpoints, blocked_domains, seed=seed)


# ---------------------------------------------------------------------------
# §4.1 path-variance calibration world
# ---------------------------------------------------------------------------


def build_calibration_world(seed: int = 29) -> StudyWorld:
    """20 endpoints with ECMP path diversity, one with extreme variance.

    Reproduces §4.1's calibration experiment: 200 traceroutes per
    endpoint; ~90% of each endpoint's paths covered within ~11 traces;
    a single endpoint with >100 unique paths.
    """
    b = WorldBuilder("calibration", "WW", seed)
    as_us = b.register_as(394089, "MEASUREMENT-LAB-US", "US")
    remote = b.client(as_us, "US", in_country=False)
    client_side = b.chain(as_us, 2)
    rng = b.rng

    endpoints: List[Endpoint] = []
    for i in range(19):
        asn = b.register_as(310000 + i, f"Calib Net {i}", "WW")
        n_paths = rng.choice([1, 1, 2, 2, 3])
        shared_tail = b.chain(asn, 2)
        ep = b.endpoint(asn, "WW", [f"calib{i}.example"])
        paths = []
        for _ in range(n_paths):
            middle = b.chain(asn, 2)
            paths.append(
                [(r, []) for r in client_side]
                + [(r, []) for r in middle]
                + [(r, []) for r in shared_tail]
            )
        weights = [6.0] + [1.0] * (len(paths) - 1)
        b.route(
            remote, ep, paths[0], alternates=paths[1:], weights=weights
        )
        endpoints.append(ep)

    # The pathological endpoint: three ECMP stages of five choices each
    # -> 125 possible paths.
    asn = b.register_as(319999, "Calib Megapath Net", "WW")
    stage1 = b.chain(asn, 5)
    stage2 = b.chain(asn, 5)
    stage3 = b.chain(asn, 5)
    ep = b.endpoint(asn, "WW", ["calib-mega.example"])
    paths = []
    for r1 in stage1:
        for r2 in stage2:
            for r3 in stage3:
                paths.append(
                    [(r, []) for r in client_side]
                    + [(r1, []), (r2, []), (r3, [])]
                )
    b.route(remote, ep, paths[0], alternates=paths[1:])
    endpoints.append(ep)

    return b.finish(remote, endpoints, ["calib.example"], seed=seed, loss_rate=0.0)


# ---------------------------------------------------------------------------
# DNS-injection demo world (the §8 extension)
# ---------------------------------------------------------------------------


def build_dns_world(seed: int = 31) -> StudyWorld:
    """A network with DNS-injecting devices (§8's future-work protocol).

    Open resolvers sit behind two kinds of devices: an on-path injector
    that races forged A records against the real resolver (the
    Great-Firewall pattern) and an in-path device that swallows the
    query and answers with a rotating set of bogus addresses.
    """
    from ..devices.actions import DNSBlockAction
    from ..devices.rules import Blocklist, BlockRule
    from ..services.dnsresolver import DNSResolver

    b = WorldBuilder("DNS-study", "XX", seed)
    blocked = ["www.blocked.example", "news.banned.example"]
    all_protocols = ("http", "tls", "dns")
    dns_blocklist = Blocklist(
        [BlockRule(d, protocols=all_protocols) for d in blocked]
    )

    as_us = b.register_as(394089, "MEASUREMENT-LAB-US", "US")
    as_transit = b.register_as(3356, "LEVEL3", "US")
    as_isp = b.register_as(64600, "Filtering ISP", "XX")
    remote = b.client(as_us, "US", in_country=False)
    client_side = b.chain(as_us, 2)
    transit = b.chain(as_transit, 2)
    isp = b.chain(as_isp, 2)

    onpath_injector = make_device(BY_DPI, b._next_name("dev"), blocked)
    onpath_injector.blocklist = dns_blocklist
    onpath_injector.action_dns = DNSBlockAction(
        fake_addresses=("198.18.0.66", "198.18.22.99", "198.18.7.11"),
        drop_query=False,
    )
    b.devices.append(onpath_injector)
    b.device_host_ip[onpath_injector.name] = isp[0].ip

    inpath_injector = make_device(KZ_STATE, b._next_name("dev"), blocked)
    inpath_injector.blocklist = dns_blocklist
    inpath_injector.action_dns = DNSBlockAction(
        fake_addresses=("198.18.99.1",), drop_query=True
    )
    b.devices.append(inpath_injector)
    b.device_host_ip[inpath_injector.name] = isp[1].ip

    endpoints = []
    for i in range(6):
        resolver = DNSResolver(zone={d: f"192.0.2.{10 + i}" for d in blocked})
        ep = b.endpoint(as_isp, "XX", [f"resolver{i}.example"])
        ep.resolver = resolver
        device = onpath_injector if i % 2 == 0 else inpath_injector
        host = isp[0] if i % 2 == 0 else isp[1]
        hops = (
            [(r, []) for r in client_side]
            + [(r, []) for r in transit]
            + [(host, [device])]
            + ([(isp[1], [])] if i % 2 == 0 else [])
            + [(b.router(as_isp), [])]
        )
        b.route(remote, ep, hops)
        endpoints.append(ep)

    world = b.finish(remote, endpoints, blocked, seed=seed, loss_rate=0.0)
    world.notes["onpath_injector"] = onpath_injector.name
    world.notes["inpath_injector"] = inpath_injector.name
    return world


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

_BUILDERS = {
    "AZ": build_az_world,
    "BY": build_by_world,
    "KZ": build_kz_world,
    "RU": build_ru_world,
}

COUNTRIES = tuple(_BUILDERS)


def build_world(
    country: str,
    *,
    seed: Optional[int] = None,
    scale: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
    drift_plan: Optional[DriftPlan] = None,
    epoch: int = 0,
) -> StudyWorld:
    """Build the study world for ``country`` ("AZ", "BY", "KZ", "RU").

    With a ``drift_plan``, the returned world is the epoch-``epoch``
    state: every drift op with ``op.epoch <= epoch`` applied, in order,
    to the freshly built base world. Epoch 0 never drifts, so it is
    byte-identical to a plain build.
    """
    try:
        builder = _BUILDERS[country.upper()]
    except KeyError:
        raise ValueError(
            f"unknown country {country!r}; expected one of {sorted(_BUILDERS)}"
        ) from None
    kwargs = {}
    if seed is not None:
        kwargs["seed"] = seed
    if scale is not None:
        kwargs["scale"] = scale
    world = builder(**kwargs)
    if fault_plan is not None:
        world.sim.set_fault_plan(fault_plan)
    if drift_plan is not None and epoch > 0:
        apply_drift(world, drift_plan, epoch)
    world.spec = WorldSpec(
        country=country.upper(),
        seed=seed,
        scale=scale,
        fault_plan=fault_plan,
        drift_plan=drift_plan,
        epoch=epoch,
    )
    return world
