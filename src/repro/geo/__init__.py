"""Synthetic Internet metadata and per-country study worlds."""

from .asdb import ASDatabase, ASInfo, IPMetadata
from .countries import (
    CONTROL_DOMAIN,
    COUNTRIES,
    TEST_DOMAINS,
    StudyWorld,
    WorldSpec,
    build_az_world,
    build_blockpage_study_world,
    build_by_world,
    build_calibration_world,
    build_kz_world,
    build_ru_world,
    build_world,
)
from .drift import (
    DriftError,
    DriftOp,
    DriftPlan,
    apply_drift,
    auto_drift_plan,
    devices_in_as,
    ops_touching,
    unit_touchpoints,
)

__all__ = [
    "ASDatabase",
    "ASInfo",
    "IPMetadata",
    "CONTROL_DOMAIN",
    "COUNTRIES",
    "TEST_DOMAINS",
    "StudyWorld",
    "WorldSpec",
    "build_az_world",
    "build_blockpage_study_world",
    "build_by_world",
    "build_calibration_world",
    "build_kz_world",
    "build_ru_world",
    "build_world",
    "DriftError",
    "DriftOp",
    "DriftPlan",
    "apply_drift",
    "auto_drift_plan",
    "devices_in_as",
    "ops_touching",
    "unit_touchpoints",
]
