"""Synthetic Internet metadata and per-country study worlds."""

from .asdb import ASDatabase, ASInfo, IPMetadata
from .countries import (
    CONTROL_DOMAIN,
    COUNTRIES,
    TEST_DOMAINS,
    StudyWorld,
    build_az_world,
    build_blockpage_study_world,
    build_by_world,
    build_calibration_world,
    build_kz_world,
    build_ru_world,
    build_world,
)

__all__ = [
    "ASDatabase",
    "ASInfo",
    "IPMetadata",
    "CONTROL_DOMAIN",
    "COUNTRIES",
    "TEST_DOMAINS",
    "StudyWorld",
    "build_az_world",
    "build_blockpage_study_world",
    "build_by_world",
    "build_calibration_world",
    "build_kz_world",
    "build_ru_world",
    "build_world",
]
