"""Synthetic IP-to-AS/geolocation metadata (Maxmind/Routeviews analog).

The paper attributes blocking hops to ASes and countries using Maxmind
and the Routeviews project (§4.2). Our worlds allocate addresses from
per-AS /16 prefixes, so lookups are exact — we also expose a
``confidence`` field so analyses can treat border-router attribution as
potentially inaccurate, which the paper lists as a limitation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..netmodel.ip import int_to_ip, ip_to_int


@dataclass(frozen=True)
class ASInfo:
    """What we know about one autonomous system."""

    asn: int
    name: str
    country: str


@dataclass(frozen=True)
class IPMetadata:
    """The result of an IP lookup."""

    ip: str
    asn: int
    as_name: str
    country: str
    confidence: float = 1.0  # <1.0 for border-router style uncertainty


def _prefix_pool() -> Iterator[int]:
    """Yield /16 network bases, skipping special-use first octets."""
    skip_first_octets = {0, 10, 127, 169, 172, 192, 198, 203, 224}
    for first in range(5, 224):
        if first in skip_first_octets:
            continue
        for second in range(0, 256):
            yield (first << 24) | (second << 16)


class ASDatabase:
    """Registers ASes, allocates their addresses, answers lookups."""

    def __init__(self) -> None:
        self._as_info: Dict[int, ASInfo] = {}
        self._prefix_to_asn: Dict[int, int] = {}  # /16 base -> asn
        self._asn_prefixes: Dict[int, List[int]] = {}
        self._asn_counter: Dict[int, int] = {}
        self._pool = _prefix_pool()

    # -- registration ---------------------------------------------------

    def register(self, asn: int, name: str, country: str) -> ASInfo:
        """Register an AS (idempotent) and give it its first /16."""
        if asn in self._as_info:
            return self._as_info[asn]
        info = ASInfo(asn=asn, name=name, country=country)
        self._as_info[asn] = info
        self._grow(asn)
        return info

    def reassign(
        self,
        asn: int,
        *,
        name: Optional[str] = None,
        country: Optional[str] = None,
    ) -> ASInfo:
        """Re-home a registered AS: new owner name and/or country code.

        Models registry churn (mergers, ISPs re-homing networks) for the
        longitudinal drift layer. Prefix allocations are untouched — the
        addresses stay the same, only the metadata lookups change.
        """
        current = self._as_info.get(asn)
        if current is None:
            raise KeyError(f"AS{asn} not registered; cannot reassign")
        info = ASInfo(
            asn=asn,
            name=current.name if name is None else name,
            country=current.country if country is None else country,
        )
        self._as_info[asn] = info
        return info

    def _grow(self, asn: int) -> None:
        base = next(self._pool)
        self._prefix_to_asn[base] = asn
        self._asn_prefixes.setdefault(asn, []).append(base)

    def allocate(self, asn: int) -> str:
        """The next unused address inside ``asn``'s space."""
        if asn not in self._as_info:
            raise KeyError(f"AS{asn} not registered")
        counter = self._asn_counter.get(asn, 0) + 1
        self._asn_counter[asn] = counter
        prefix_index, host = divmod(counter, 65534)
        prefixes = self._asn_prefixes[asn]
        while prefix_index >= len(prefixes):
            self._grow(asn)
            prefixes = self._asn_prefixes[asn]
        return int_to_ip(prefixes[prefix_index] + host + 1)

    # -- lookups ----------------------------------------------------------

    def lookup(self, ip: str) -> Optional[IPMetadata]:
        base = ip_to_int(ip) & 0xFFFF0000
        asn = self._prefix_to_asn.get(base)
        if asn is None:
            return None
        info = self._as_info[asn]
        return IPMetadata(
            ip=ip, asn=info.asn, as_name=info.name, country=info.country
        )

    def lookup_asn(self, ip: str) -> Optional[int]:
        meta = self.lookup(ip)
        return meta.asn if meta else None

    def lookup_country(self, ip: str) -> Optional[str]:
        meta = self.lookup(ip)
        return meta.country if meta else None

    def as_info(self, asn: int) -> Optional[ASInfo]:
        return self._as_info.get(asn)

    def all_ases(self) -> List[ASInfo]:
        return list(self._as_info.values())

    def registered(self) -> List[ASInfo]:
        """All registered ASes in ascending ASN order (deterministic)."""
        return [self._as_info[asn] for asn in sorted(self._as_info)]
