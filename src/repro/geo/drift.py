"""Epochal world drift: declarative, seeded changes between campaign runs.

Real censorship infrastructure is not static: vendors push firmware
updates that change injection fingerprints and blockpages, ISPs re-home
ASes, and rule lists churn (the reason platforms like ICLab and
Censored Planet measure *continuously*). The longitudinal observatory
models that as virtual-time **epochs**: a :class:`DriftPlan` is an
ordered tuple of :class:`DriftOp` records, each tagged with the first
epoch at which it is live, and the epoch-``e`` world is the base
:class:`~repro.geo.countries.WorldSpec` world with every op of epoch
``<= e`` applied in declaration order.

Drift is therefore *cumulative and reproducible*: the epoch world is a
pure function of (world spec, plan, epoch), which is exactly what lets
parallel campaign workers rebuild drifted replicas and lets the epoch
scheduler (``repro.experiments.epochs``) decide from the plan alone
which work units an epoch could have changed.

Op kinds:

* ``firmware`` — a vendor update on one device: switch the blocking
  action kind (drop / rst / fin / blockpage), retune the injection
  signature (TTL, TCP window, IP-ID), or swap the blockpage HTML.
* ``rehome`` — an AS changes owner: its registry name and/or country
  code change (targets ``"as:<asn>"``).
* ``rules`` — blocklist churn on one device: domains added or removed.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..devices.actions import (
    KIND_BLOCKPAGE,
    KIND_DROP,
    KIND_FIN,
    KIND_RST,
)
from ..devices.rules import BlockRule, Blocklist

OP_FIRMWARE = "firmware"
OP_REHOME = "rehome"
OP_RULES = "rules"
OP_KINDS = (OP_FIRMWARE, OP_REHOME, OP_RULES)

ACTION_KINDS = (KIND_DROP, KIND_RST, KIND_FIN, KIND_BLOCKPAGE)

#: Default page installed by a ``firmware`` op that switches a device to
#: blockpage injection without supplying HTML. The wording matches the
#: ``generic_region_block`` fingerprint in the blockpage corpus, so the
#: classifier counts the drifted device as blocking (§4.1's conservative
#: definition only accepts *known* blockpages).
DRIFT_BLOCKPAGE_HTML = (
    "<html><head><title>Access Denied</title></head><body>"
    "<h1>This content is not available in your region.</h1>"
    "</body></html>"
)


class DriftError(ValueError):
    """A drift plan is malformed or names an unknown target."""


@dataclass(frozen=True)
class DriftOp:
    """One declarative change, live from ``epoch`` onward.

    ``target`` is a device name for ``firmware``/``rules`` ops and
    ``"as:<asn>"`` for ``rehome``. Unused fields stay at their defaults;
    which fields apply depends on ``kind`` (see the module docstring).
    """

    epoch: int
    kind: str
    target: str
    # firmware ------------------------------------------------------------
    action_kind: Optional[str] = None  # new HTTP blocking action
    tls_action_kind: Optional[str] = None  # new TLS action (default: derived)
    blockpage_html: Optional[str] = None
    fixed_ttl: Optional[int] = None
    tcp_window: Optional[int] = None
    ip_id_value: Optional[int] = None
    # rehome --------------------------------------------------------------
    new_name: Optional[str] = None
    new_country: Optional[str] = None
    # rules ---------------------------------------------------------------
    add_domains: Tuple[str, ...] = ()
    remove_domains: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise DriftError(
                f"unknown drift op kind {self.kind!r}; expected one of "
                f"{OP_KINDS}"
            )
        if self.epoch < 1:
            raise DriftError(
                f"drift op epoch must be >= 1 (epoch 0 is the undrifted "
                f"baseline), got {self.epoch}"
            )
        if self.kind == OP_REHOME:
            if not self.target.startswith("as:"):
                raise DriftError(
                    f"rehome ops target an AS ('as:<asn>'), got "
                    f"{self.target!r}"
                )
            if self.new_name is None and self.new_country is None:
                raise DriftError(
                    "rehome op changes nothing: set new_name and/or "
                    "new_country"
                )
        if self.action_kind is not None and self.action_kind not in ACTION_KINDS:
            raise DriftError(
                f"unknown action kind {self.action_kind!r}; expected one "
                f"of {ACTION_KINDS}"
            )
        if self.tls_action_kind == KIND_BLOCKPAGE:
            raise DriftError(
                "TLS blocking cannot inject a blockpage into an encrypted "
                "stream; use rst/fin/drop for tls_action_kind"
            )
        if self.kind == OP_RULES and not (self.add_domains or self.remove_domains):
            raise DriftError(
                "rules op changes nothing: set add_domains and/or "
                "remove_domains"
            )
        # Tuples, not lists, so ops (and plans, and WorldSpecs carrying
        # them) stay hashable cache keys.
        object.__setattr__(self, "add_domains", tuple(self.add_domains))
        object.__setattr__(self, "remove_domains", tuple(self.remove_domains))

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict:
        out: Dict = {}
        for f in fields(DriftOp):
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "DriftOp":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise DriftError(f"unknown drift op fields: {sorted(unknown)}")
        kwargs = dict(data)
        for key in ("add_domains", "remove_domains"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise DriftError(f"bad drift op {data!r}: {exc}") from None


@dataclass(frozen=True)
class DriftPlan:
    """A seeded, declarative schedule of world changes across epochs."""

    name: str = "custom"
    ops: Tuple[DriftOp, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "ops", tuple(self.ops))

    def is_noop(self) -> bool:
        return not self.ops

    def max_epoch(self) -> int:
        return max((op.epoch for op in self.ops), default=0)

    def ops_at(self, epoch: int) -> Tuple[DriftOp, ...]:
        """Every op live at ``epoch`` (cumulative), in declaration order.

        Declaration order is the application order — a later firmware op
        on the same device overrides an earlier one wholesale, exactly
        like consecutive real firmware updates.
        """
        return tuple(op for op in self.ops if op.epoch <= epoch)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict:
        return {"name": self.name, "ops": [op.to_dict() for op in self.ops]}

    @classmethod
    def from_dict(cls, data: Dict) -> "DriftPlan":
        unknown = set(data) - {"name", "ops"}
        if unknown:
            raise DriftError(f"unknown drift plan fields: {sorted(unknown)}")
        ops = tuple(DriftOp.from_dict(op) for op in data.get("ops", ()))
        return cls(name=data.get("name", "custom"), ops=ops)

    @classmethod
    def from_spec(cls, spec) -> "DriftPlan":
        """Accept a plan, a dict, inline JSON, or an ``@file`` path.

        (The ``auto`` CLI spelling is resolved by the caller, which has
        the world needed to seed :func:`auto_drift_plan`.)
        """
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, dict):
            return cls.from_dict(spec)
        if not isinstance(spec, str):
            # Programmer contract: callers dispatch on type before here.
            raise TypeError(  # lint: ignore[RP901] -- not user-reachable
                f"cannot build a DriftPlan from {spec!r}"
            )
        text = spec.strip()
        if text.startswith("@"):
            path = Path(text[1:])
            try:
                raw = path.read_text()
            except OSError as exc:
                raise DriftError(
                    f"cannot read drift plan file {path}: {exc}"
                ) from exc
            return cls.from_dict(cls._parse_json(raw, source=str(path)))
        if text.startswith("{"):
            return cls.from_dict(cls._parse_json(text, source="inline spec"))
        raise DriftError(
            f"unknown drift plan {spec!r}; expected inline JSON, "
            "@path/to/plan.json, or 'auto' (CLI only)"
        )

    @staticmethod
    def _parse_json(raw: str, source: str) -> Dict:
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise DriftError(
                f"malformed drift plan JSON in {source}: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise DriftError(
                f"drift plan in {source} must be a JSON object, "
                f"got {type(data).__name__}"
            )
        return data


# ---------------------------------------------------------------------------
# Application to a built world
# ---------------------------------------------------------------------------


def _device_by_name(world, name: str):
    for device in world.devices:
        if device.name == name:
            return device
    raise DriftError(
        f"drift op targets unknown device {name!r} in world "
        f"{world.name!r} (devices: {[d.name for d in world.devices]})"
    )


def _apply_firmware(world, op: DriftOp) -> None:
    device = _device_by_name(world, op.target)
    sig = device.action.signature
    sig_updates: Dict = {}
    if op.fixed_ttl is not None:
        sig_updates["fixed_ttl"] = op.fixed_ttl
    if op.tcp_window is not None:
        sig_updates["tcp_window"] = op.tcp_window
    if op.ip_id_value is not None:
        from ..devices.actions import IPID_CONSTANT

        sig_updates["ip_id_mode"] = IPID_CONSTANT
        sig_updates["ip_id_value"] = op.ip_id_value
    if sig_updates:
        sig = replace(sig, **sig_updates)

    http_kind = op.action_kind or device.action.kind
    http_updates: Dict = {"kind": http_kind, "signature": sig}
    if http_kind == KIND_BLOCKPAGE:
        http_updates["blockpage_html"] = (
            op.blockpage_html
            or device.action.blockpage_html
            or DRIFT_BLOCKPAGE_HTML
        )
    elif op.blockpage_html is not None:
        http_updates["blockpage_html"] = op.blockpage_html
    device.action = replace(device.action, **http_updates)

    # TLS action: explicit kind wins; otherwise follow the HTTP change,
    # degrading blockpage to RST (no cleartext to inject into, §5.3).
    tls_kind = op.tls_action_kind
    if tls_kind is None and op.action_kind is not None:
        tls_kind = KIND_RST if op.action_kind == KIND_BLOCKPAGE else op.action_kind
    tls_sig = device.action_tls.signature
    if sig_updates:
        tls_sig = replace(tls_sig, **sig_updates)
    device.action_tls = replace(
        device.action_tls,
        kind=tls_kind or device.action_tls.kind,
        signature=tls_sig,
    )


def _apply_rehome(world, op: DriftOp) -> None:
    asn = int(op.target[len("as:"):])
    world.asdb.reassign(asn, name=op.new_name, country=op.new_country)


def _apply_rules(world, op: DriftOp) -> None:
    device = _device_by_name(world, op.target)
    removed = set(op.remove_domains)
    rules = [r for r in device.blocklist.rules if r.domain not in removed]
    default_kind = rules[0].kind if rules else BlockRule("x").kind
    for domain in op.add_domains:
        rules.append(BlockRule(domain=domain, kind=default_kind))
    device.blocklist = Blocklist(rules=rules)


_APPLIERS = {
    OP_FIRMWARE: _apply_firmware,
    OP_REHOME: _apply_rehome,
    OP_RULES: _apply_rules,
}


def apply_drift(world, plan: DriftPlan, epoch: int) -> int:
    """Apply every op of ``plan`` live at ``epoch`` to a built world.

    Mutates devices and the AS registry in place (worlds are rebuilt
    from spec per epoch/worker, so mutation never leaks across epochs).
    Returns the number of ops applied.
    """
    ops = plan.ops_at(epoch)
    for op in ops:
        _APPLIERS[op.kind](world, op)
    return len(ops)


def devices_in_as(world, asn: int) -> Tuple[str, ...]:
    """Names of devices hosted at routers of AS ``asn``, world order.

    Device names are builder-generated (``dev16`` ...), so plan authors
    target them the way a real operator would find them: by where they
    sit in the network.
    """
    names = []
    for device in world.devices:
        host_ip = world.device_host_ip.get(device.name)
        if host_ip is None:
            continue
        meta = world.asdb.lookup(host_ip)
        if meta is not None and meta.asn == asn:
            names.append(device.name)
    return tuple(names)


# ---------------------------------------------------------------------------
# Unit-level impact analysis (the epoch scheduler's reuse contract)
# ---------------------------------------------------------------------------


def unit_touchpoints(
    world, client_ip: str, endpoint_ip: str
) -> Tuple[Tuple[str, ...], Tuple[int, ...]]:
    """Everything on a measurement's route that drift could touch.

    Returns ``(device_names, asns)`` across *all* candidate ECMP paths
    of the (client, endpoint) route — a measurement's packets can only
    traverse those paths (forward, reverse, and injection walks reuse
    the same route), so a drift op whose target is not in either set
    cannot change the measurement. Deliberately conservative the other
    way: any op targeting an on-route device or ASN counts as impact,
    whether or not its domains/fields end up mattering.
    """
    route = world.topology.route_between(client_ip, endpoint_ip)
    names = sorted(
        {device.name for _, device in route.all_devices()}
    )
    asns = {world.remote_client.asn} if world.remote_client else set()
    for path in route.paths:
        for node in path.resolve(world.topology):
            asn = getattr(node, "asn", None)
            if asn is not None:
                asns.add(asn)
    client_node = world.topology.node_at(client_ip)
    if client_node is not None and getattr(client_node, "asn", None) is not None:
        asns.add(client_node.asn)
    return tuple(names), tuple(sorted(asns))


def ops_touching(
    ops: Sequence[DriftOp],
    device_names: Sequence[str],
    asns: Sequence[int],
) -> Tuple[DriftOp, ...]:
    """The subset of ``ops`` that can affect a unit with these touchpoints."""
    names = set(device_names)
    asn_targets = {f"as:{asn}" for asn in asns}
    return tuple(
        op
        for op in ops
        if (op.target in asn_targets if op.kind == OP_REHOME else op.target in names)
    )


# ---------------------------------------------------------------------------
# Seeded plan generation
# ---------------------------------------------------------------------------


def auto_drift_plan(
    world,
    *,
    epochs: int,
    seed: int = 0,
    ops_per_epoch: int = 1,
) -> DriftPlan:
    """Generate a concrete declarative plan from a built world, seeded.

    Walks the world's devices and AS registry deterministically and
    emits ``ops_per_epoch`` ops for each epoch ``1..epochs-1``, cycling
    firmware flips (drop -> rst -> blockpage), rule churn, and an AS
    rehome. The output is an ordinary declarative :class:`DriftPlan`:
    the generator is convenience, never a hidden input — reproducing an
    epoch needs only the emitted plan.
    """
    if epochs < 1:
        raise DriftError(f"need at least 1 epoch, got {epochs}")
    rng = random.Random(seed)
    devices = sorted(world.devices, key=lambda d: d.name)
    if not devices:
        raise DriftError(f"world {world.name!r} has no devices to drift")
    registered = world.asdb.registered()
    flip_order = {KIND_DROP: KIND_RST, KIND_RST: KIND_BLOCKPAGE,
                  KIND_FIN: KIND_RST, KIND_BLOCKPAGE: KIND_DROP}
    ops: List[DriftOp] = []
    emitted = 0
    for epoch in range(1, epochs):
        for _ in range(ops_per_epoch):
            style = emitted % 3
            emitted += 1
            if style == 0:
                device = devices[rng.randrange(len(devices))]
                ops.append(
                    DriftOp(
                        epoch=epoch,
                        kind=OP_FIRMWARE,
                        target=device.name,
                        action_kind=flip_order[device.action.kind],
                        fixed_ttl=rng.choice((60, 64, 128, 255)),
                        tcp_window=rng.choice((0, 512, 8192, 16384)),
                    )
                )
            elif style == 1:
                device = devices[rng.randrange(len(devices))]
                ops.append(
                    DriftOp(
                        epoch=epoch,
                        kind=OP_RULES,
                        target=device.name,
                        add_domains=(f"drift-{epoch}.example",),
                    )
                )
            else:
                info = registered[rng.randrange(len(registered))]
                ops.append(
                    DriftOp(
                        epoch=epoch,
                        kind=OP_REHOME,
                        target=f"as:{info.asn}",
                        new_name=f"{info.name} (reorg {epoch})",
                    )
                )
    return DriftPlan(name=f"auto-{seed}", ops=tuple(ops))
