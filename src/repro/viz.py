"""Rendering CenTrace measurements as path graphs (Figures 1, 10-12).

The paper's figures draw the measured paths from a client toward the
endpoints, annotate nodes with AS/geolocation, and color the links at
which blocking occurs. We produce the same structure as a networkx
DiGraph and render it as indented ASCII or Graphviz DOT.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from .core.centrace.results import CenTraceResult
from .geo.asdb import ASDatabase


def build_path_graph(
    results: Iterable[CenTraceResult],
    asdb: Optional[ASDatabase] = None,
    client_label: str = "client",
) -> nx.DiGraph:
    """A DiGraph of the most likely paths of ``results``.

    Node attributes: ``asn``, ``as_name``, ``country``, ``kind``
    (client/hop/endpoint). Edge attribute ``blocked`` counts how many
    measurements found blocking on that link; ``traces`` counts
    traversals.
    """
    graph = nx.DiGraph()
    graph.add_node(client_label, kind="client")
    for result in results:
        if not result.valid:
            continue
        previous = client_label
        hops = result.control_path()
        blocking_ttl = (
            result.blocking_hop.ttl
            if (result.blocked and result.blocking_hop)
            else None
        )
        for hop in hops:
            node = hop.ip or f"*ttl{hop.ttl}-{result.endpoint_ip}"
            if node not in graph:
                attributes = {"kind": "hop"}
                if hop.ip and asdb is not None:
                    meta = asdb.lookup(hop.ip)
                    if meta:
                        attributes.update(
                            asn=meta.asn, as_name=meta.as_name, country=meta.country
                        )
                graph.add_node(node, **attributes)
            _bump_edge(graph, previous, node, blocked=hop.ttl == blocking_ttl)
            previous = node
            if hop.ip == result.endpoint_ip:
                break
        if result.endpoint_distance is not None and previous != result.endpoint_ip:
            if result.endpoint_ip not in graph:
                attributes = {"kind": "endpoint"}
                if asdb is not None:
                    meta = asdb.lookup(result.endpoint_ip)
                    if meta:
                        attributes.update(
                            asn=meta.asn, as_name=meta.as_name, country=meta.country
                        )
                graph.add_node(result.endpoint_ip, **attributes)
            _bump_edge(
                graph,
                previous,
                result.endpoint_ip,
                blocked=blocking_ttl == result.endpoint_distance,
            )
        if result.endpoint_ip in graph:
            graph.nodes[result.endpoint_ip]["kind"] = "endpoint"
    return graph


def _bump_edge(graph: nx.DiGraph, a: str, b: str, *, blocked: bool) -> None:
    if graph.has_edge(a, b):
        graph[a][b]["traces"] += 1
        graph[a][b]["blocked"] += int(blocked)
    else:
        graph.add_edge(a, b, traces=1, blocked=int(blocked))


def _node_label(graph: nx.DiGraph, node: str) -> str:
    data = graph.nodes[node]
    parts = [node]
    if data.get("asn"):
        parts.append(f"AS{data['asn']}")
    if data.get("country"):
        parts.append(data["country"])
    return " ".join(parts)


def render_ascii(graph: nx.DiGraph, root: str = "client", max_depth: int = 24) -> str:
    """Indented ASCII rendering; blocked links are marked ``[X]``."""
    lines: List[str] = []
    visited = set()

    def walk(node: str, depth: int, marker: str) -> None:
        if depth > max_depth:
            return
        label = _node_label(graph, node)
        kind = graph.nodes[node].get("kind", "hop")
        suffix = ""
        if kind == "endpoint":
            suffix = "  <endpoint>"
        lines.append("  " * depth + marker + label + suffix)
        if node in visited:
            return
        visited.add(node)
        for successor in sorted(graph.successors(node)):
            edge = graph[node][successor]
            blocked = edge.get("blocked", 0)
            marker2 = "[X]-> " if blocked else "----> "
            walk(successor, depth + 1, marker2)

    walk(root, 0, "")
    return "\n".join(lines)


def render_dot(graph: nx.DiGraph) -> str:
    """Graphviz DOT output; blocked links drawn in red."""
    lines = ["digraph centrace {", "  rankdir=LR;", "  node [shape=box];"]
    for node in graph.nodes:
        data = graph.nodes[node]
        label = _node_label(graph, node).replace('"', "'")
        shape = {
            "client": "ellipse",
            "endpoint": "doubleoctagon",
        }.get(data.get("kind", "hop"), "box")
        lines.append(f'  "{node}" [label="{label}", shape={shape}];')
    for a, b, data in graph.edges(data=True):
        color = "red" if data.get("blocked") else "black"
        width = 1 + min(4, data.get("traces", 1) // 10)
        lines.append(
            f'  "{a}" -> "{b}" [color={color}, penwidth={width},'
            f' label="{data.get("traces", 1)}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def blocking_link_summary(
    graph: nx.DiGraph, asdb: Optional[ASDatabase] = None
) -> List[Tuple[str, str, int]]:
    """(from-AS, to-AS, blocked count) per blocked link, most first."""
    counter: Counter = Counter()
    for a, b, data in graph.edges(data=True):
        if not data.get("blocked"):
            continue
        as_a = graph.nodes[a].get("as_name", a)
        as_b = graph.nodes[b].get("as_name", b)
        counter[(as_a, as_b)] += data["blocked"]
    return [(a, b, count) for (a, b), count in counter.most_common()]
