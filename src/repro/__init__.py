"""Reproduction of "Network Measurement Methods for Locating and
Examining Censorship Devices" (CoNEXT 2022).

The package provides the paper's three measurement tools and analysis
pipeline, plus the simulated network substrate they run on:

* :mod:`repro.core.centrace` — CenTrace, the censorship traceroute (§4)
* :mod:`repro.core.cenprobe` — CenProbe, device banner grabs (§5)
* :mod:`repro.core.cenfuzz` — CenFuzz, deterministic request fuzzing (§6)
* :mod:`repro.analysis` — feature extraction, random-forest feature
  importance and DBSCAN clustering (§7)
* :mod:`repro.netsim` / :mod:`repro.netmodel` — the packet-level network
  simulator and byte-accurate protocol models
* :mod:`repro.devices` — censorship middlebox models (vendor catalog)
* :mod:`repro.geo` — the AZ/BY/KZ/RU study worlds and IP metadata
* :mod:`repro.experiments` — one module per paper table/figure

Quickstart::

    from repro.geo import build_world
    from repro.core.centrace import CenTrace

    world = build_world("KZ")
    tracer = CenTrace(world.sim, world.remote_client, asdb=world.asdb)
    result = tracer.measure(world.endpoints[0].ip, world.test_domains[0])
    print(result.brief())
"""

__version__ = "1.0.0"

# NB: `repro.cli` is deliberately absent — it is the console entry
# point (`repro = repro.cli:main`) and the layer lint (RP401) bans any
# library code, including this package init, from importing it.
from . import (
    analysis,
    baselines,
    core,
    devices,
    experiments,
    geo,
    netmodel,
    netsim,
    persist,
    services,
    viz,
)

__all__ = [
    "analysis",
    "baselines",
    "persist",
    "core",
    "devices",
    "experiments",
    "geo",
    "netmodel",
    "netsim",
    "services",
    "viz",
    "__version__",
]
