"""Network topology: routers, endpoints, clients and their services.

A topology is a set of addressed nodes plus, for each (client, endpoint)
pair, a :class:`~repro.netsim.routing.Route` describing the candidate
paths between them (see ``routing.py``). Censorship devices attach to
links *inside paths*; banner-grabbing services attach to nodes (their
management plane).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..netmodel.icmp import QUOTE_RFC792, QUOTE_RFC1812
from .interfaces import ApplicationServer


@dataclass
class Service:
    """A TCP service on a node's management plane (for banner grabs).

    ``banner`` is what a connecting scanner receives immediately;
    ``probe_responses`` maps application-layer probes (e.g. an HTTP GET,
    an SNMP get) to canned responses.
    """

    port: int
    protocol: str  # "ssh" | "telnet" | "ftp" | "smtp" | "http" | "https" | "snmp"
    banner: bytes = b""
    probe_responses: Dict[bytes, bytes] = field(default_factory=dict)

    def respond(self, probe: bytes) -> bytes:
        """Application response to ``probe`` (after the banner)."""
        for prefix, response in self.probe_responses.items():
            if probe.startswith(prefix):
                return response
        return b""


@dataclass
class Node:
    """Common base for all addressed nodes."""

    name: str
    ip: str
    asn: int
    services: Dict[int, Service] = field(default_factory=dict)
    # Stack-level behaviour elicited by crafted probes (see
    # repro.core.cenprobe.os_probes); None = generic Linux.
    personality: Optional[object] = None

    def add_service(self, service: Service) -> None:
        self.services[service.port] = service

    def open_ports(self) -> List[int]:
        return sorted(self.services)


@dataclass
class Router(Node):
    """A forwarding hop.

    ``quoting`` selects the ICMP quoting policy (§4.3: 57.6% RFC 792 /
    rest RFC 1812); ``responds_icmp`` is False for the rare silent
    routers; ``rewrite_tos``/``rewrite_ip_flags`` model transit networks
    that remark the DSCP/TOS byte or flags, which CenTrace detects via
    quoted-packet deltas.
    """

    quoting: str = QUOTE_RFC792
    responds_icmp: bool = True
    rewrite_tos: Optional[int] = None
    rewrite_ip_flags: Optional[int] = None


@dataclass
class Endpoint(Node):
    """A measurement target: a web server reachable at ``ip``.

    ``server`` implements application behaviour (HTTP/TLS parsing and
    responses). ``infrastructural`` marks endpoints that satisfy the
    paper's ethical selection criteria (EV certificate / PeeringDB).
    """

    server: Optional[ApplicationServer] = None
    country: str = ""
    infrastructural: bool = True
    domains: Tuple[str, ...] = ()
    # Optional DNS resolver (the DNS-censorship extension): an object
    # with handle_query(packet, endpoint_ip, net=None) -> list[Packet];
    # the simulator passes its NetContext as ``net`` so reply IP IDs
    # draw from the per-run identifier streams.
    resolver: Optional[object] = None


@dataclass
class Client(Node):
    """A measurement vantage point under our control."""

    country: str = ""
    in_country: bool = True


class Topology:
    """The collection of nodes and routes making up a study network."""

    def __init__(self, name: str = "world") -> None:
        self.name = name
        self.nodes_by_ip: Dict[str, Node] = {}
        self.routers: Dict[str, Router] = {}
        self.endpoints: Dict[str, Endpoint] = {}
        self.clients: Dict[str, Client] = {}
        self._routes: Dict[Tuple[str, str], "Route"] = {}

    # -- construction -------------------------------------------------

    def _register(self, node: Node) -> None:
        if node.ip in self.nodes_by_ip:
            raise ValueError(f"duplicate node IP: {node.ip}")
        self.nodes_by_ip[node.ip] = node

    def add_router(self, router: Router) -> Router:
        self._register(router)
        self.routers[router.name] = router
        return router

    def add_endpoint(self, endpoint: Endpoint) -> Endpoint:
        self._register(endpoint)
        self.endpoints[endpoint.name] = endpoint
        return endpoint

    def add_client(self, client: Client) -> Client:
        self._register(client)
        self.clients[client.name] = client
        return client

    def add_route(self, client_ip: str, endpoint_ip: str, route: "Route") -> None:
        self._routes[(client_ip, endpoint_ip)] = route
        # Resolve hop names to node objects now, while registration is
        # cheap; the simulator then walks object references instead of
        # paying dict lookups per hop per packet. Paths naming a node
        # that is not registered yet stay unresolved — the simulator
        # resolves them lazily (and errors) on first use.
        for path in route.paths:
            try:
                path.resolve(self)
            except KeyError:
                path.nodes = None

    # -- lookup --------------------------------------------------------

    def route_between(self, client_ip: str, endpoint_ip: str) -> "Route":
        try:
            return self._routes[(client_ip, endpoint_ip)]
        except KeyError:
            raise KeyError(
                f"no route from {client_ip} to {endpoint_ip} in {self.name}"
            ) from None

    def has_route(self, client_ip: str, endpoint_ip: str) -> bool:
        return (client_ip, endpoint_ip) in self._routes

    def node_at(self, ip: str) -> Optional[Node]:
        return self.nodes_by_ip.get(ip)

    def scan_ports(self, ip: str, ports) -> List[int]:
        """Which of ``ports`` are open on the node at ``ip`` (if any)."""
        node = self.nodes_by_ip.get(ip)
        if node is None:
            return []
        return [p for p in ports if p in node.services]

    def service_at(self, ip: str, port: int) -> Optional[Service]:
        node = self.nodes_by_ip.get(ip)
        if node is None:
            return None
        return node.services.get(port)


# Imported at the bottom to avoid a circular import: routing needs the
# Router/Endpoint types for its annotations at runtime only.
from .routing import Route  # noqa: E402  (intentional late import)
