"""Interfaces between the simulator and the things plugged into it.

``repro.devices`` implements :class:`LinkDevice` (censorship middleboxes
attached to links) and ``repro.services`` implements
:class:`ApplicationServer` (the payload-level behaviour of endpoints).
Keeping the interfaces here avoids circular imports and documents exactly
what a device may observe and do.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional

from ..netmodel.netctx import NetContext
from ..netmodel.packet import Packet

DIRECTION_FORWARD = "forward"  # client -> endpoint
DIRECTION_REVERSE = "reverse"  # endpoint -> client


@dataclass
class InspectionContext:
    """What a device knows when a packet passes its attachment point."""

    clock: float
    remaining_ttl: int  # the packet's TTL on the wire at this link
    link_index: int  # 0 = link leaving the client
    direction: str = DIRECTION_FORWARD
    # The owning simulator's identifier context: devices draw forged-
    # packet IP IDs / DNS cursors from here so injections replay
    # bit-identically under the per-unit reset protocol. None (a
    # hand-built context, e.g. in unit tests) falls back to the
    # process-wide default stream.
    net: Optional[NetContext] = None


@dataclass
class Verdict:
    """The action a device takes on a packet.

    ``inject_to_client``/``inject_to_server`` carry fully-formed spoofed
    packets; the simulator walks them to their destinations with normal
    TTL decrementing (so TTL-copying injections can die en route, which
    is what produces the paper's "Past E" observations).
    """

    drop: bool = False
    inject_to_client: List[Packet] = field(default_factory=list)
    inject_to_server: List[Packet] = field(default_factory=list)
    note: str = ""  # ground-truth annotation for tests/debugging

    @property
    def acted(self) -> bool:
        return bool(self.drop or self.inject_to_client or self.inject_to_server)

    @classmethod
    def pass_through(cls) -> "Verdict":
        return cls()


class LinkDevice(abc.ABC):
    """A middlebox attached to a link.

    ``in_path`` devices sit in the link: they may drop or modify traffic
    at line rate. On-path devices receive a *copy* of each packet: they
    may inject but their ``drop`` verdicts are ignored by the simulator.
    """

    name: str = "device"
    in_path: bool = True

    @abc.abstractmethod
    def inspect(self, packet: Packet, ctx: InspectionContext) -> Verdict:
        """Observe ``packet``; return the device's action."""


@dataclass
class AppReply:
    """An application server's reaction to a payload."""

    responses: List[bytes] = field(default_factory=list)  # payload bytes
    drop: bool = False  # silently ignore (endpoint-local filtering)
    reset: bool = False  # respond with TCP RST
    close: bool = False  # send FIN after responses

    @classmethod
    def respond(cls, *payloads: bytes, close: bool = False) -> "AppReply":
        return cls(responses=list(payloads), close=close)


class ApplicationServer(abc.ABC):
    """Payload-level behaviour of an endpoint (one per endpoint)."""

    @abc.abstractmethod
    def handle_payload(self, payload: bytes, client_ip: str) -> AppReply:
        """React to application-layer ``payload`` from ``client_ip``."""
