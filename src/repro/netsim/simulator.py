"""The packet-walking network simulator.

The simulator is synchronous and deterministic: a client hands it a
packet, the packet walks the selected path hop by hop, and every packet
that makes it back to the client is returned in arrival order. Virtual
time only moves when someone advances the clock, so the 120-second
"stateful blocking" waits the paper's tools perform are free.

Mechanics reproduced from the paper (§4.1):

* TTL decrement at every router; expiry produces ICMP Time Exceeded
  with per-router quoting policy (RFC 792 vs RFC 1812) — or silence for
  routers that do not respond with ICMP errors.
* In-path devices inspect at line rate and may drop/inject; on-path
  devices see a copy and may only inject (their drops are ignored).
* Injected packets walk the reverse path with normal TTL decrementing,
  so TTL-copying injectors ("Past E" in Figure 3) behave exactly as
  described in §4.3.
* Routers may rewrite the IP TOS byte or IP flags in flight; the quoted
  packet in later ICMP errors then differs from what was sent (§4.3:
  32.06% of quotes show a TOS delta).
* Optional per-hop random loss exercises CenTrace's retry logic.

Every packet walk — the client's forward traffic, device forgeries
carried on to the server, and all return traffic — goes through **one**
transit engine (:meth:`Simulator._run_transit`). A :class:`Transit`
names the packet, the path, where on the path the packet enters, and a
:class:`TransitPolicy` whose bits declare the only semantic differences
between walk kinds (device inspection, ICMP on expiry, first-link loss,
router header transforms, endpoint delivery mode). Loss rolls, TTL
decrement, fault fates, capture and telemetry are therefore provably
shared: a divergence between directions has to be a declared policy
bit, not copy-paste drift.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netmodel import tcp as tcpmod
from ..netmodel.icmp import time_exceeded
from ..netmodel.ip import FlowKey
from ..netmodel.netctx import NetContext, default_context
from ..netmodel.packet import Packet, icmp_packet
from ..telemetry import NULL_TELEMETRY
from .faults import FATE_FAIL_CLOSED, FATE_FAIL_OPEN, FaultPlan, FaultState
from .interfaces import (
    DIRECTION_FORWARD,
    DIRECTION_REVERSE,
    InspectionContext,
    Verdict,
)
from .routing import Path
from .topology import Endpoint, Router, Topology


@dataclass
class CaptureRecord:
    """One event in the simulator's pcap-like capture log."""

    clock: float
    location: str
    event: str
    detail: str


@dataclass(frozen=True, slots=True)
class TransitPolicy:
    """The declared semantic differences between packet-walk kinds.

    The transit engine runs the same hop loop for every walk; these
    bits are the *only* places the walks may diverge. Capture labels
    ride along so the pcap-like log keeps naming the walk kind.
    """

    direction: str  # traversal orientation (forward / reverse)
    inspect_devices: bool = False  # link devices see the packet (+ fault fates)
    emit_icmp_on_expiry: bool = False  # routers answer TTL expiry with ICMP
    loss_on_first_link: bool = True  # roll loss on the entry link too
    apply_router_transforms: bool = False  # TOS / IP-flag rewrites en route
    deliver_via_services: bool = False  # resolver + TCP stack vs stack only
    loss_event: str = "loss"  # capture label for a lost packet
    expiry_event: str = "ttl-expired"  # capture label for TTL expiry
    expiry_counter: Optional[str] = None  # telemetry counter for silent expiry


#: Client traffic toward the endpoint: full semantics — loss on every
#: link, device inspection with fault fates, ICMP Time Exceeded on
#: expiry, router header transforms, resolver/TCP-stack delivery.
POLICY_FORWARD = TransitPolicy(
    direction=DIRECTION_FORWARD,
    inspect_devices=True,
    emit_icmp_on_expiry=True,
    loss_on_first_link=True,
    apply_router_transforms=True,
    deliver_via_services=True,
    loss_event="loss",
    expiry_event="ttl-expired",
)

#: A device forgery carried the rest of the way to the endpoint. Not
#: re-inspected by other devices; its first link is the device's own
#: attachment (no loss roll); expiry dies silently — the ICMP error
#: would go to the spoofed source, not our client. The endpoint's TCP
#: stack still reacts (e.g. RST for data on an unknown flow).
POLICY_INJECTED_TO_SERVER = TransitPolicy(
    direction=DIRECTION_FORWARD,
    inspect_devices=False,
    emit_icmp_on_expiry=False,
    loss_on_first_link=False,
    apply_router_transforms=True,
    deliver_via_services=False,
    loss_event="loss-injected",
    expiry_event="injected-ttl-expired",
    expiry_counter="sim.injected_ttl_expired",
)

#: Return traffic toward the client: endpoint responses, router ICMP
#: errors and device injections to the client. Routers decrement TTL
#: but do not transform headers or answer expiry (the resulting ICMP
#: would chase a spoofed source); every link rolls loss, including the
#: final link into the client.
POLICY_REVERSE = TransitPolicy(
    direction=DIRECTION_REVERSE,
    inspect_devices=False,
    emit_icmp_on_expiry=False,
    loss_on_first_link=True,
    apply_router_transforms=False,
    deliver_via_services=False,
    loss_event="loss-reverse",
    expiry_event="reverse-ttl-expired",
    expiry_counter="sim.reverse_ttl_expired",
)


#: Sentinel hop index for the link from hop 0 back into the client.
CLIENT_LINK = -1


@dataclass(slots=True)
class Transit:
    """One packet's traversal: where it enters a path and under which
    policy it walks.

    ``start_index`` is direction-dependent, matching how devices and
    nodes are indexed on a :class:`~repro.netsim.routing.Path`:

    * forward-direction policies enter on the link leading to hop
      ``start_index`` and proceed toward the endpoint;
    * the reverse policy treats ``start_index`` as the hop already
      *behind* the packet — it still has to cross hops
      ``start_index - 1 .. 0`` and the final client link.
    """

    packet: Packet
    path: Path
    start_index: int
    policy: TransitPolicy
    client_ip: str


class Simulator:
    """Walks packets through a :class:`Topology`."""

    def __init__(
        self,
        topology: Topology,
        *,
        seed: int = 0,
        loss_rate: float = 0.0,
        capture: bool = False,
        per_packet_time: float = 0.01,
        fault_plan: Optional[FaultPlan] = None,
        net_context: Optional[NetContext] = None,
    ) -> None:
        self.topology = topology
        self.seed = seed
        self.loss_rate = loss_rate
        self.clock = 0.0
        self.per_packet_time = per_packet_time
        self._rng = random.Random(seed)
        self._capture_enabled = capture
        self.capture: List[CaptureRecord] = []
        self._endpoint_stacks: Dict[str, "EndpointStack"] = {}
        self.fault_plan: Optional[FaultPlan] = None
        self._faults: Optional[FaultState] = None
        # The simulator owns the identifier context for everything that
        # allocates on its behalf: client connections (ephemeral ports,
        # IP IDs), endpoint stacks, router ICMP, resolver replies and
        # device forgeries. One per-simulator stream, reset per work
        # unit, is what makes serial and parallel campaigns allocate
        # identifiers in the same interleaved order.
        self.net_context = net_context if net_context is not None else NetContext()
        # Observability sink (repro.telemetry). NULL_TELEMETRY keeps the
        # hot path allocation-free; counters never influence the walk,
        # the clock or any RNG stream, so instrumented and
        # uninstrumented runs produce identical measurements.
        self.telemetry = NULL_TELEMETRY
        # Lazily-built batched fast path (repro.netsim.batch); compiled
        # path plans survive reset, batch framing does not.
        self._batch_engine = None
        self.set_fault_plan(fault_plan)

    def batch_engine(self):
        """The simulator's :class:`~repro.netsim.batch.BatchEngine`.

        One engine per simulator: measurement tools share its compiled
        path plans and batch framing. The engine's ``send`` is
        semantically identical to :meth:`send_from_client`, falling back
        to it whenever a fault plan or capture is active.
        """
        if self._batch_engine is None:
            from .batch import BatchEngine  # local import: avoids a cycle

            self._batch_engine = BatchEngine(self)
        return self._batch_engine

    def set_telemetry(self, telemetry) -> None:
        """Install an observability sink (``NULL_TELEMETRY`` disables)."""
        self.telemetry = telemetry

    # -- time -----------------------------------------------------------

    def advance(self, seconds: float) -> None:
        """Move virtual time forward."""
        if seconds < 0:
            raise ValueError("time only moves forward")
        self.clock += seconds

    # -- deterministic replay ---------------------------------------------

    def reset(self, rng_seed: Optional[int] = None) -> None:
        """Return the simulator to its just-built state.

        The campaign executor calls this before every work unit so that
        a measurement's outcome depends only on the world's construction
        parameters and the unit itself — never on which measurements ran
        before it or in which process. ``rng_seed`` overrides the seed
        of the per-hop loss RNG (the executor derives one per unit).
        """
        self.clock = 0.0
        seed = self.seed if rng_seed is None else rng_seed
        self._rng = random.Random(seed)
        self._endpoint_stacks.clear()
        self.capture.clear()
        # Rewind identifier allocation in place (never rebind: stacks
        # and connections hold references to this context).
        self.net_context.reset()
        if self._batch_engine is not None:
            self._batch_engine.reset_batches()
        if self._faults is not None:
            # Fault state (token buckets, churn counters, the fault
            # RNG) is part of the replayed state: rebuilding it here is
            # what keeps faulted campaigns bit-identical across runs
            # and across serial/parallel execution.
            self._faults.reset(seed)

    def current_path_seed(self) -> int:
        """The ECMP hash seed in effect for the *next* path selection.

        With no fault plan (or no churn) this is the construction seed;
        under churn it advances with the fault state's epoch. Because
        ``send_from_client`` counts the packet *before* selecting its
        path, the value read immediately after a send is also the seed
        that send used — which is how evidence builders
        (``repro.localize``) recompute a probe's traversed links
        without reaching into the walk.
        """
        if self._faults is None:
            return self.seed
        return self._faults.path_seed(self.seed)

    @property
    def churn_epoch(self) -> int:
        """The fault state's current ECMP re-hash epoch (0 = no churn)."""
        return 0 if self._faults is None else self._faults.epoch

    def set_fault_plan(self, fault_plan: Optional[FaultPlan]) -> None:
        """Install (or remove) a fault plan, resetting its runtime state."""
        self.fault_plan = fault_plan
        if fault_plan is None or fault_plan.is_noop():
            self._faults = None
        else:
            self._faults = FaultState(fault_plan, self.seed)

    # -- capture ----------------------------------------------------------

    def _record(self, location: str, event: str, detail: str) -> None:
        if self._capture_enabled:
            self.capture.append(
                CaptureRecord(self.clock, location, event, detail)
            )

    # -- endpoint stacks ---------------------------------------------------

    def _stack_for(self, endpoint: Endpoint) -> "EndpointStack":
        stack = self._endpoint_stacks.get(endpoint.ip)
        if stack is None:
            stack = EndpointStack(endpoint, net=self.net_context)
            self._endpoint_stacks[endpoint.ip] = stack
        return stack

    # -- the walk ---------------------------------------------------------

    def send_from_client(self, packet: Packet) -> List[Packet]:
        """Send ``packet`` from the client whose IP is ``packet.ip.src``.

        Returns every packet delivered back to that client, in arrival
        order. An empty list is a timeout.
        """
        self.clock += self.per_packet_time
        # Work on a copy: routers transform headers in flight and the
        # caller's packet must keep reflecting what was actually sent.
        packet = self._clone(packet)
        client_ip = packet.ip.src
        route = self.topology.route_between(client_ip, packet.ip.dst)
        flow = (
            packet.flow_key()
            if packet.is_tcp
            else FlowKey(packet.ip.src, packet.ip.dst, 0, 0, 1)
        )
        faults = self._faults
        path_seed = self.seed
        if faults is not None:
            faults.note_client_packet(self.clock)
            path_seed = faults.path_seed(self.seed)
        path = route.select(flow, seed=path_seed)
        deliveries: List[Packet] = []
        self._run_transit(
            Transit(packet, path, 0, POLICY_FORWARD, client_ip), deliveries
        )
        if faults is not None:
            deliveries = faults.shape_deliveries(deliveries, self._clone)
        tel = self.telemetry
        if tel.enabled:
            tel.count("sim.client_packets")
            if deliveries:
                tel.count("sim.deliveries", len(deliveries))
        return deliveries

    @staticmethod
    def _clone(packet: Packet) -> Packet:
        """An independent copy of ``packet`` (fresh header object).

        Transport payloads are immutable in the walk, so sharing them is
        safe; the IP header is the piece routers rebind in flight.
        """
        return Packet(
            ip=packet.ip.copy(),
            tcp=packet.tcp,
            icmp=packet.icmp,
            udp=packet.udp,
            emitted_by=packet.emitted_by,
            injected=packet.injected,
        )

    def _lost(self) -> bool:
        return self.loss_rate > 0 and self._rng.random() < self.loss_rate

    def _link_lost(self, node) -> bool:
        """Loss roll for the link leading to ``node`` (None = client link).

        With a fault-plan loss profile installed, the per-link/per-AS
        rates replace the uniform ``loss_rate``; draws then come from
        the fault RNG so plans never perturb the base RNG stream.
        """
        faults = self._faults
        if faults is not None and faults.per_link_loss:
            if self.telemetry.enabled:
                self.telemetry.count("sim.fault_loss_rolls")
            return faults.link_lost(node)
        return self.loss_rate > 0 and self._rng.random() < self.loss_rate

    def _run_transit(self, transit: Transit, deliveries: List[Packet]) -> None:
        """THE hop loop: walk one :class:`Transit` to completion.

        Every packet the simulator moves — forward client traffic,
        injected forgeries continuing to the server, and all return
        traffic — runs through this loop. Each hop applies the same
        staged pipeline, with :class:`TransitPolicy` bits gating the
        stages:

        1. **link loss** — one RNG roll per link crossed (the entry
           link only if ``loss_on_first_link``; the reverse walk also
           rolls the final link into the client);
        2. **fault fates + device inspection** — only if
           ``inspect_devices``; fail-open skips the device, fail-closed
           swallows in-path packets, verdicts may drop and inject;
        3. **node arrival** — routers decrement TTL (expiry handled per
           ``emit_icmp_on_expiry``) and optionally transform headers;
           an endpoint terminates a forward-direction walk via
           :meth:`_deliver_to_endpoint`; the client link terminates a
           reverse walk by appending to ``deliveries``. Interior
           non-router hops are transparent to reverse traffic.

        This loop is the simulator's hottest code: policy bits and
        instance attributes are hoisted into locals once per transit,
        and the reverse walk's final client link (:data:`CLIENT_LINK`)
        is handled after the loop so the per-hop body never tests for
        it.
        """
        policy = transit.policy
        packet = transit.packet
        path = transit.path
        start_index = transit.start_index
        client_ip = transit.client_ip
        ttl = packet.ip.ttl
        nodes = path.nodes
        if nodes is None:
            nodes = path.resolve(self.topology)
        hops = path.hops
        capture = self._capture_enabled
        faults = self._faults
        lossy = (
            faults is not None and faults.per_link_loss
        ) or self.loss_rate > 0
        inspect = policy.inspect_devices
        flaky = (
            inspect
            and faults is not None
            and faults.plan.flaky_devices is not None
        )
        tel = self.telemetry
        telemetry_on = tel.enabled
        forward = policy.direction == DIRECTION_FORWARD
        loss_on_entry = policy.loss_on_first_link
        apply_transforms = policy.apply_router_transforms
        if forward:
            # Enter on the link leading to hop start_index, proceed
            # toward the endpoint.
            indices = range(start_index, len(hops))
        else:
            # start_index is the hop already behind the packet: cross
            # hops start_index-1 .. 0, then the client link (below).
            indices = range(start_index - 1, -1, -1)
        for index in indices:
            node = nodes[index]
            # 1. The link leading to this hop: loss roll.
            if (
                lossy
                and (loss_on_entry or index != start_index)
                and self._link_lost(node)
            ):
                if telemetry_on:
                    tel.count("sim.packets_lost")
                if capture:
                    self._record(
                        hops[index].node_name,
                        policy.loss_event,
                        packet.brief(),
                    )
                return
            # 2. Devices on the link (fault fates, then inspection).
            if inspect:
                for device in hops[index].link_devices:
                    if flaky:
                        if telemetry_on:
                            tel.count("sim.fault_device_rolls")
                        fate = faults.device_fate(device)
                        if fate == FATE_FAIL_OPEN:
                            # Enforcement lapses: the packet passes
                            # without inspection (the device also misses
                            # any state it would have built from it).
                            if capture:
                                self._record(
                                    device.name, "fail-open", packet.brief()
                                )
                            continue
                        if fate == FATE_FAIL_CLOSED and device.in_path:
                            if capture:
                                self._record(
                                    device.name, "fail-closed", packet.brief()
                                )
                            return
                    ctx = InspectionContext(
                        clock=self.clock,
                        remaining_ttl=ttl,
                        link_index=index,
                        direction=policy.direction,
                        net=self.net_context,
                    )
                    verdict = device.inspect(packet, ctx)
                    if telemetry_on:
                        tel.count("sim.device_inspections")
                        if verdict.acted:
                            tel.count("sim.device_actions")
                    if capture and verdict.acted:
                        self._record(
                            device.name,
                            "device",
                            f"{verdict.note} {packet.brief()}",
                        )
                    self._dispatch_injections(
                        verdict, path, index, deliveries, client_ip
                    )
                    if verdict.drop and device.in_path:
                        if telemetry_on:
                            tel.count("sim.device_drops")
                        return
            # 3. Arrive at the node.
            if isinstance(node, Router):
                ttl -= 1
                if ttl <= 0:
                    self._expire_at_router(
                        node,
                        packet,
                        path,
                        index,
                        deliveries,
                        client_ip,
                        policy,
                    )
                    return
                if apply_transforms:
                    self._apply_router_transforms(node, packet)
            elif forward:
                if isinstance(node, Endpoint):
                    packet.ip.ttl = ttl
                    self._deliver_to_endpoint(
                        node,
                        packet,
                        path,
                        index,
                        deliveries,
                        client_ip,
                        policy,
                    )
                return
            # Reverse traffic passes interior non-router hops (e.g. an
            # endpoint mid-path) transparently: no TTL spent.
        if forward:
            # A forward walk normally terminates inside the loop; an
            # empty or endpoint-less path simply times out.
            return
        # The reverse walk crossed hop 0: one last loss roll for the
        # CLIENT_LINK itself (silent — the capture vantage point is the
        # client, so a packet lost here was never seen), then arrival.
        if lossy and self._link_lost(None):
            if telemetry_on:
                tel.count("sim.packets_lost")
            return
        packet.ip = packet.ip.copy(ttl=ttl)
        if capture:
            self._record(client_ip, "arrived", packet.brief())
        deliveries.append(packet)

    def _hop_ip(self, path: Path, index: int) -> str:
        nodes = path.nodes
        if nodes is None:
            nodes = path.resolve(self.topology)
        return nodes[index].ip

    def _apply_router_transforms(self, router: Router, packet: Packet) -> None:
        if router.rewrite_tos is not None and packet.ip.tos != router.rewrite_tos:
            packet.ip = packet.ip.copy(tos=router.rewrite_tos)
        if (
            router.rewrite_ip_flags is not None
            and packet.ip.flags != router.rewrite_ip_flags
        ):
            packet.ip = packet.ip.copy(flags=router.rewrite_ip_flags)

    def _expire_at_router(
        self,
        router: Router,
        packet: Packet,
        path: Path,
        index: int,
        deliveries: List[Packet],
        client_ip: str,
        policy: TransitPolicy,
    ) -> None:
        """TTL hit zero at ``router``: maybe emit ICMP Time Exceeded."""
        tel = self.telemetry
        if self._capture_enabled:
            self._record(router.name, policy.expiry_event, packet.brief())
        if not policy.emit_icmp_on_expiry:
            # Injected and reverse traffic dies silently: the ICMP
            # error would chase the spoofed source, not our client.
            if tel.enabled and policy.expiry_counter is not None:
                tel.count(policy.expiry_counter)
            return
        if not router.responds_icmp:
            if tel.enabled:
                tel.count("sim.icmp_silent")
            return
        if self._faults is not None and self._faults.icmp_suppressed(
            router, self.clock
        ):
            # Token bucket empty: the router stays silent for this
            # expiry, exactly like rate-limited real-world hops during
            # dense TTL sweeps.
            if tel.enabled:
                tel.count("sim.icmp_rate_limited")
            if self._capture_enabled:
                self._record(router.name, "icmp-rate-limited", packet.brief())
            return
        # The quoted copy reflects the packet as received here: any
        # in-flight header rewrites are visible, and the TTL has been
        # decremented all the way down.
        if tel.enabled:
            tel.count("sim.icmp_generated")
        packet.ip = packet.ip.copy(ttl=1)
        quoted = packet.to_bytes()
        message = time_exceeded(quoted, policy=router.quoting)
        response = icmp_packet(
            router.ip, client_ip, message, ttl=64, net=self.net_context
        )
        response.emitted_by = router.name
        self._run_transit(
            Transit(response, path, index, POLICY_REVERSE, client_ip),
            deliveries,
        )

    def _deliver_to_endpoint(
        self,
        endpoint: Endpoint,
        packet: Packet,
        path: Path,
        index: int,
        deliveries: List[Packet],
        client_ip: str,
        policy: TransitPolicy,
    ) -> None:
        if self._capture_enabled:
            self._record(endpoint.name, "delivered", packet.brief())
        if policy.deliver_via_services:
            if packet.is_udp:
                if endpoint.resolver is not None:
                    for response in endpoint.resolver.handle_query(
                        packet, endpoint.ip, net=self.net_context
                    ):
                        self._run_transit(
                            Transit(
                                response, path, index, POLICY_REVERSE, client_ip
                            ),
                            deliveries,
                        )
                return
            if not packet.is_tcp:
                return
        # Injected forgeries bypass application services but still meet
        # the endpoint's TCP stack — e.g. the RST a real stack sends
        # for injected data on an unknown flow.
        stack = self._stack_for(endpoint)
        for response in stack.receive(packet, self.clock):
            self._run_transit(
                Transit(response, path, index, POLICY_REVERSE, client_ip),
                deliveries,
            )

    def _dispatch_injections(
        self,
        verdict: Verdict,
        path: Path,
        link_index: int,
        deliveries: List[Packet],
        client_ip: str,
    ) -> None:
        tel = self.telemetry
        for injected in verdict.inject_to_client:
            # The device sits on the link leading to hop ``link_index``,
            # so its injections must cross every router at indices
            # link_index-1 .. 0 — exactly what the reverse policy does
            # when told the packet originates "at" hop link_index. Walk
            # a copy: the walk rebinds headers (TTL rewrite on arrival)
            # and the device may reuse its injection template.
            if tel.enabled:
                tel.count("sim.injected_to_client")
            self._run_transit(
                Transit(
                    self._clone(injected),
                    path,
                    link_index,
                    POLICY_REVERSE,
                    client_ip,
                ),
                deliveries,
            )
        for injected in verdict.inject_to_server:
            # Forged packets to the server next arrive at hop
            # ``link_index`` itself (the device's own link carries no
            # loss roll) and continue toward the endpoint.
            if tel.enabled:
                tel.count("sim.injected_to_server")
            self._run_transit(
                Transit(
                    self._clone(injected),
                    path,
                    link_index,
                    POLICY_INJECTED_TO_SERVER,
                    client_ip,
                ),
                deliveries,
            )


class EndpointStack:
    """A minimal TCP state machine living at an endpoint.

    Supports exactly what the measurement tools exercise: handshakes,
    one or more data segments answered by the application server, RST
    teardown (including device-forged RSTs arriving from the network),
    and FIN close.
    """

    ISN = 1_000_000

    def __init__(
        self, endpoint: Endpoint, net: Optional[NetContext] = None
    ) -> None:
        self.endpoint = endpoint
        # Reply IP IDs come from the owning simulator's identifier
        # context (the process-wide default only for hand-built stacks
        # in unit tests).
        self.net = net if net is not None else default_context()
        # Ports come from the endpoint's configured services; a web
        # server additionally listens on 80/443. A DNS-only endpoint
        # therefore refuses HTTP handshakes instead of faking them.
        self.open_ports = set(endpoint.services)
        if endpoint.server is not None:
            self.open_ports.update((80, 443))
        # canonical flow tuple -> (state, next_expected_client_seq)
        self.flows: Dict[Tuple, str] = {}

    def receive(self, packet: Packet, clock: float) -> List[Packet]:
        if packet.tcp is None:
            return []
        segment = packet.tcp
        if packet.ip.dst != self.endpoint.ip:
            return []
        flow = packet.flow_key().canonical()
        responses: List[Packet] = []

        def reply(flags: int, payload: bytes = b"", seq: int = 0, ack: int = 0) -> Packet:
            reply_packet = Packet(
                ip=packet.ip.copy(
                    src=self.endpoint.ip,
                    dst=packet.ip.src,
                    ttl=64,
                    tos=0,
                    identification=self.net.next_ip_id(),
                ),
                tcp=tcpmod.TCPSegment(
                    sport=segment.dport,
                    dport=segment.sport,
                    seq=seq,
                    ack=ack,
                    flags=flags,
                    payload=payload,
                ),
            )
            reply_packet.emitted_by = self.endpoint.name
            return reply_packet

        if segment.flags & tcpmod.RST:
            self.flows.pop(flow, None)
            return []
        if segment.flags & tcpmod.SYN and not (segment.flags & tcpmod.ACK):
            if segment.dport not in self.open_ports:
                return [
                    reply(tcpmod.RST | tcpmod.ACK, ack=segment.seq + 1)
                ]
            self.flows[flow] = "SYN_RECEIVED"
            return [
                reply(
                    tcpmod.SYN | tcpmod.ACK,
                    seq=self.ISN,
                    ack=segment.seq + 1,
                )
            ]
        state = self.flows.get(flow)
        if state is None:
            # Data for a torn-down or unknown flow: real stacks reset.
            return [reply(tcpmod.RST, seq=segment.ack)]
        if segment.flags & tcpmod.FIN:
            self.flows.pop(flow, None)
            return [
                reply(
                    tcpmod.FIN | tcpmod.ACK,
                    seq=self.ISN + 1,
                    ack=segment.seq + 1,
                )
            ]
        if state == "SYN_RECEIVED" and segment.flags & tcpmod.ACK and not segment.payload:
            self.flows[flow] = "ESTABLISHED"
            return []
        if segment.payload:
            self.flows[flow] = "ESTABLISHED"
            server = self.endpoint.server
            if server is None:
                return [reply(tcpmod.RST, seq=segment.ack)]
            app = server.handle_payload(segment.payload, packet.ip.src)
            if app.drop:
                return []
            if app.reset:
                return [reply(tcpmod.RST | tcpmod.ACK, seq=segment.ack, ack=segment.seq)]
            ack_value = segment.seq + len(segment.payload)
            for i, body in enumerate(app.responses):
                responses.append(
                    reply(
                        tcpmod.PSH | tcpmod.ACK,
                        payload=body,
                        seq=self.ISN + 1 + i,
                        ack=ack_value,
                    )
                )
            if app.close:
                responses.append(
                    reply(
                        tcpmod.FIN | tcpmod.ACK,
                        seq=self.ISN + 1 + len(app.responses),
                        ack=ack_value,
                    )
                )
                self.flows.pop(flow, None)
            return responses
        return responses
