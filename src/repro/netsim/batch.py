"""Batched packet-plane fast path: compiled path plans + array ladders.

The unified transit engine (:meth:`Simulator._run_transit`) walks one
packet at a time, paying the full staged hop loop — loss roll, device
stage, node arrival — at every hop even though the vast majority of
hops are pure routers whose only observable effects are a TTL decrement
and (possibly) one loss draw. This module removes that per-hop
interpretation for the common case while reproducing the scalar walk's
observable behaviour *exactly*:

* :class:`PathPlan` compiles a :class:`~repro.netsim.routing.Path` once
  into flat per-hop arrays — router flags, cumulative router counts,
  device attachment points, header-rewrite sites, the terminal hop —
  so a walk only has to visit its *event* hops (devices, TTL expiry,
  the endpoint) and can resolve everything between them arithmetically.
* :class:`BatchEngine.send` is a drop-in replacement for
  :meth:`Simulator.send_from_client` that walks the plan instead of the
  hop list. Uniform loss draws are taken from the simulator's RNG in
  tight in-order loops (one draw per link crossed, exactly the scalar
  draw order), so the RNG stream stays bit-identical. Full
  :class:`~repro.netmodel.packet.Packet` clones are materialized
  lazily — only when a device inspects the packet or a header rewrite
  / TTL field actually has to differ from the caller's packet.
* :meth:`BatchEngine.run_udp_ladder` batches a whole TTL ladder of
  independent single-packet probes as parallel arrays (TTLs, source
  ports, IP IDs, loss fates), materializing a packet only for probes
  whose terminal event needs one (a responding router's ICMP quote, an
  endpoint delivery). Lost probes and silent-router expiries consume
  their identifier allocations — keeping the NetContext streams
  bit-identical with the scalar loop — without ever building a packet.

Anything the fast path does not cover falls back *transparently* to the
scalar engine (``sim.send_from_client`` / ``_run_transit``): fault
plans (per-link loss profiles, ICMP rate limiting, path churn, flaky
devices, delivery shaping), capture mode, and injected-to-server
continuations mid-walk. Correctness therefore never depends on batch
coverage; the batch hit rate is visible via the
``sim.batch_fast_path`` / ``sim.batch_scalar_fallback`` counters and
the per-batch ``sim.batch`` size events.

Like every allocator-adjacent module, this file must hold **no**
module-level state (lintkit RP503 enforces it): plans are cached on the
engine, the engine is owned by a simulator, and everything mutable is
rewound by the per-unit reset protocol.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..netmodel.ip import FlowKey, IPHeader, checksum16
from ..netmodel.icmp import time_exceeded
from ..netmodel.packet import Packet, icmp_packet
from ..netmodel.udp import UDPDatagram
from .interfaces import DIRECTION_FORWARD, InspectionContext, Verdict
from .routing import Path
from .simulator import (
    POLICY_INJECTED_TO_SERVER,
    Simulator,
    Transit,
)
from .topology import Endpoint, Router

# Terminal kinds a forward walk can reach (plan-resolved, not searched).
_EXPIRE = "expire"  # TTL hits zero at a router
_DELIVER = "deliver"  # first non-router hop is an Endpoint
_SINK = "sink"  # first non-router hop is neither (walk ends silently)
_TIMEOUT = "timeout"  # path is all routers and the TTL outlives them


def patched_quote(wire_bytes: bytes, ttl: int) -> bytes:
    """``wire_bytes`` re-serialized as if ``ip.ttl`` were ``ttl``.

    The transport bytes (and their checksum) do not cover the TTL, so
    only the IP header changes: patch the TTL byte and recompute the
    header checksum over the 20 header bytes. This is byte-identical to
    rebuilding the packet with ``ip.copy(ttl=ttl)`` and serializing —
    the expiry fast path uses it to avoid re-serializing the transport
    payload for every ICMP quote.
    """
    header = bytearray(wire_bytes[: IPHeader.HEADER_LEN])
    header[8] = ttl & 0xFF
    header[10:12] = b"\x00\x00"
    header[10:12] = checksum16(bytes(header)).to_bytes(2, "big")
    return bytes(header) + wire_bytes[IPHeader.HEADER_LEN :]


class PathPlan:
    """A :class:`Path` compiled to flat arrays for array-speed walks.

    Plans are pure functions of the path and topology (no per-unit
    state), so they survive ``Simulator.reset`` and are cached on the
    engine keyed by path identity.
    """

    __slots__ = (
        "path",
        "n_hops",
        "is_router",
        "routers_before",
        "router_hops",
        "terminal_index",
        "endpoint",
        "routers_reachable",
        "device_hops",
        "rewrites",
    )

    def __init__(self, path: Path, topology) -> None:
        nodes = path.nodes if path.nodes is not None else path.resolve(topology)
        hops = path.hops
        self.path = path
        self.n_hops = len(hops)
        is_router = []
        routers_before = [0]
        terminal_index: Optional[int] = None
        endpoint: Optional[Endpoint] = None
        router_hops: List[Tuple[int, Router]] = []
        rewrites: List[Tuple[int, Optional[int], Optional[int]]] = []
        count = 0
        for index, node in enumerate(nodes):
            router = isinstance(node, Router)
            is_router.append(router)
            if router and terminal_index is None:
                router_hops.append((index, node))
                if (
                    node.rewrite_tos is not None
                    or node.rewrite_ip_flags is not None
                ):
                    rewrites.append(
                        (index, node.rewrite_tos, node.rewrite_ip_flags)
                    )
                count += 1
            elif terminal_index is None:
                terminal_index = index
                if isinstance(node, Endpoint):
                    endpoint = node
            routers_before.append(count)
        self.is_router = tuple(is_router)
        self.routers_before = tuple(routers_before)
        self.router_hops = tuple(router_hops)
        self.terminal_index = terminal_index
        self.endpoint = endpoint
        self.routers_reachable = (
            routers_before[terminal_index]
            if terminal_index is not None
            else count
        )
        last_reachable = (
            terminal_index if terminal_index is not None else self.n_hops - 1
        )
        self.device_hops = tuple(
            (index, tuple(hop.link_devices))
            for index, hop in enumerate(hops[: last_reachable + 1])
            if hop.link_devices
        )
        self.rewrites = tuple(rewrites)


class BatchEngine:
    """The batched fast path for one simulator's packet plane.

    One engine per simulator (``sim.batch_engine()``); the measurement
    tools route their sends through it and frame logical batches (a
    CenTrace sweep, a CenFuzz endpoint run) so the batch hit rate and
    size distribution are observable in telemetry.
    """

    __slots__ = ("sim", "_plans", "_routes", "_batches")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        # id(path) -> (path, plan): the path reference keeps the id stable.
        self._plans = {}
        self._routes = {}
        self._batches = []  # stack of [label, fast, fallback]

    # -- batch framing -------------------------------------------------

    def begin_batch(self, label: str = "") -> None:
        """Open a logical batch (a sweep, an endpoint run, a ladder)."""
        self._batches.append([label, 0, 0])

    def end_batch(self) -> None:
        """Close the innermost batch, emitting its size histogram event."""
        label, fast, fallback = self._batches.pop()
        tel = self.sim.telemetry
        if tel.enabled:
            tel.count("sim.batches")
            tel.event(
                "sim.batch",
                label=label,
                size=fast + fallback,
                fast=fast,
                fallback=fallback,
            )

    def reset_batches(self) -> None:
        """Drop in-flight batch framing (part of ``Simulator.reset``)."""
        self._batches.clear()

    class _BatchFrame:
        __slots__ = ("engine",)

        def __init__(self, engine: "BatchEngine") -> None:
            self.engine = engine

        def __enter__(self) -> "BatchEngine":
            return self.engine

        def __exit__(self, *exc) -> None:
            self.engine.end_batch()

    def batch(self, label: str = "") -> "BatchEngine._BatchFrame":
        """Context manager variant of ``begin_batch``/``end_batch``."""
        self.begin_batch(label)
        return BatchEngine._BatchFrame(self)

    def _note(self, fast: bool) -> None:
        tel = self.sim.telemetry
        if tel.enabled:
            tel.count(
                "sim.batch_fast_path" if fast else "sim.batch_scalar_fallback"
            )
        if self._batches:
            self._batches[-1][1 if fast else 2] += 1

    # -- plan / route caches -------------------------------------------

    def plan_for(self, path: Path) -> PathPlan:
        entry = self._plans.get(id(path))
        if entry is None or entry[0] is not path:
            entry = (path, PathPlan(path, self.sim.topology))
            self._plans[id(path)] = entry
        return entry[1]

    def _route_for(self, src: str, dst: str):
        key = (src, dst)
        route = self._routes.get(key)
        if route is None:
            route = self.sim.topology.route_between(src, dst)
            self._routes[key] = route
        return route

    # -- the per-send fast path ----------------------------------------

    def send(
        self, packet: Packet, wire_bytes: Optional[bytes] = None
    ) -> List[Packet]:
        """Semantically identical to ``sim.send_from_client(packet)``.

        ``wire_bytes``, when the caller already serialized the packet
        (CenTrace records ``sent_bytes`` for every probe), lets the
        expiry path derive the ICMP quote by patching the TTL byte
        instead of re-serializing the transport payload.

        Falls back to the scalar engine whenever a fault plan or
        capture is active — every fault behaviour (per-link loss
        profiles, token-bucket ICMP suppression, path churn, flaky
        device fates, delivery shaping) stays implemented in exactly
        one place.
        """
        sim = self.sim
        if sim._faults is not None or sim._capture_enabled:
            self._note(False)
            return sim.send_from_client(packet)
        self._note(True)
        sim.clock += sim.per_packet_time
        src = packet.ip.src
        route = self._route_for(src, packet.ip.dst)
        if len(route.paths) == 1:
            path = route.paths[0]
        else:
            # Same flow hashing as the scalar engine: TCP uses the real
            # 5-tuple, everything else a degenerate per-pair key.
            flow = (
                packet.flow_key()
                if packet.is_tcp
                else FlowKey(src, packet.ip.dst, 0, 0, 1)
            )
            path = route.select(flow, seed=sim.seed)
        plan = self.plan_for(path)
        deliveries: List[Packet] = []
        self._walk_forward(plan, packet, deliveries, wire_bytes)
        tel = sim.telemetry
        if tel.enabled:
            tel.count("sim.client_packets")
            if deliveries:
                tel.count("sim.deliveries", len(deliveries))
        return deliveries

    def _walk_forward(
        self,
        plan: PathPlan,
        packet: Packet,
        deliveries: List[Packet],
        wire_bytes: Optional[bytes],
    ) -> None:
        sim = self.sim
        tel = sim.telemetry
        tel_on = tel.enabled
        rate = sim.loss_rate
        start_ttl = packet.ip.ttl
        client_ip = packet.ip.src
        # Resolve the terminal hop arithmetically: the k-th router (if
        # the TTL runs out), else the first non-router hop, else the
        # path just ends (timeout).
        terminal_router: Optional[Router] = None
        if plan.routers_reachable and start_ttl <= plan.routers_reachable:
            # A TTL of k expires at the k-th router; anything <= 0 dies
            # at the first router it meets (the decrement goes negative).
            ordinal = start_ttl - 1 if start_ttl > 0 else 0
            last_hop, terminal_router = plan.router_hops[ordinal]
            terminal = _EXPIRE
        elif plan.terminal_index is not None:
            last_hop = plan.terminal_index
            terminal = _DELIVER if plan.endpoint is not None else _SINK
        else:
            last_hop = plan.n_hops - 1
            terminal = _TIMEOUT
        walk_pkt: Optional[Packet] = None
        rewrite_pos = 0
        cursor = 0  # next link index still owing a loss draw
        if plan.device_hops:
            for dev_hop, devices in plan.device_hops:
                if dev_hop > last_hop:
                    break
                if rate > 0:
                    rnd = sim._rng.random
                    for _ in range(dev_hop + 1 - cursor):
                        if rnd() < rate:
                            if tel_on:
                                tel.count("sim.packets_lost")
                            return
                    cursor = dev_hop + 1
                if walk_pkt is None:
                    walk_pkt = sim._clone(packet)
                rewrite_pos = self._apply_rewrites(
                    plan, walk_pkt, rewrite_pos, dev_hop
                )
                remaining = start_ttl - plan.routers_before[dev_hop]
                for device in devices:
                    ctx = InspectionContext(
                        clock=sim.clock,
                        remaining_ttl=remaining,
                        link_index=dev_hop,
                        direction=DIRECTION_FORWARD,
                        net=sim.net_context,
                    )
                    verdict = device.inspect(walk_pkt, ctx)
                    if tel_on:
                        tel.count("sim.device_inspections")
                        if verdict.acted:
                            tel.count("sim.device_actions")
                    if verdict.inject_to_client or verdict.inject_to_server:
                        self._dispatch_injections(
                            verdict, plan, dev_hop, deliveries, client_ip
                        )
                    if verdict.drop and device.in_path:
                        if tel_on:
                            tel.count("sim.device_drops")
                        return
        if rate > 0:
            rnd = sim._rng.random
            for _ in range(last_hop + 1 - cursor):
                if rnd() < rate:
                    if tel_on:
                        tel.count("sim.packets_lost")
                    return
        if terminal is _EXPIRE:
            self._expire(
                plan,
                packet,
                walk_pkt,
                wire_bytes,
                rewrite_pos,
                last_hop,
                terminal_router,
                deliveries,
                client_ip,
            )
        elif terminal is _DELIVER:
            self._deliver(
                plan, packet, walk_pkt, rewrite_pos, start_ttl, last_hop,
                deliveries,
            )
        # _SINK / _TIMEOUT: the walk ends without an observable event.

    @staticmethod
    def _apply_rewrites(
        plan: PathPlan, pkt: Packet, pos: int, upto_hop: int
    ) -> int:
        """Apply header rewrites of routers at hop indices < ``upto_hop``.

        Incremental (``pos`` is the resume point) so rewrites interleave
        correctly with device inspections, exactly as in the scalar walk.
        """
        rewrites = plan.rewrites
        while pos < len(rewrites) and rewrites[pos][0] < upto_hop:
            _, rtos, rflags = rewrites[pos]
            ip = pkt.ip
            if rtos is not None and ip.tos != rtos:
                pkt.ip = ip = ip.copy(tos=rtos)
            if rflags is not None and ip.flags != rflags:
                pkt.ip = ip.copy(flags=rflags)
            pos += 1
        return pos

    def _expire(
        self,
        plan: PathPlan,
        packet: Packet,
        walk_pkt: Optional[Packet],
        wire_bytes: Optional[bytes],
        rewrite_pos: int,
        hop: int,
        router: Router,
        deliveries: List[Packet],
        client_ip: str,
    ) -> None:
        """TTL hit zero at ``router`` — the plan-resolved expiry event."""
        sim = self.sim
        tel = sim.telemetry
        if not router.responds_icmp:
            if tel.enabled:
                tel.count("sim.icmp_silent")
            return
        if tel.enabled:
            tel.count("sim.icmp_generated")
        if walk_pkt is not None:
            # A device saw (and may have annotated) the in-flight copy:
            # finish its rewrites and serialize it, like the scalar walk.
            self._apply_rewrites(plan, walk_pkt, rewrite_pos, hop)
            walk_pkt.ip = walk_pkt.ip.copy(ttl=1)
            quoted = walk_pkt.to_bytes()
        elif wire_bytes is not None and not (
            plan.rewrites and plan.rewrites[0][0] < hop
        ):
            # Nothing rewrote the packet before the expiring router: the
            # quote is the sent bytes with only the TTL (and therefore
            # the IP checksum) changed.
            quoted = patched_quote(wire_bytes, 1)
        else:
            clone = sim._clone(packet)
            self._apply_rewrites(plan, clone, rewrite_pos, hop)
            clone.ip = clone.ip.copy(ttl=1)
            quoted = clone.to_bytes()
        message = time_exceeded(quoted, policy=router.quoting)
        response = icmp_packet(
            router.ip, client_ip, message, ttl=64, net=sim.net_context
        )
        response.emitted_by = router.name
        self._lean_reverse(plan, response, hop, deliveries)

    def _deliver(
        self,
        plan: PathPlan,
        packet: Packet,
        walk_pkt: Optional[Packet],
        rewrite_pos: int,
        start_ttl: int,
        last_hop: int,
        deliveries: List[Packet],
    ) -> None:
        """Arrival at the endpoint hop (services + TCP stack delivery)."""
        sim = self.sim
        endpoint = plan.endpoint
        remaining = start_ttl - plan.routers_before[last_hop]
        restore = False
        if walk_pkt is not None:
            self._apply_rewrites(plan, walk_pkt, rewrite_pos, last_hop)
            walk_pkt.ip.ttl = remaining
            arrived = walk_pkt
        elif plan.rewrites and plan.rewrites[0][0] < last_hop:
            arrived = sim._clone(packet)
            self._apply_rewrites(plan, arrived, 0, last_hop)
            arrived.ip.ttl = remaining
        else:
            # Zero-copy delivery: no rewrite touched the header, so the
            # stack/resolver may read the caller's packet directly; only
            # the on-wire TTL differs, set for the call and restored.
            arrived = packet
            restore = True
            saved_ttl = packet.ip.ttl
            packet.ip.ttl = remaining
        try:
            if arrived.udp is not None:
                if endpoint.resolver is not None:
                    for response in endpoint.resolver.handle_query(
                        arrived, endpoint.ip, net=sim.net_context
                    ):
                        self._lean_reverse(plan, response, last_hop, deliveries)
                return
            if arrived.tcp is None:
                return
            stack = sim._stack_for(endpoint)
            for response in stack.receive(arrived, sim.clock):
                self._lean_reverse(plan, response, last_hop, deliveries)
        finally:
            if restore:
                packet.ip.ttl = saved_ttl

    def _lean_reverse(
        self,
        plan: PathPlan,
        pkt: Packet,
        start_index: int,
        deliveries: List[Packet],
    ) -> None:
        """Walk ``pkt`` from hop ``start_index`` back into the client.

        Replicates the scalar reverse policy: one loss draw per link
        (hops ``start_index-1 .. 0`` plus the client link, in order),
        TTL decrement at routers with silent expiry, arrival TTL on the
        delivered packet. With no uniform loss the whole walk reduces
        to one subtraction against the plan's router counts.
        """
        sim = self.sim
        tel = sim.telemetry
        tel_on = tel.enabled
        rate = sim.loss_rate
        ttl = pkt.ip.ttl
        if rate > 0:
            rnd = sim._rng.random
            is_router = plan.is_router
            for j in range(start_index - 1, -1, -1):
                if rnd() < rate:
                    if tel_on:
                        tel.count("sim.packets_lost")
                    return
                if is_router[j]:
                    ttl -= 1
                    if ttl <= 0:
                        if tel_on:
                            tel.count("sim.reverse_ttl_expired")
                        return
            if rnd() < rate:
                if tel_on:
                    tel.count("sim.packets_lost")
                return
        else:
            crossed = plan.routers_before[start_index]
            if ttl <= crossed:
                if tel_on:
                    tel.count("sim.reverse_ttl_expired")
                return
            ttl -= crossed
        pkt.ip.ttl = ttl
        deliveries.append(pkt)

    def _dispatch_injections(
        self,
        verdict: Verdict,
        plan: PathPlan,
        link_index: int,
        deliveries: List[Packet],
        client_ip: str,
    ) -> None:
        sim = self.sim
        tel = sim.telemetry
        tel_on = tel.enabled
        for injected in verdict.inject_to_client:
            if tel_on:
                tel.count("sim.injected_to_client")
            self._lean_reverse(
                plan, sim._clone(injected), link_index, deliveries
            )
        for injected in verdict.inject_to_server:
            # Injected-to-server continuations keep their scalar
            # implementation: they are rare, stateful (they meet the
            # endpoint stack) and policy-distinct.
            if tel_on:
                tel.count("sim.injected_to_server")
            sim._run_transit(
                Transit(
                    sim._clone(injected),
                    plan.path,
                    link_index,
                    POLICY_INJECTED_TO_SERVER,
                    client_ip,
                ),
                deliveries,
            )

    # -- the array ladder ----------------------------------------------

    def run_udp_ladder(
        self,
        client_ip: str,
        dst_ip: str,
        dport: int,
        ttls: Sequence[int],
        payload_for: Callable[[int], bytes],
        *,
        tos: int = 0,
        label: str = "udp-ladder",
    ) -> List[List[Packet]]:
        """Send one UDP probe per TTL in ``ttls`` as a single batch.

        Semantically identical to the scalar loop::

            for ttl in ttls:
                sport = net.next_ephemeral_port()
                pkt = udp_packet(client_ip, dst_ip, sport, dport,
                                 payload=payload_for(sport), ttl=ttl,
                                 tos=tos, net=net)
                results.append(sim.send_from_client(pkt))

        but resolved on the compiled plan: probe fates (loss, expiry
        router, delivery) are computed on flat arrays, the uniform-loss
        stream is drawn in per-packet order, and a ``Packet`` is only
        materialized for probes whose terminal event needs its bytes (a
        responding router's quote, an endpoint delivery). Lost probes
        and silent-router expiries still consume their source-port and
        IP-ID allocations so the NetContext streams stay bit-identical.

        ``payload_for`` must be a pure function of the source port (the
        DNS case: the transaction ID is derived from the port); it is
        invoked only for materialized probes.

        Falls back to the scalar loop per probe (through :meth:`send`)
        whenever a fault plan, capture, ECMP multi-path routing, an
        on-path device or a header-rewriting router makes per-probe
        state observable mid-walk.
        """
        sim = self.sim
        route = self._route_for(client_ip, dst_ip)
        eligible = (
            sim._faults is None
            and not sim._capture_enabled
            and len(route.paths) == 1
        )
        plan = self.plan_for(route.paths[0]) if eligible else None
        if plan is not None and (plan.device_hops or plan.rewrites):
            # Devices need the in-flight packet; header rewrites change
            # quote/arrival bytes mid-walk. Both stay scalar (per probe,
            # via send(), which itself fast-paths rewrites correctly).
            eligible = False
        with self.batch(label):
            if not eligible:
                return self._scalar_ladder(
                    client_ip, dst_ip, dport, ttls, payload_for, tos
                )
            return self._fast_ladder(
                plan, client_ip, dst_ip, dport, ttls, payload_for, tos
            )

    def _scalar_ladder(
        self, client_ip, dst_ip, dport, ttls, payload_for, tos
    ) -> List[List[Packet]]:
        from ..netmodel.packet import udp_packet

        net = self.sim.net_context
        results = []
        for ttl in ttls:
            sport = net.next_ephemeral_port()
            probe = udp_packet(
                client_ip,
                dst_ip,
                sport,
                dport,
                payload=payload_for(sport),
                ttl=ttl,
                tos=tos,
                net=net,
            )
            results.append(self.send(probe))
        return results

    def _fast_ladder(
        self, plan, client_ip, dst_ip, dport, ttls, payload_for, tos
    ) -> List[List[Packet]]:
        sim = self.sim
        tel = sim.telemetry
        tel_on = tel.enabled
        net = sim.net_context
        rate = sim.loss_rate
        n = len(ttls)
        # Bulk-allocate the per-probe source ports up front: the
        # ephemeral stream carries only probe sports here, so the block
        # equals n sequential next_ephemeral_port() calls.
        sports = net.take_ephemeral_ports(n)
        reachable = plan.routers_reachable
        per_packet_time = sim.per_packet_time
        results: List[List[Packet]] = []
        for i in range(n):
            ttl = ttls[i]
            sim.clock += per_packet_time
            ip_id = net.next_ip_id()
            deliveries: List[Packet] = []
            results.append(deliveries)
            if tel_on:
                tel.count("sim.batch_fast_path")
                tel.count("sim.client_packets")
            if self._batches:
                self._batches[-1][1] += 1
            if reachable and ttl <= reachable:
                last_hop, router = plan.router_hops[ttl - 1 if ttl > 0 else 0]
                terminal = _EXPIRE
            elif plan.terminal_index is not None:
                last_hop = plan.terminal_index
                terminal = _DELIVER if plan.endpoint is not None else _SINK
            else:
                last_hop = plan.n_hops - 1
                terminal = _TIMEOUT
            if rate > 0:
                rnd = sim._rng.random
                lost = False
                for _ in range(last_hop + 1):
                    if rnd() < rate:
                        lost = True
                        break
                if lost:
                    if tel_on:
                        tel.count("sim.packets_lost")
                    continue
            if terminal is _EXPIRE:
                if not router.responds_icmp:
                    if tel_on:
                        tel.count("sim.icmp_silent")
                    continue
                if tel_on:
                    tel.count("sim.icmp_generated")
                quote_pkt = Packet(
                    ip=IPHeader(
                        src=client_ip,
                        dst=dst_ip,
                        ttl=1,
                        tos=tos,
                        identification=ip_id,
                    ),
                    udp=UDPDatagram(
                        sport=sports[i], dport=dport,
                        payload=payload_for(sports[i]),
                    ),
                )
                message = time_exceeded(
                    quote_pkt.to_bytes(), policy=router.quoting
                )
                response = icmp_packet(
                    router.ip, client_ip, message, ttl=64, net=net
                )
                response.emitted_by = router.name
                self._lean_reverse(plan, response, last_hop, deliveries)
            elif terminal is _DELIVER:
                endpoint = plan.endpoint
                if endpoint.resolver is not None:
                    arrived = Packet(
                        ip=IPHeader(
                            src=client_ip,
                            dst=dst_ip,
                            ttl=ttl - plan.routers_before[last_hop],
                            tos=tos,
                            identification=ip_id,
                        ),
                        udp=UDPDatagram(
                            sport=sports[i], dport=dport,
                            payload=payload_for(sports[i]),
                        ),
                    )
                    for response in endpoint.resolver.handle_query(
                        arrived, endpoint.ip, net=net
                    ):
                        self._lean_reverse(plan, response, last_hop, deliveries)
            # _SINK / _TIMEOUT: allocations consumed, nothing delivered.
            if tel_on and deliveries:
                tel.count("sim.deliveries", len(deliveries))
        return results
