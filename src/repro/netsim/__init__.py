"""A deterministic, packet-walking network simulator.

Provides the substrate the paper's measurements ran on in the real
world: routers that decrement TTL and answer with quoting ICMP errors,
endpoints with TCP/HTTP/TLS behaviour, multi-path routes with flow-hash
load balancing, and attachment points for censorship devices.
"""

from .faults import (
    DeliveryFaultProfile,
    FaultPlan,
    FlakyDeviceProfile,
    IcmpRateLimitProfile,
    LossProfile,
    PathChurnProfile,
    PRESETS as FAULT_PRESETS,
)
from .interfaces import (
    ApplicationServer,
    AppReply,
    DIRECTION_FORWARD,
    DIRECTION_REVERSE,
    InspectionContext,
    LinkDevice,
    Verdict,
)
from .routing import Hop, Path, Route, single_path_route
from .simulator import CaptureRecord, Simulator
from .tcpstack import Connection, ProbeResult, open_connection
from .topology import Client, Endpoint, Node, Router, Service, Topology

__all__ = [
    "DeliveryFaultProfile",
    "FaultPlan",
    "FAULT_PRESETS",
    "FlakyDeviceProfile",
    "IcmpRateLimitProfile",
    "LossProfile",
    "PathChurnProfile",
    "ApplicationServer",
    "AppReply",
    "DIRECTION_FORWARD",
    "DIRECTION_REVERSE",
    "InspectionContext",
    "LinkDevice",
    "Verdict",
    "Hop",
    "Path",
    "Route",
    "single_path_route",
    "CaptureRecord",
    "Simulator",
    "Connection",
    "ProbeResult",
    "open_connection",
    "Client",
    "Endpoint",
    "Node",
    "Router",
    "Service",
    "Topology",
]
