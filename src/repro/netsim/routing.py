"""Routes, paths and flow-hash path selection.

Real networks load-balance flows across equal-cost paths keyed on the
5-tuple (the reason Paris traceroute keeps ports fixed, §4.1). CenTrace
*cannot* keep the source port fixed — every probe is a fresh TCP
connection — so it repeats measurements and uses per-hop probability
distributions instead. The simulator reproduces that: each
(client, endpoint) pair has a :class:`Route` holding one or more
:class:`Path` objects, and the path actually taken by a packet is chosen
by hashing its flow key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netmodel.ip import FlowKey
from .interfaces import LinkDevice


@dataclass
class Hop:
    """One traversal step: the devices on the incoming link, then a node.

    ``node_name`` refers to a Router (or, for the final hop, an
    Endpoint) registered in the topology. ``link_devices`` sit on the
    link *leading to* this node — a probe whose TTL expires at the
    previous node never reaches them.
    """

    node_name: str
    link_devices: List[LinkDevice] = field(default_factory=list)


@dataclass
class Path:
    """An ordered list of hops from (but excluding) the client to the
    endpoint (inclusive, as the final hop)."""

    hops: List[Hop]
    # Node objects resolved per hop (same order as ``hops``), filled in
    # when the path is registered on a topology so the simulator walks
    # object references instead of doing per-hop name/IP dict lookups.
    nodes: Optional[List[object]] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.hops:
            raise ValueError("a path needs at least the endpoint hop")

    def resolve(self, topology) -> List[object]:
        """Bind each hop name to its topology node (memoized on the path).

        A successful resolution is cached in ``nodes`` and returned
        as-is on every later call: one path resolves at most once, no
        matter how many transits (forward walk, ICMP returns, injection
        walks) traverse it.
        """
        if self.nodes is not None:
            return self.nodes
        nodes = []
        for hop in self.hops:
            name = hop.node_name
            node = (
                topology.routers.get(name)
                or topology.endpoints.get(name)
                or topology.clients.get(name)
            )
            if node is None:
                raise KeyError(f"unknown hop node: {name}")
            nodes.append(node)
        self.nodes = nodes
        return nodes

    @property
    def length(self) -> int:
        """Number of hops including the endpoint."""
        return len(self.hops)

    def node_names(self) -> Tuple[str, ...]:
        return tuple(h.node_name for h in self.hops)

    def devices(self) -> List[Tuple[int, LinkDevice]]:
        """All (link_index, device) pairs on this path.

        ``link_index`` is the 0-based index of the hop the device's link
        leads to; the device is roughly ``link_index`` hops from the
        client (between nodes ``link_index-1`` and ``link_index``).
        """
        found = []
        for i, hop in enumerate(self.hops):
            for device in hop.link_devices:
                found.append((i, device))
        return found

    def links(self, origin: str) -> Tuple[Tuple[str, str], ...]:
        """The ordered (from-node, to-node) link pairs of this path.

        ``origin`` names the sending client (paths exclude it), so
        ``links(origin)[0]`` is the client's access link. The link at
        index ``i`` leads into ``hops[i]`` — the same convention as
        :meth:`devices`, so a device reported at ``link_index i`` sits
        on ``links(origin)[i]``. Tomography keys its boolean system on
        these pairs: two ECMP paths that traverse the same physical
        link produce the same pair.
        """
        names = (origin,) + self.node_names()
        return tuple(zip(names, names[1:]))


class Route:
    """The set of candidate paths between one client and one endpoint."""

    def __init__(self, paths: Sequence[Path], weights: Optional[Sequence[float]] = None):
        if not paths:
            raise ValueError("route needs at least one path")
        self.paths = list(paths)
        if weights is None:
            weights = [1.0] * len(self.paths)
        if len(weights) != len(self.paths):
            raise ValueError("weights must match paths")
        total = float(sum(weights))
        self.weights = [w / total for w in weights]

    def select(self, flow: FlowKey, seed: int = 0) -> Path:
        """Deterministically pick the path this flow takes.

        Uses a hash of the 5-tuple (like real ECMP) mapped onto the
        weighted path distribution.
        """
        if len(self.paths) == 1:
            return self.paths[0]
        digest = hashlib.blake2b(
            f"{flow.src}|{flow.dst}|{flow.sport}|{flow.dport}|{flow.protocol}|{seed}".encode(),
            digest_size=8,
        ).digest()
        point = int.from_bytes(digest, "big") / 2**64
        cumulative = 0.0
        for path, weight in zip(self.paths, self.weights):
            cumulative += weight
            if point < cumulative:
                return path
        return self.paths[-1]

    def enumerate_paths(self) -> Tuple[Tuple[Path, float], ...]:
        """Every candidate path with its normalized selection weight.

        Deterministic: pairs come back in registration order, the same
        order :meth:`select`'s cumulative scan walks. This is the
        tomography entry point — churn localization needs the *full*
        ECMP path set (link sets to intersect/eliminate), not just the
        one path a flow hashes onto.
        """
        return tuple(zip(self.paths, self.weights))

    def traversed_links(
        self, flow: FlowKey, origin: str, seed: int = 0
    ) -> Tuple[Tuple[str, str], ...]:
        """The link set ``flow`` traverses under ``seed``.

        Convenience over ``select(flow, seed).links(origin)`` so
        evidence builders recompute a probe's traversed links exactly
        the way the simulator chose them.
        """
        return self.select(flow, seed=seed).links(origin)

    def all_devices(self) -> List[Tuple[int, LinkDevice]]:
        """Union of devices across all candidate paths (deduplicated)."""
        seen = set()
        result = []
        for path in self.paths:
            for link_index, device in path.devices():
                key = (link_index, id(device))
                if key not in seen:
                    seen.add(key)
                    result.append((link_index, device))
        return result


def single_path_route(node_names: Sequence[str], devices_at: Optional[Dict[int, List[LinkDevice]]] = None) -> Route:
    """Convenience: build a Route with one path through ``node_names``.

    ``devices_at`` maps hop index -> devices on the link leading to that
    hop.
    """
    devices_at = devices_at or {}
    hops = [
        Hop(node_name=name, link_devices=list(devices_at.get(i, [])))
        for i, name in enumerate(node_names)
    ]
    return Route([Path(hops)])
