"""Client-side TCP connection emulation.

CenTrace's probes are stateful: it completes a real TCP handshake at
full TTL, then sends the application payload (HTTP request or TLS
ClientHello) with a *limited* TTL — and every probe uses a fresh
connection with a fresh source port (§4.1, "Network path variance").
This module provides exactly that workflow on top of the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..netmodel import tcp as tcpmod
from ..netmodel.netctx import NetContext, default_context
from ..netmodel.packet import Packet, tcp_packet
from .simulator import Simulator
from .topology import Client

_EPHEMERAL_BASE = NetContext.EPHEMERAL_BASE


def next_ephemeral_port(net: Optional[NetContext] = None) -> int:
    """A fresh client source port (wraps within the ephemeral range).

    Source ports feed the ECMP flow hash, so simulated connections must
    draw from the owning simulator's ``net_context`` — the per-unit
    reset of that context is what replays a measurement's path
    selection bit-identically.
    """
    return (net if net is not None else default_context()).next_ephemeral_port()


def reset_ephemeral_ports(base: int = _EPHEMERAL_BASE) -> None:
    """Deprecated shim: rewind the *default* context's port stream.

    Simulated connections now draw from the owning simulator's
    :class:`~repro.netmodel.netctx.NetContext`; reset that instead
    (``sim.net_context.reset()``).
    """
    default_context().reset_ephemeral_ports(base)


@dataclass
class ProbeResult:
    """Everything the client received in reaction to one sent segment."""

    sent: Packet
    sent_bytes: bytes
    received: List[Packet] = field(default_factory=list)
    # How many retransmissions were needed before anything came back
    # (0 = first attempt answered, or silence with no retries left).
    retries_used: int = 0

    @property
    def timed_out(self) -> bool:
        return not self.received


class Connection:
    """One client TCP connection through the simulator."""

    CLIENT_ISN = 42_000

    def __init__(
        self,
        sim: Simulator,
        client: Client,
        dst_ip: str,
        dst_port: int,
        sport: Optional[int] = None,
        engine=None,
    ) -> None:
        self.sim = sim
        self.client = client
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.sport = (
            sport
            if sport is not None
            else sim.net_context.next_ephemeral_port()
        )
        # Optional batched fast path (repro.netsim.batch.BatchEngine):
        # semantically identical to sim.send_from_client, so callers opt
        # in per connection without changing observable behaviour.
        self._engine = engine
        self._send = engine.send if engine is not None else sim.send_from_client
        self.established = False
        self.server_isn: Optional[int] = None
        self._next_seq = self.CLIENT_ISN + 1

    # -- handshake ------------------------------------------------------

    def connect(self, retries: int = 2) -> bool:
        """Perform the three-way handshake at full TTL.

        Returns True when a SYN-ACK came back (retrying to ride out
        simulated loss). A censored or unreachable endpoint leaves the
        connection unestablished.
        """
        for _ in range(retries + 1):
            syn = tcp_packet(
                self.client.ip,
                self.dst_ip,
                self.sport,
                self.dst_port,
                flags=tcpmod.SYN,
                seq=self.CLIENT_ISN,
                ttl=64,
                net=self.sim.net_context,
            )
            responses = self._send(syn)
            for response in responses:
                if (
                    response.is_tcp
                    and response.tcp.flags & tcpmod.SYN
                    and response.tcp.flags & tcpmod.ACK
                ):
                    self.server_isn = response.tcp.seq
                    ack = tcp_packet(
                        self.client.ip,
                        self.dst_ip,
                        self.sport,
                        self.dst_port,
                        flags=tcpmod.ACK,
                        seq=self.CLIENT_ISN + 1,
                        ack=self.server_isn + 1,
                        ttl=64,
                        net=self.sim.net_context,
                    )
                    self._send(ack)
                    self.established = True
                    return True
                if response.is_tcp and response.tcp.flags & tcpmod.RST:
                    return False
        return False

    # -- data -----------------------------------------------------------

    def send_payload(
        self,
        payload: bytes,
        *,
        ttl: int = 64,
        tos: int = 0,
        retries: int = 0,
        retry_wait: float = 0.0,
        retry_backoff: float = 2.0,
    ) -> ProbeResult:
        """Send application ``payload`` on the established connection.

        ``ttl`` is the probe TTL CenTrace manipulates. Retries re-send
        the identical segment (same seq), mimicking TCP retransmission,
        and are only used by callers that treat silence as loss. A
        non-zero ``retry_wait`` advances the virtual clock before each
        retransmission, growing by ``retry_backoff`` per attempt — the
        exponential backoff a real TCP sender applies.
        """
        if not self.established:
            raise RuntimeError("connection not established")
        ack_value = (self.server_isn + 1) if self.server_isn is not None else 0
        probe = tcp_packet(
            self.client.ip,
            self.dst_ip,
            self.sport,
            self.dst_port,
            flags=tcpmod.PSH | tcpmod.ACK,
            seq=self._next_seq,
            ack=ack_value,
            ttl=ttl,
            tos=tos,
            payload=payload,
            net=self.sim.net_context,
        )
        sent_bytes = probe.to_bytes()
        result = ProbeResult(sent=probe, sent_bytes=sent_bytes)
        attempt = 0
        wait = retry_wait
        engine = self._engine
        while True:
            # The already-serialized probe lets the batch engine derive
            # ICMP quotes by patching the TTL byte instead of
            # re-serializing the transport payload.
            if engine is not None:
                received = engine.send(probe, wire_bytes=sent_bytes)
            else:
                received = self.sim.send_from_client(probe)
            result.received.extend(received)
            if received or attempt >= retries:
                break
            if wait > 0:
                self.sim.advance(wait)
                wait *= retry_backoff
            attempt += 1
        result.retries_used = attempt
        return result

    def close(self) -> None:
        """Send a FIN (best-effort; responses are discarded)."""
        if not self.established:
            return
        fin = tcp_packet(
            self.client.ip,
            self.dst_ip,
            self.sport,
            self.dst_port,
            flags=tcpmod.FIN | tcpmod.ACK,
            seq=self._next_seq,
            ack=(self.server_isn + 1) if self.server_isn is not None else 0,
            ttl=64,
            net=self.sim.net_context,
        )
        self._send(fin)
        self.established = False


def open_connection(
    sim: Simulator,
    client: Client,
    dst_ip: str,
    dst_port: int,
    *,
    sport: Optional[int] = None,
    retries: int = 2,
    engine=None,
) -> Optional[Connection]:
    """Open a connection; returns None when the handshake fails.

    ``engine`` routes the connection's sends through the batched fast
    path (:class:`repro.netsim.batch.BatchEngine`) when given.
    """
    conn = Connection(sim, client, dst_ip, dst_port, sport=sport, engine=engine)
    if not conn.connect(retries=retries):
        return None
    return conn
