"""Deterministic fault injection: loss profiles, ICMP rate limiting,
duplication/reordering, path churn and flaky devices.

The paper's tools are engineered around unreliable networks: CenTrace
retries probes up to three times, tolerates ICMP-silent routers and
accounts for drops and ECMP path variance (§4.1). The base simulator
models only a uniform per-hop loss rate, which exercises none of that
machinery. A :class:`FaultPlan` composes richer, *seeded* fault models:

* :class:`LossProfile` — per-link / per-AS loss rates instead of one
  global number (transit ASes in the real measurements lose far more
  than the edge).
* :class:`IcmpRateLimitProfile` — a token bucket per router, so dense
  TTL sweeps see intermittently silent hops exactly the way real
  traceroutes do (most routers rate-limit ICMP error generation).
* :class:`DeliveryFaultProfile` — duplication and reordering of the
  packets delivered back to the client.
* :class:`PathChurnProfile` — mid-measurement ECMP re-hash after N
  packets or T virtual seconds, exercising §4.1's path-variance
  handling ("A Churn for the Better" shows churn mid-measurement is
  the norm, not the exception).
* :class:`FlakyDeviceProfile` — a censorship device that intermittently
  fails open (stops enforcing) or fails closed (drops everything).

Plans are immutable, hashable values (they live inside
:class:`~repro.geo.countries.WorldSpec` and campaign cache keys); all
runtime state — token buckets, churn counters, the fault RNG — lives in
:class:`FaultState`, which the simulator rebuilds on every
``Simulator.reset()`` so the campaign executor's bit-identical-replay
guarantee holds under any plan.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, List, Optional, Tuple

# Device fates rolled by FlakyDeviceProfile.
FATE_INSPECT = "inspect"
FATE_FAIL_OPEN = "fail_open"
FATE_FAIL_CLOSED = "fail_closed"


def _pairs(mapping) -> Tuple[Tuple, ...]:
    """Normalize a dict (or pair sequence) to a sorted, hashable tuple."""
    if isinstance(mapping, dict):
        items = mapping.items()
    else:
        items = tuple(tuple(p) for p in mapping)
    return tuple(sorted((k, v) for k, v in items))


@dataclass(frozen=True)
class LossProfile:
    """Per-link loss rates: a default plus per-AS and per-link overrides.

    The link leading to a node is keyed either by the node's name
    (``link_rates``, most specific) or by its AS number (``as_rates``).
    ``default_rate`` covers everything else, including the final
    delivery link back to the client.

    **Precedence over the simulator's uniform loss:** installing a
    profile *replaces* ``Simulator.loss_rate`` wholesale — the uniform
    rate is NOT added to or mixed with the profile's rates, and a link
    the profile maps to rate 0.0 is lossless even when ``loss_rate``
    is 1.0. This is deliberate: a fault plan describes the complete
    loss behaviour of the path, and its rolls draw from the dedicated
    fault RNG so installing one never perturbs the base RNG stream
    (which golden digests depend on). Callers who want uniform loss on
    top of a profile must fold it into ``default_rate`` themselves.
    """

    default_rate: float = 0.0
    as_rates: Tuple[Tuple[int, float], ...] = ()
    link_rates: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "as_rates", _pairs(self.as_rates))
        object.__setattr__(self, "link_rates", _pairs(self.link_rates))
        # Lookup dicts rebuilt from the canonical tuples (not fields, so
        # equality/hash stay value-based).
        object.__setattr__(self, "_by_as", dict(self.as_rates))
        object.__setattr__(self, "_by_link", dict(self.link_rates))

    def rate_for(self, node) -> float:
        """Loss rate of the link leading to ``node`` (None = client link)."""
        if node is not None:
            name_rate = self._by_link.get(node.name)
            if name_rate is not None:
                return name_rate
            as_rate = self._by_as.get(node.asn)
            if as_rate is not None:
                return as_rate
        return self.default_rate

    def max_rate(self) -> float:
        """The worst single-link loss rate anywhere in the profile."""
        return max(
            [self.default_rate]
            + [r for _, r in self.as_rates]
            + [r for _, r in self.link_rates]
        )


@dataclass(frozen=True)
class IcmpRateLimitProfile:
    """Token-bucket ICMP error generation at every responding router.

    A router holds at most ``capacity`` tokens and regains
    ``refill_rate`` tokens per virtual second; emitting one ICMP error
    (Time Exceeded) costs one token. A dense TTL sweep drains the
    bucket and sees the hop go silent until virtual time passes —
    which is exactly why CenTrace must not treat one silent response
    as a terminating condition.
    """

    capacity: int = 2
    refill_rate: float = 1.0  # tokens per virtual second


@dataclass(frozen=True)
class DeliveryFaultProfile:
    """Duplication and reordering applied to client-bound deliveries."""

    duplicate_rate: float = 0.0  # per delivered packet
    reorder_rate: float = 0.0  # per adjacent pair: swap probability


@dataclass(frozen=True)
class PathChurnProfile:
    """Mid-measurement ECMP re-hash.

    After ``rehash_after_packets`` client sends, or after
    ``rehash_after_seconds`` of virtual time (whichever fires first),
    the flow-hash seed changes: the same 5-tuple may land on a
    different candidate path. This models routing churn *during* a
    measurement, which §4.1's repetition/aggregation logic must absorb.
    """

    rehash_after_packets: Optional[int] = None
    rehash_after_seconds: Optional[float] = None


@dataclass(frozen=True)
class FlakyDeviceProfile:
    """A device that intermittently stops doing its job.

    ``fail_open_rate``: probability (per inspected packet) the device
    passes traffic uninspected — blocked domains leak through.
    ``fail_closed_rate``: probability an in-path device drops the
    packet regardless of policy. ``device_names`` restricts the fault
    to specific devices; empty means every device is flaky.
    """

    fail_open_rate: float = 0.0
    fail_closed_rate: float = 0.0
    device_names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "device_names", tuple(self.device_names))

    def applies_to(self, device) -> bool:
        return not self.device_names or device.name in self.device_names


@dataclass(frozen=True)
class FaultPlan:
    """A composed, seeded set of fault models for one simulator."""

    name: str = "custom"
    loss: Optional[LossProfile] = None
    icmp_rate_limit: Optional[IcmpRateLimitProfile] = None
    delivery: Optional[DeliveryFaultProfile] = None
    churn: Optional[PathChurnProfile] = None
    flaky_devices: Optional[FlakyDeviceProfile] = None

    def is_noop(self) -> bool:
        return (
            self.loss is None
            and self.icmp_rate_limit is None
            and self.delivery is None
            and self.churn is None
            and self.flaky_devices is None
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict:
        out: Dict = {"name": self.name}
        for spec_field, cls in _COMPONENTS.items():
            value = getattr(self, spec_field)
            if value is not None:
                out[spec_field] = {
                    f.name: getattr(value, f.name) for f in fields(cls)
                }
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        kwargs: Dict = {"name": data.get("name", "custom")}
        for spec_field, component_cls in _COMPONENTS.items():
            raw = data.get(spec_field)
            if raw is not None:
                known = {f.name for f in fields(component_cls)}
                unknown = set(raw) - known
                if unknown:
                    raise ValueError(
                        f"unknown {spec_field} fields: {sorted(unknown)}"
                    )
                kwargs[spec_field] = component_cls(**raw)
        return cls(**kwargs)

    @classmethod
    def from_spec(cls, spec: "FaultPlanLike") -> "FaultPlan":
        """Accept a plan, a preset name, inline JSON, or an @file path."""
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, dict):
            return cls.from_dict(spec)
        if not isinstance(spec, str):
            raise TypeError(f"cannot build a FaultPlan from {spec!r}")
        text = spec.strip()
        if text in PRESETS:
            return PRESETS[text]
        if text.startswith("@"):
            return cls.from_dict(json.loads(Path(text[1:]).read_text()))
        if text.startswith("{"):
            return cls.from_dict(json.loads(text))
        raise ValueError(
            f"unknown fault plan {spec!r}; expected one of "
            f"{sorted(PRESETS)}, inline JSON, or @path/to/plan.json"
        )


FaultPlanLike = object  # FaultPlan | str | dict — documentation alias


_COMPONENTS = {
    "loss": LossProfile,
    "icmp_rate_limit": IcmpRateLimitProfile,
    "delivery": DeliveryFaultProfile,
    "churn": PathChurnProfile,
    "flaky_devices": FlakyDeviceProfile,
}


# Named presets — the chaos grid and the CLI's ``--fault-plan`` accept
# these by name. Rates are chosen so the invariant suite's guarantees
# (±1 hop attribution under ≤5% loss) are testable per plan.
PRESETS: Dict[str, FaultPlan] = {
    "none": FaultPlan(name="none"),
    "light": FaultPlan(
        name="light",
        loss=LossProfile(default_rate=0.01),
        icmp_rate_limit=IcmpRateLimitProfile(capacity=8, refill_rate=4.0),
    ),
    "lossy": FaultPlan(name="lossy", loss=LossProfile(default_rate=0.05)),
    "ratelimit": FaultPlan(
        name="ratelimit",
        icmp_rate_limit=IcmpRateLimitProfile(capacity=1, refill_rate=0.5),
    ),
    "churn": FaultPlan(
        name="churn",
        churn=PathChurnProfile(rehash_after_packets=5),
    ),
    "flaky": FaultPlan(
        name="flaky",
        flaky_devices=FlakyDeviceProfile(
            fail_open_rate=0.05, fail_closed_rate=0.02
        ),
    ),
    "duplicate": FaultPlan(
        name="duplicate",
        delivery=DeliveryFaultProfile(duplicate_rate=0.1, reorder_rate=0.1),
    ),
    "chaos": FaultPlan(
        name="chaos",
        loss=LossProfile(default_rate=0.03),
        icmp_rate_limit=IcmpRateLimitProfile(capacity=3, refill_rate=1.0),
        delivery=DeliveryFaultProfile(duplicate_rate=0.05, reorder_rate=0.05),
        churn=PathChurnProfile(rehash_after_packets=40),
        flaky_devices=FlakyDeviceProfile(fail_open_rate=0.02),
    ),
}


@dataclass
class FaultCounters:
    """Ground-truth tallies of injected faults (tests/debugging only)."""

    packets_lost: int = 0
    icmp_suppressed: int = 0
    duplicated: int = 0
    reordered: int = 0
    churn_epochs: int = 0
    fail_open: int = 0
    fail_closed: int = 0


class _TokenBucket:
    """Per-router ICMP budget, refilled by virtual time."""

    __slots__ = ("tokens", "stamp")

    def __init__(self, capacity: float, stamp: float) -> None:
        self.tokens = float(capacity)
        self.stamp = stamp


class FaultState:
    """All mutable runtime state for one (plan, seed) pair.

    The simulator owns exactly one of these (or None); ``reset(seed)``
    restores the just-built state, which is what makes a faulted
    measurement a pure function of (world spec, fault plan, unit seed).
    """

    # Mixed into the seed so the fault RNG never tracks the loss RNG.
    _SEED_SALT = 0x5FAA17C3

    def __init__(self, plan: FaultPlan, seed: int) -> None:
        self.plan = plan
        self.reset(seed)

    def reset(self, seed: int) -> None:
        """Restore just-built state (buckets, churn counters, RNG)."""
        self.seed = seed
        self.rng = random.Random((seed << 1) ^ self._SEED_SALT)
        self._buckets: Dict[str, _TokenBucket] = {}
        self.packets_sent = 0
        self.epoch = 0
        self._epoch_clock_start = 0.0
        self.counters = FaultCounters()

    # -- loss --------------------------------------------------------------

    @property
    def per_link_loss(self) -> bool:
        return self.plan.loss is not None

    def link_lost(self, node) -> bool:
        """Roll loss for the link leading to ``node`` (None = client)."""
        rate = self.plan.loss.rate_for(node)
        if rate <= 0.0:
            return False
        if self.rng.random() < rate:
            self.counters.packets_lost += 1
            return True
        return False

    # -- ICMP rate limiting ------------------------------------------------

    def icmp_suppressed(self, router, clock: float) -> bool:
        """Would ``router`` rate-limit an ICMP error right now?"""
        profile = self.plan.icmp_rate_limit
        if profile is None:
            return False
        bucket = self._buckets.get(router.name)
        if bucket is None:
            bucket = _TokenBucket(profile.capacity, clock)
            self._buckets[router.name] = bucket
        elif clock > bucket.stamp:
            bucket.tokens = min(
                float(profile.capacity),
                bucket.tokens + (clock - bucket.stamp) * profile.refill_rate,
            )
            bucket.stamp = clock
        if bucket.tokens >= 1.0:
            bucket.tokens -= 1.0
            return False
        self.counters.icmp_suppressed += 1
        return True

    # -- path churn --------------------------------------------------------

    def note_client_packet(self, clock: float) -> None:
        """Count a client send; advance the churn epoch when due."""
        churn = self.plan.churn
        if churn is None:
            return
        self.packets_sent += 1
        rehash = False
        if (
            churn.rehash_after_packets is not None
            and self.packets_sent >= churn.rehash_after_packets
        ):
            rehash = True
        if (
            churn.rehash_after_seconds is not None
            and clock - self._epoch_clock_start >= churn.rehash_after_seconds
        ):
            rehash = True
        if rehash:
            self.epoch += 1
            self.packets_sent = 0
            self._epoch_clock_start = clock
            self.counters.churn_epochs += 1

    def path_seed(self, base_seed: int) -> int:
        """The ECMP hash seed for the current churn epoch."""
        if self.epoch == 0:
            return base_seed
        return base_seed + 0x9E3779B1 * self.epoch

    # -- flaky devices -----------------------------------------------------

    def device_fate(self, device) -> str:
        """Roll whether ``device`` inspects, fails open, or fails closed."""
        profile = self.plan.flaky_devices
        if profile is None or not profile.applies_to(device):
            return FATE_INSPECT
        roll = self.rng.random()
        if roll < profile.fail_open_rate:
            self.counters.fail_open += 1
            return FATE_FAIL_OPEN
        if roll < profile.fail_open_rate + profile.fail_closed_rate:
            self.counters.fail_closed += 1
            return FATE_FAIL_CLOSED
        return FATE_INSPECT

    # -- delivery shaping --------------------------------------------------

    def shape_deliveries(self, deliveries: List, clone) -> List:
        """Apply duplication then reordering to client deliveries.

        ``clone`` builds an independent copy of a packet (duplicates
        must not alias — the whole point of the dispatch-boundary fix).
        """
        profile = self.plan.delivery
        if profile is None or not deliveries:
            return deliveries
        shaped = []
        for packet in deliveries:
            shaped.append(packet)
            if (
                profile.duplicate_rate > 0
                and self.rng.random() < profile.duplicate_rate
            ):
                shaped.append(clone(packet))
                self.counters.duplicated += 1
        if profile.reorder_rate > 0 and len(shaped) > 1:
            for i in range(len(shaped) - 1):
                if self.rng.random() < profile.reorder_rate:
                    shaped[i], shaped[i + 1] = shaped[i + 1], shaped[i]
                    self.counters.reordered += 1
        return shaped
