"""Incremental epoch scheduler: longitudinal campaigns with unit reuse.

Continuous platforms (ICLab, Censored Planet) re-measure the same
targets on a cadence, and most measurements come back unchanged — the
interesting output is the *diff*. The :class:`EpochScheduler` runs one
campaign per virtual-time epoch of a drifting world
(:mod:`repro.geo.drift`) and skips re-simulating any work unit that the
epoch's drift provably cannot have changed, reusing the serialized
result from a persistent :class:`~repro.persist.UnitCache` instead.

The **reuse contract** rests on two established invariants plus one
route argument:

1. A unit's result is a pure function of (world spec, unit content) —
   :func:`~repro.experiments.executor.prepare_unit` resets all
   cross-measurement state, which is what already makes serial,
   parallel and service execution byte-identical.
2. A unit's packets traverse only the paths of its (client, endpoint)
   route: forward walks, reverse walks and injection walks all resolve
   the same :class:`~repro.netsim.routing.Route`. Drift ops mutate only
   named devices and AS registry entries, so an op whose target is not
   on any of those paths (and not the endpoint's or client's AS) cannot
   alter the unit's bytes.
3. Therefore the cache key = hash(base world identity, unit content,
   the drift ops that *can* touch the unit). Unaffected units hash the
   same in every epoch and hit; affected units' keys change exactly
   when a new op lands on their route.

The cache itself is append-only JSONL (``units.jsonl``), so the reuse
survives process restarts — the PR 7 service-cache-persistence headroom
item, shared with :class:`~repro.service.queue.CampaignService`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.cenprobe import CenProbe
from ..geo.countries import StudyWorld, build_world
from ..geo.drift import DriftPlan, ops_touching, unit_touchpoints
from ..persist import (
    UnitCache,
    unit_cache_key,
    unit_result_from_dict,
    unit_result_to_dict,
)
from ..telemetry import NULL_TELEMETRY
from .campaign import (
    CampaignConfig,
    CountryCampaign,
    fuzz_targets_for,
    trace_units_for,
)
from .executor import (
    VANTAGE_REMOTE,
    CampaignExecutor,
    FuzzUnit,
    unit_work_key,
)


@dataclass
class EpochResult:
    """One epoch's campaign plus its reuse accounting."""

    epoch: int
    campaign: CountryCampaign
    reused_trace_units: int = 0
    executed_trace_units: int = 0
    reused_fuzz_units: int = 0
    executed_fuzz_units: int = 0
    drift_ops_applied: int = 0

    @property
    def total_units(self) -> int:
        return (
            self.reused_trace_units
            + self.executed_trace_units
            + self.reused_fuzz_units
            + self.executed_fuzz_units
        )

    @property
    def reused_units(self) -> int:
        return self.reused_trace_units + self.reused_fuzz_units

    @property
    def reuse_rate(self) -> float:
        total = self.total_units
        return self.reused_units / total if total else 0.0


class EpochScheduler:
    """Runs a campaign per epoch, reusing drift-unaffected work units.

    ``cache=None`` disables reuse (every epoch runs in full, useful for
    ground-truth comparisons); passing a :class:`~repro.persist.UnitCache`
    enables it, persistently. Probes (CenProbe banner grabs) always run
    live: they read only static topology, cost no simulation, and the
    fact extractor wants current-epoch vendor answers.
    """

    def __init__(
        self,
        country: str,
        *,
        seed: Optional[int] = None,
        scale: Optional[float] = None,
        config: Optional[CampaignConfig] = None,
        drift_plan: Optional[DriftPlan] = None,
        cache: Optional[UnitCache] = None,
        workers: Optional[int] = None,
        telemetry=NULL_TELEMETRY,
    ) -> None:
        self.country = country
        self.seed = seed
        self.scale = scale
        self.config = config or CampaignConfig()
        self.drift_plan = drift_plan
        self.cache = cache
        self.workers = workers
        self.telemetry = telemetry
        # The world-identity prefix every unit key shares: everything
        # that changes *all* results when it changes. Epoch is absent by
        # design — that is the whole reuse mechanism.
        fault_plan = self.config.fault_plan
        self._base_identity = [
            country.upper(),
            seed,
            scale,
            fault_plan.to_dict() if fault_plan is not None else None,
        ]

    # -- world/epoch plumbing -------------------------------------------

    def build_epoch_world(self, epoch: int) -> StudyWorld:
        return build_world(
            self.country,
            seed=self.seed,
            scale=self.scale,
            fault_plan=self.config.fault_plan,
            drift_plan=self.drift_plan,
            epoch=epoch,
        )

    def _unit_key(
        self, world: StudyWorld, kind: str, unit, live_ops
    ) -> str:
        client = (
            world.remote_client
            if getattr(unit, "vantage", VANTAGE_REMOTE) == VANTAGE_REMOTE
            else world.in_country_client
        )
        device_names, asns = unit_touchpoints(
            world, client.ip, unit.endpoint_ip
        )
        touching = ops_touching(live_ops, device_names, asns)
        return unit_cache_key(
            self._base_identity,
            unit_work_key(kind, unit, self.config.repetitions),
            [op.to_dict() for op in touching],
        )

    # -- cached unit execution ------------------------------------------

    def _run_cached(
        self,
        executor: CampaignExecutor,
        kind: str,
        units: Sequence,
        world: StudyWorld,
        live_ops,
    ) -> Tuple[List, int, int]:
        """Run ``units`` through the cache: (results, reused, executed).

        Misses execute as one batch in canonical order (input order is
        preserved by the executor), then interleave back into their
        original slots — so the merged list is byte-identical to a full
        run, which only works because every unit is independent
        (:func:`prepare_unit` even keeps results stable under
        subsetting).
        """
        results: List = [None] * len(units)
        keys = [self._unit_key(world, kind, unit, live_ops) for unit in units]
        miss_indices: List[int] = []
        for index, key in enumerate(keys):
            entry = self.cache.get(key) if self.cache is not None else None
            if entry is not None and entry["kind"] == kind:
                results[index] = unit_result_from_dict(kind, entry["payload"])
            else:
                miss_indices.append(index)
        miss_units = [units[i] for i in miss_indices]
        if kind == "trace":
            fresh = executor.run_traces(miss_units)
        else:
            fresh = executor.run_fuzz(miss_units)
        for index, result in zip(miss_indices, fresh):
            results[index] = result
            if self.cache is not None:
                self.cache.put(
                    keys[index], kind, unit_result_to_dict(kind, result)
                )
        reused = len(units) - len(miss_indices)
        self.telemetry.count(f"store.units_reused.{kind}", reused)
        self.telemetry.count(f"store.units_executed.{kind}", len(miss_units))
        return results, reused, len(miss_indices)

    # -- epochs ----------------------------------------------------------

    def run_epoch(self, epoch: int) -> EpochResult:
        """Measure the world as of ``epoch``, reusing what drift spared."""
        config = self.config
        world = self.build_epoch_world(epoch)
        live_ops = (
            self.drift_plan.ops_at(epoch) if self.drift_plan is not None else ()
        )
        campaign = CountryCampaign(
            world=world, config=config, workers=self.workers
        )
        result = EpochResult(
            epoch=epoch, campaign=campaign, drift_ops_applied=len(live_ops)
        )

        units = trace_units_for(world, config)
        n_remote = sum(1 for u in units if u.vantage == VANTAGE_REMOTE)
        with CampaignExecutor(
            world,
            repetitions=config.repetitions,
            workers=self.workers,
            telemetry=self.telemetry,
        ) as executor:
            traces, reused, executed = self._run_cached(
                executor, "trace", units, world, live_ops
            )
            result.reused_trace_units = reused
            result.executed_trace_units = executed
            campaign.remote_results = traces[:n_remote]
            campaign.in_country_results = traces[n_remote:]

            if config.run_probe:
                prober = CenProbe(world.topology, telemetry=self.telemetry)
                for ip in campaign.potential_device_ips():
                    campaign.probe_reports[ip] = prober.scan(ip)

            if config.run_fuzz:
                targets = fuzz_targets_for(campaign, config)
                fuzz_units = [FuzzUnit(*target) for target in targets]
                reports, reused, executed = self._run_cached(
                    executor, "fuzz", fuzz_units, world, live_ops
                )
                result.reused_fuzz_units = reused
                result.executed_fuzz_units = executed
                campaign.fuzz_reports = reports

        self.telemetry.count("store.epochs_run")
        return result

    def run(self, epochs: int) -> List[EpochResult]:
        """Run epochs ``0 .. epochs-1`` in order."""
        return [self.run_epoch(epoch) for epoch in range(epochs)]
