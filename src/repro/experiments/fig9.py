"""Figure 9: random-forest (MDI) feature importance.

§7.2 trains a random-forest on the labeled blockpage case-study
devices (§5.2) — 3 repetitions of 5-fold CV — and ranks the Table-3
features by mean decrease in impurity. The paper's headline: the type
of terminating response ("CensorResponse") is the most indicative
feature, followed by several CenFuzz strategy features and the
injected-packet TTL.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.cluster import rank_features
from ..geo.countries import build_blockpage_study_world
from .base import ExperimentResult
from .campaign import CampaignConfig, run_campaign

PAPER_FIG9 = {
    "top_feature": "CensorResponse",
    "notable_features": [
        "Hostname Alt.",
        "Hostname Pad.",
        "SNI Alt.",
        "SNI Pad.",
        "Path Alt.",
        "InjectedIPTTL",
    ],
    "cv_folds": 5,
    "cv_repeats": 3,
}

_CAMPAIGN_CACHE = {}


def blockpage_campaign(scale: float = 1.0, seed: Optional[int] = None):
    """The §5.2 case-study campaign (cached; used by fig9 and sec53)."""
    key = (scale, seed)
    if key not in _CAMPAIGN_CACHE:
        world = build_blockpage_study_world(
            **({"seed": seed} if seed is not None else {}), scale=scale
        )
        _CAMPAIGN_CACHE[key] = run_campaign(
            world, CampaignConfig(repetitions=3, fuzz_all_blocked=True)
        )
    return _CAMPAIGN_CACHE[key]


def run(*, scale: float = 1.0, seed: Optional[int] = None) -> ExperimentResult:
    campaign = blockpage_campaign(scale=scale, seed=seed)
    features = campaign.endpoint_features()
    importance = rank_features(features, folds=5, repeats=3)
    result = ExperimentResult(
        experiment_id="fig9",
        title="Importance of device features, random-forest MDI (Figure 9)",
        headers=["Rank", "Feature", "MDI"],
        paper_reference=PAPER_FIG9,
    )
    for rank, (name, mdi) in enumerate(importance.ranked(), start=1):
        result.rows.append((rank, name, f"{mdi:.4f}"))
    result.extra["cv_accuracy"] = importance.cv.mean_accuracy
    result.extra["labeled_devices"] = sum(1 for f in features if f.label)
    result.extra["importance"] = importance
    result.notes.append(
        f"labeled devices: {result.extra['labeled_devices']};"
        f" CV accuracy {importance.cv.mean_accuracy:.2f}"
        f" over 3x5-fold; top feature: {importance.ranked()[0][0]}"
        " (paper: CensorResponse)"
    )
    return result
