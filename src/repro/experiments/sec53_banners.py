"""§5.3: device banners — case-study validation and vendor inventory.

Two parts, exactly as the paper structures them:

1. **Blockpage case study** — against the §5.2 world (endpoints with
   known blockpage injection), banner labels are validated against
   blockpage labels. Paper: 87.32% of potential device IPs expose at
   least one service; 38.71% of those show explicit firewall software;
   every banner label matches the blockpage label.
2. **Four-country inventory** — banner grabs on the in-path device IPs
   found in AZ/BY/KZ/RU. Paper: 163 potential device IPs, 41.72% with
   at least one open management port, and 19 explicitly-labeled
   devices: Cisco 7, Fortinet 5 (+4 blockpage-only), Kerio 2, Palo
   Alto 2, DDoSGuard 1, Mikrotik 1, Kaspersky 1.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Sequence

from ..core.blockpages import DEFAULT_MATCHER
from ..core.cenprobe import CenProbe
from ..geo.countries import COUNTRIES
from .base import ExperimentResult, percent
from .campaign import CountryCampaign, get_campaign
from .fig9 import blockpage_campaign

PAPER_SEC53 = {
    "case_study_service_pct": 87.32,
    "case_study_firewall_label_pct": 38.71,
    "labels_match_blockpages": True,
    "four_country_device_ips": 163,
    "four_country_open_port_pct": 41.72,
    "vendor_counts": {
        "Cisco": 7,
        "Fortinet": 5,
        "Kerio Control": 2,
        "Palo Alto": 2,
        "DDoS-Guard": 1,
        "Mikrotik": 1,
        "Kaspersky": 1,
    },
}


def run(
    countries: Sequence[str] = COUNTRIES,
    *,
    scale: Optional[float] = None,
    repetitions: int = 3,
    campaigns: Optional[Dict[str, CountryCampaign]] = None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="sec53_banners",
        title="Device banners: case study + vendor inventory (§5.3)",
        headers=["Metric", "Measured", "Paper"],
        paper_reference=PAPER_SEC53,
    )

    # -- Part 1: blockpage case study --------------------------------------
    case = blockpage_campaign()
    device_ips = case.potential_device_ips()
    prober = CenProbe(case.world.topology)
    reports = {ip: prober.scan(ip) for ip in device_ips}
    with_services = [r for r in reports.values() if r.has_services]
    labeled = [r for r in with_services if r.labeled_filtering]
    service_pct = percent(len(with_services), len(reports))
    label_pct = percent(len(labeled), len(with_services))
    result.rows.append(
        ("case-study device IPs", len(reports), 71)
    )
    result.rows.append(
        ("case-study % with >=1 service", f"{service_pct:.1f}", 87.32)
    )
    result.rows.append(
        ("case-study % firewall-labeled (of served)", f"{label_pct:.1f}", 38.71)
    )

    # Validate banner labels against blockpage labels.
    blockpage_label: Dict[str, str] = {}
    for trace in case.blocked_all():
        if trace.blockpage_fingerprint and trace.blocking_hop and trace.blocking_hop.ip:
            fingerprint = next(
                (
                    f
                    for f in DEFAULT_MATCHER.fingerprints
                    if f.name == trace.blockpage_fingerprint
                ),
                None,
            )
            if fingerprint and fingerprint.vendor:
                blockpage_label[trace.blocking_hop.ip] = fingerprint.vendor
    matches, mismatches = 0, 0
    for ip, report in reports.items():
        if report.vendor and ip in blockpage_label:
            if report.vendor == blockpage_label[ip]:
                matches += 1
            else:
                mismatches += 1
    result.rows.append(("banner/blockpage label matches", matches, "all"))
    result.rows.append(("banner/blockpage label mismatches", mismatches, 0))
    result.extra["case_service_pct"] = service_pct
    result.extra["case_label_pct"] = label_pct
    result.extra["label_mismatches"] = mismatches

    # -- Part 2: four-country inventory -------------------------------------
    vendor_counts: Counter = Counter()
    total_ips = 0
    open_port_ips = 0
    for country in countries:
        campaign = (
            campaigns[country]
            if campaigns is not None
            else get_campaign(country, scale=scale, repetitions=repetitions)
        )
        for ip, report in campaign.probe_reports.items():
            total_ips += 1
            if report.has_services:
                open_port_ips += 1
            if report.vendor:
                vendor_counts[report.vendor] += 1
    result.rows.append(("4-country potential device IPs", total_ips, 163))
    result.rows.append(
        (
            "4-country % with open ports",
            f"{percent(open_port_ips, total_ips):.1f}",
            41.72,
        )
    )
    for vendor, paper_count in PAPER_SEC53["vendor_counts"].items():
        result.rows.append(
            (f"vendor: {vendor}", vendor_counts.get(vendor, 0), paper_count)
        )
    result.extra["vendor_counts"] = dict(vendor_counts)
    result.extra["open_port_pct"] = percent(open_port_ips, total_ips)
    return result
