"""Figure 4: in-path vs on-path devices and hop distance to endpoint.

Paper findings reproduced:

* AZ and KZ devices are exclusively in-path (droppers); BY devices are
  mostly on-path RST injectors; RU mixes both.
* More than 35% of remote blocking happens one or two hops away from
  the endpoint; AZ blocks far from endpoints (country ingress).
"""

from __future__ import annotations

from collections import Counter
from statistics import median
from typing import Dict, Optional, Sequence

from ..geo.countries import COUNTRIES
from .base import ExperimentResult, percent
from .campaign import CountryCampaign, get_campaign

PAPER_FIG4 = {
    "az_kz_exclusively_in_path": True,
    "by_mostly_on_path": True,
    "blocking_within_2_hops_of_endpoint_pct": ">35",
}


def run(
    countries: Sequence[str] = COUNTRIES,
    *,
    scale: Optional[float] = None,
    repetitions: int = 3,
    campaigns: Optional[Dict[str, CountryCampaign]] = None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig4",
        title="In-path vs on-path devices; hops from endpoint (Figure 4)",
        headers=[
            "Co.",
            "InPath",
            "OnPath",
            "Undetermined",
            "MedianHopsFromE",
            "MaxHopsFromE",
            "Within2HopsPct",
        ],
        paper_reference=PAPER_FIG4,
    )
    near_endpoint_total = 0
    blocked_total = 0
    for country in countries:
        campaign = (
            campaigns[country]
            if campaigns is not None
            else get_campaign(country, scale=scale, repetitions=repetitions)
        )
        blocked = [
            r for r in campaign.blocked_remote() if r.location_class is not None
        ]
        in_path = sum(1 for r in blocked if r.in_path is True)
        on_path = sum(1 for r in blocked if r.in_path is False)
        unknown = sum(1 for r in blocked if r.in_path is None)
        hop_distances = [
            r.hops_from_endpoint
            for r in blocked
            if r.hops_from_endpoint is not None
        ]
        near = sum(1 for d in hop_distances if d <= 2)
        near_endpoint_total += near
        blocked_total += len(hop_distances)
        result.rows.append(
            (
                country,
                in_path,
                on_path,
                unknown,
                f"{median(hop_distances):.0f}" if hop_distances else "-",
                max(hop_distances) if hop_distances else "-",
                f"{percent(near, len(hop_distances)):.1f}",
            )
        )
    result.extra["within_2_hops_pct"] = percent(near_endpoint_total, blocked_total)
    result.notes.append(
        f"overall, {result.extra['within_2_hops_pct']:.1f}% of blocking"
        " is within 2 hops of the endpoint (paper: >35% within 1-2 hops)"
    )
    result.extra["hop_histogram"] = _hop_histogram(countries, campaigns, scale, repetitions)
    return result


def _hop_histogram(countries, campaigns, scale, repetitions) -> Dict[str, Counter]:
    histogram: Dict[str, Counter] = {}
    for country in countries:
        campaign = (
            campaigns[country]
            if campaigns is not None
            else get_campaign(country, scale=scale, repetitions=repetitions)
        )
        histogram[country] = Counter(
            r.hops_from_endpoint
            for r in campaign.blocked_remote()
            if r.hops_from_endpoint is not None
        )
    return histogram
