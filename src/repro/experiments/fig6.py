"""Figure 6: DBSCAN clusters of endpoints in AZ, BY, KZ and RU.

§7.3 clusters every blocked endpoint on the top-10 features (ranked by
the Figure-9 forest), with DBSCAN at ε=1.2. The paper finds that 69% of
endpoints fall in clusters dominated by a single country (censorship is
configured per AS/country), while a few clusters span countries —
likely the same vendor.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence

from ..analysis.cluster import cluster_endpoints, rank_features
from ..analysis.features import EndpointFeatures
from ..geo.countries import COUNTRIES
from .base import ExperimentResult, percent
from .campaign import CountryCampaign, get_campaign
from .fig9 import blockpage_campaign

PAPER_FIG6 = {
    "same_country_cluster_pct": 69.0,
    "cross_country_clusters_exist": True,
    "eps": 1.2,
}


def run(
    countries: Sequence[str] = COUNTRIES,
    *,
    scale: Optional[float] = None,
    repetitions: int = 3,
    eps: float = 1.2,
    campaigns: Optional[Dict[str, CountryCampaign]] = None,
) -> ExperimentResult:
    features: List[EndpointFeatures] = []
    for country in countries:
        campaign = (
            campaigns[country]
            if campaigns is not None
            else get_campaign(country, scale=scale, repetitions=repetitions)
        )
        features.extend(campaign.endpoint_features())

    # Feature importance comes from the labeled case-study data (§7.2),
    # then the four-country endpoints are clustered on the top 10.
    labeled_features = blockpage_campaign().endpoint_features()
    importance = rank_features(labeled_features)
    report = cluster_endpoints(
        features, eps=eps, importance=importance, top_features=10
    )

    result = ExperimentResult(
        experiment_id="fig6",
        title="Clusters of endpoints (Figure 6)",
        headers=["Cluster"] + [c for c in countries] + ["Size"],
        paper_reference=PAPER_FIG6,
    )
    same_country = 0
    total = 0
    cross_country_clusters = []
    for cluster, composition in report.composition():
        counts = [composition.get(c, 0) for c in countries]
        size = sum(composition.values())
        label = "noise" if cluster == -1 else str(cluster)
        result.rows.append((label, *counts, size))
        if cluster == -1:
            continue
        total += size
        dominant = max(composition.values())
        same_country += dominant
        if len([c for c in composition.values() if c > 0]) > 1:
            cross_country_clusters.append(cluster)
    result.extra["same_country_pct"] = percent(same_country, total)
    result.extra["cross_country_clusters"] = cross_country_clusters
    result.extra["n_clusters"] = report.result.n_clusters
    result.extra["report"] = report
    result.notes.append(
        f"{report.result.n_clusters} clusters;"
        f" {result.extra['same_country_pct']:.0f}% of clustered endpoints"
        " sit in their cluster's dominant country (paper: 69%);"
        f" cross-country clusters: {cross_country_clusters} (paper: e.g."
        " clusters 3, 5, 6, 15)"
    )
    return result
