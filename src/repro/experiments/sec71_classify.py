"""§7.1's classification payoff: predicting vendors for unlabeled devices.

"For these labeled devices, we can then generate a fingerprint ...
we can then classify the vendors [of] devices that do not inject
blockpages, or do not explicitly display [their] vendor in banner
responses."

Two evaluations:

1. **Held-out validation** — one labeled device per vendor is hidden
   from training; the classifier must re-identify it from censorship
   features alone.
2. **Unlabeled prediction audit** — every unlabeled blocked endpoint is
   classified; simulator ground truth (inaccessible to the classifier)
   grades each confident prediction as correct, a mis-attribution, or a
   prediction about a genuinely unlabeled national system (where *any*
   confident commercial-vendor attribution is a false positive).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.vendor_classifier import VendorClassifier, classify_unlabeled
from ..geo.countries import COUNTRIES
from .base import ExperimentResult, percent
from .campaign import CountryCampaign, get_campaign

PAPER_SEC71 = {
    "claim": "network and censorship features fingerprint vendors",
    "labels_from": ["blockpages", "banners"],
}

CONFIDENCE_THRESHOLD = 0.6


def _ground_truth_vendor(campaign: CountryCampaign, endpoint_ip: str) -> Optional[str]:
    """The actual vendor of the device blocking ``endpoint_ip`` (tests/
    audit only — the measurement pipeline never reads this)."""
    host_to_device = {
        ip: name for name, ip in campaign.world.device_host_ip.items()
    }
    devices = {d.name: d for d in campaign.world.devices}
    for result in campaign.blocked_remote():
        if result.endpoint_ip != endpoint_ip:
            continue
        hop = result.blocking_hop
        if hop and hop.ip in host_to_device:
            device = devices[host_to_device[hop.ip]]
            return device.vendor
    return None


def run(
    countries: Sequence[str] = COUNTRIES,
    *,
    scale: Optional[float] = None,
    repetitions: int = 3,
    campaigns: Optional[Dict[str, CountryCampaign]] = None,
) -> ExperimentResult:
    features = []
    truth: Dict[str, Optional[str]] = {}
    for country in countries:
        campaign = (
            campaigns[country]
            if campaigns is not None
            else get_campaign(country, scale=scale, repetitions=repetitions)
        )
        for feature in campaign.endpoint_features():
            features.append(feature)
            truth[feature.endpoint_ip] = _ground_truth_vendor(
                campaign, feature.endpoint_ip
            )

    result = ExperimentResult(
        experiment_id="sec71_classify",
        title="Classifying vendors of unlabeled devices (§7.1)",
        headers=["Metric", "Value"],
        paper_reference=PAPER_SEC71,
    )

    # -- Part 1: held-out validation ---------------------------------------
    labeled = [f for f in features if f.label]
    by_vendor: Dict[str, List] = {}
    for feature in labeled:
        by_vendor.setdefault(feature.label, []).append(feature)
    held_out, training = [], []
    for vendor, members in by_vendor.items():
        if len(members) >= 2:
            held_out.append(members[0])
            training.extend(members[1:])
        else:
            training.extend(members)
    correct = 0
    if held_out and len({f.label for f in training}) >= 2:
        classifier = VendorClassifier(n_estimators=30, seed=1).fit(training)
        predictions = classifier.predict(held_out)
        correct = sum(
            1
            for feature, prediction in zip(held_out, predictions)
            if feature.label == prediction.vendor
        )
    result.rows.append(("labeled devices", len(labeled)))
    result.rows.append(("held-out devices", len(held_out)))
    result.rows.append(
        (
            "held-out re-identified",
            f"{correct}/{len(held_out)}" if held_out else "-",
        )
    )
    result.extra["held_out_accuracy"] = (
        correct / len(held_out) if held_out else None
    )

    # -- Part 2: unlabeled prediction audit ----------------------------------
    report = classify_unlabeled(features, seed=1)
    confident = report.confident(CONFIDENCE_THRESHOLD)
    graded = {"correct": 0, "misattributed": 0, "national_system": 0}
    for prediction in confident:
        actual = truth.get(prediction.endpoint_ip)
        if actual is None:
            graded["national_system"] += 1
        elif actual == prediction.vendor:
            graded["correct"] += 1
        else:
            graded["misattributed"] += 1
    result.rows.append(("unlabeled endpoints", len(report.predictions)))
    result.rows.append(
        (f"confident predictions (>= {CONFIDENCE_THRESHOLD})", len(confident))
    )
    result.rows.append(("  correct (vs ground truth)", graded["correct"]))
    result.rows.append(("  misattributed commercial", graded["misattributed"]))
    result.rows.append(
        ("  attributed-but-national-system", graded["national_system"])
    )
    # Vote-share distribution: how close the forest comes to attributing
    # the national systems (it shouldn't — they match no trained vendor).
    for threshold in (0.4, 0.5, 0.8):
        count = len(report.confident(threshold))
        result.rows.append((f"predictions with vote share >= {threshold}", count))
    result.extra["graded"] = graded
    result.extra["report"] = report
    result.notes.append(
        "confident attributions of national (vendorless) systems are the"
        " fingerprinting false positives the paper warns about when it"
        " says stronger provenance claims 'require considerable manual"
        " work' (§5.2 limitations)"
    )
    return result
