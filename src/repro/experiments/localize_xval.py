"""Cross-validation of localization methods against ground truth.

Builds a family of *placement worlds* — one ECMP-diverse topology per
possible device position — runs every localizer on each, and scores the
claims against the simulator's ground-truth placement:

* **exact-link hit rate** — the true link is in the claimed set;
* **hop-interval error** — the worst link-index distance between any
  claimed link and the truth (the "±1 link" acceptance metric);
* **disagreement matrix** — per method pair, how often their claims
  overlap on the same target.

The placement topology is a double diamond: a shared ingress, two
two-hop branches plus a cross-link path per branch, a shared rejoin,
and a per-endpoint tail. Four candidate paths per endpoint give churn
tomography enough link-set diversity to isolate any single link; every
link that can host a device is swept as its own world.

    client - i0 <  a1 - a2 \\            / t1 - ep1
                 \\ a1 - m   >- j0 - - <
                 \\ b1 - b2 /            \\ t2 - ep2
                 \\ b1 - n /

Tomography and inconsistency localize from plain outcome evidence
(:func:`repro.localize.collect_outcome_evidence`, no TTL ladder);
the TTL method runs a real CenTrace measurement on the same world
after a unit-style state reset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..devices.vendors import BY_DPI
from ..geo.countries import StudyWorld, WorldBuilder
from ..localize import (
    InconsistencyLocalizer,
    LocalizationVerdict,
    METHOD_INCONSISTENCY,
    METHOD_TOMOGRAPHY,
    METHOD_TTL,
    PathEvidence,
    TomographyLocalizer,
    TtlLocalizer,
    collect_outcome_evidence,
    evidence_from_trace,
)
from ..localize.evidence import Link
from ..netsim.faults import FaultPlan
from ..netsim.routing import Hop, Path, Route
from ..telemetry import NULL_TELEMETRY

#: The one domain the swept device blocks; endpoints serve it plus the
#: control domain so CenTrace's control sweeps stay valid.
TOMO_DOMAIN = "tomo-blocked.example"
TOMO_CONTROL_DOMAIN = "www.example.com"
TOMO_COUNTRY = "XX"


def tomography_world(placement: str, *, seed: int = 11) -> StudyWorld:
    """Build the placement topology with the device on link ``placement``.

    ``placement`` is a role label from :func:`placement_labels`
    (``"i0>a1"`` etc.); ground truth lands in ``world.notes``:
    ``placement``, ``true_link`` (actual node-name pair) and
    ``true_index`` (0-based link index on the hosting path).
    """
    builder = WorldBuilder(f"tomo-{placement}", TOMO_COUNTRY, seed)
    remote_asn = builder.register_as(64496, "RemoteNet", "US")
    transit_asn = builder.register_as(64500, "TransitNet", TOMO_COUNTRY)
    isp_asn = builder.register_as(64510, "IspNet", TOMO_COUNTRY)
    client = builder.client(remote_asn, "US", in_country=False)
    roles = {"client": client}
    for role in ("i0", "a1", "a2", "b1", "b2", "m", "n", "j0"):
        roles[role] = builder.router(transit_asn)
    for role in ("t1", "t2"):
        roles[role] = builder.router(isp_asn)
    domains = [TOMO_DOMAIN, TOMO_CONTROL_DOMAIN]
    endpoints = [
        builder.endpoint(isp_asn, TOMO_COUNTRY, domains) for _ in range(2)
    ]
    roles["ep1"], roles["ep2"] = endpoints

    from_role, to_role = placement.split(">")
    device = builder.place_device(
        BY_DPI,
        [TOMO_DOMAIN],
        # Banner/ground-truth host: the router the device's link leads
        # into (for the final link, the one it hangs off).
        roles[to_role] if to_role in ("i0", "a1", "a2", "b1", "b2", "m", "n", "j0", "t1", "t2") else roles[from_role],
        url_scope=False,
    )
    true_link = (roles[from_role].name, roles[to_role].name)

    branches = (("a1", "a2"), ("a1", "m"), ("b1", "b2"), ("b1", "n"))
    true_index = None
    for endpoint, tail in zip(endpoints, ("t1", "t2")):
        paths = []
        for branch in branches:
            role_seq = ("i0",) + branch + ("j0", tail)
            node_names = [roles[r].name for r in role_seq] + [endpoint.name]
            hops = []
            previous = client.name
            for index, name in enumerate(node_names):
                on_link = [device] if (previous, name) == true_link else []
                if on_link and true_index is None:
                    true_index = index
                hops.append(Hop(name, link_devices=on_link))
                previous = name
            paths.append(Path(hops))
        builder.topology.add_route(client.ip, endpoint.ip, Route(paths))
    if true_index is None:
        raise ValueError(f"placement {placement!r} is on no route link")

    world = builder.finish(
        remote_client=client,
        endpoints=endpoints,
        test_domains=[TOMO_DOMAIN],
        seed=seed,
        loss_rate=0.0,
        control_domain=TOMO_CONTROL_DOMAIN,
        notes={
            "placement": placement,
            "true_link": true_link,
            "true_index": true_index,
            "device": device.name,
        },
    )
    # Churn is the tomography *signal*: the ECMP seed re-hashes every 5
    # client packets, so repeated probes sample the candidate paths.
    world.sim.set_fault_plan(FaultPlan.from_spec("churn"))
    return world


def placement_labels() -> List[str]:
    """Every device-hostable link of the placement topology."""
    return [
        "client>i0",
        "i0>a1",
        "a1>a2",
        "a2>j0",
        "a1>m",
        "m>j0",
        "i0>b1",
        "b1>b2",
        "b2>j0",
        "b1>n",
        "n>j0",
        "j0>t1",
        "t1>ep1",
        "j0>t2",
        "t2>ep2",
    ]


def link_index_map(world: StudyWorld) -> Dict[Link, int]:
    """Each route link's 0-based distance from the client (first wins)."""
    positions: Dict[Link, int] = {}
    client = world.remote_client
    for endpoint in world.endpoints:
        route = world.topology.route_between(client.ip, endpoint.ip)
        for path, _ in route.enumerate_paths():
            for index, link in enumerate(path.links(client.name)):
                positions.setdefault(link, index)
    return positions


@dataclass
class PlacementScore:
    """One (placement, method) row of the cross-validation table."""

    placement: str
    method: str
    true_index: int
    verdicts: int  # verdicts the method produced for this world
    exact_hit: bool  # true link inside every verdict's claim
    error: Optional[int]  # worst |claimed index - true index|; None = silent
    interval_width: int  # widest claimed link set
    confidence: float  # lowest confidence across verdicts

    def within(self, tolerance: int) -> bool:
        return self.error is not None and self.error <= tolerance


@dataclass
class XvalReport:
    """The full cross-validation result across placements and methods."""

    seed: int
    rounds: int
    probes_per_round: int
    tolerance: int
    rows: List[PlacementScore] = field(default_factory=list)
    # method-pair agreement: "ttl|tomography" -> (agreeing, comparable)
    agreement: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    # Raw material for persist.save_localization: every verdict and
    # every evidence record the sweep produced (not serialized by
    # to_dict — the score table is the report, these are the data).
    verdicts: List[LocalizationVerdict] = field(default_factory=list)
    evidence: List[PathEvidence] = field(default_factory=list)

    def methods(self) -> List[str]:
        seen: List[str] = []
        for row in self.rows:
            if row.method not in seen:
                seen.append(row.method)
        return seen

    def accuracy(self, method: str) -> float:
        """Fraction of placements localized within ``tolerance`` links."""
        rows = [r for r in self.rows if r.method == method]
        if not rows:
            return 0.0
        return sum(1 for r in rows if r.within(self.tolerance)) / len(rows)

    def exact_hit_rate(self, method: str) -> float:
        rows = [r for r in self.rows if r.method == method]
        if not rows:
            return 0.0
        return sum(1 for r in rows if r.exact_hit) / len(rows)

    def mean_interval_width(self, method: str) -> float:
        rows = [r for r in self.rows if r.method == method and r.verdicts]
        if not rows:
            return 0.0
        return sum(r.interval_width for r in rows) / len(rows)

    def agreement_rate(self, method_a: str, method_b: str) -> float:
        key = "|".join(sorted((method_a, method_b)))
        agreeing, comparable = self.agreement.get(key, (0, 0))
        return agreeing / comparable if comparable else 0.0

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "rounds": self.rounds,
            "probes_per_round": self.probes_per_round,
            "tolerance": self.tolerance,
            "methods": {
                method: {
                    "accuracy": self.accuracy(method),
                    "exact_hit_rate": self.exact_hit_rate(method),
                    "mean_interval_width": self.mean_interval_width(method),
                }
                for method in self.methods()
            },
            "agreement": {
                key: {"agreeing": a, "comparable": c}
                for key, (a, c) in sorted(self.agreement.items())
            },
            "rows": [
                {
                    "placement": r.placement,
                    "method": r.method,
                    "true_index": r.true_index,
                    "verdicts": r.verdicts,
                    "exact_hit": r.exact_hit,
                    "error": r.error,
                    "interval_width": r.interval_width,
                    "confidence": r.confidence,
                }
                for r in self.rows
            ],
        }

    def render(self) -> str:
        placements = {r.placement for r in self.rows}
        lines = [
            f"localization cross-validation — {len(placements)} "
            f"placements, tolerance ±{self.tolerance} link(s)"
        ]
        for method in self.methods():
            lines.append(
                f"  {method:<14} accuracy={self.accuracy(method):.0%} "
                f"exact={self.exact_hit_rate(method):.0%} "
                f"mean_width={self.mean_interval_width(method):.1f}"
            )
        for key, (agreeing, comparable) in sorted(self.agreement.items()):
            lines.append(
                f"  agreement {key}: {agreeing}/{comparable}"
            )
        return "\n".join(lines)


def _score(
    placement: str,
    method: str,
    verdicts: Sequence[LocalizationVerdict],
    true_link: Link,
    true_index: int,
    positions: Dict[Link, int],
) -> PlacementScore:
    relevant = [v for v in verdicts if v.candidate_links]
    if not relevant:
        return PlacementScore(
            placement=placement,
            method=method,
            true_index=true_index,
            verdicts=0,
            exact_hit=False,
            error=None,
            interval_width=0,
            confidence=0.0,
        )
    worst_error = 0
    for verdict in relevant:
        for link in verdict.candidate_links:
            distance = abs(positions.get(link, 1 << 10) - true_index)
            worst_error = max(worst_error, distance)
    return PlacementScore(
        placement=placement,
        method=method,
        true_index=true_index,
        verdicts=len(relevant),
        exact_hit=all(true_link in v.candidate_links for v in relevant),
        error=worst_error,
        interval_width=max(v.interval_width for v in relevant),
        confidence=min(v.confidence for v in relevant),
    )


def _reset_world(world: StudyWorld) -> None:
    """Unit-style reset so the CenTrace pass replays from clean state."""
    world.sim.reset()
    for device in world.devices:
        device.reset_state()
    world.net_context.reset()


def _ttl_verdicts(world: StudyWorld) -> List[LocalizationVerdict]:
    """Run CenTrace on the placement world; localize its results."""
    from ..core.centrace import CenTrace, CenTraceConfig

    _reset_world(world)
    client = world.remote_client
    tracer = CenTrace(
        world.sim,
        client,
        asdb=world.asdb,
        config=CenTraceConfig(max_ttl=12),
    )
    evidence: List[PathEvidence] = []
    for endpoint in world.endpoints:
        result = tracer.measure(
            endpoint.ip,
            TOMO_DOMAIN,
            protocol="http",
            control_domain=TOMO_CONTROL_DOMAIN,
        )
        if not result.blocked:
            continue
        route = world.topology.route_between(client.ip, endpoint.ip)
        evidence.append(
            evidence_from_trace(
                result, route=route, origin=client.name, client_ip=client.ip
            )
        )
    return TtlLocalizer().localize(evidence)


def run_cross_validation(
    *,
    seed: int = 11,
    rounds: int = 6,
    probes_per_round: int = 4,
    tolerance: int = 1,
    run_ttl: bool = True,
    placements: Optional[Sequence[str]] = None,
    telemetry=NULL_TELEMETRY,
) -> XvalReport:
    """Score every localizer on every device placement.

    Tomography and inconsistency consume one shared outcome-evidence
    campaign per placement (churn rounds as signal); ``run_ttl`` adds
    the CenTrace pass for the method-agreement columns. Everything is
    a pure function of ``seed`` and the sweep parameters.
    """
    report = XvalReport(
        seed=seed,
        rounds=rounds,
        probes_per_round=probes_per_round,
        tolerance=tolerance,
    )
    pair_counts: Dict[str, List[int]] = {}
    with telemetry.span("localize.xval"):
        for placement in placements or placement_labels():
            world = tomography_world(placement, seed=seed)
            world.sim.set_telemetry(telemetry)
            evidence = collect_outcome_evidence(
                world,
                domains=[TOMO_DOMAIN],
                rounds=rounds,
                probes_per_round=probes_per_round,
            )
            report.evidence.extend(evidence)
            by_method = {
                METHOD_TOMOGRAPHY: TomographyLocalizer().localize(evidence),
                METHOD_INCONSISTENCY: InconsistencyLocalizer().localize(
                    evidence
                ),
            }
            if run_ttl:
                by_method[METHOD_TTL] = _ttl_verdicts(world)
            positions = link_index_map(world)
            true_link = world.notes["true_link"]
            true_index = world.notes["true_index"]
            for method, verdicts in by_method.items():
                report.verdicts.extend(verdicts)
                if telemetry.enabled and verdicts:
                    telemetry.count("localize.verdicts", len(verdicts))
                report.rows.append(
                    _score(
                        placement,
                        method,
                        verdicts,
                        true_link,
                        true_index,
                        positions,
                    )
                )
            _tally_agreement(pair_counts, by_method)
            if telemetry.enabled:
                telemetry.event(
                    "localize.placement",
                    placement=placement,
                    true_index=true_index,
                    methods=sorted(by_method),
                )
    report.agreement = {
        key: (counts[0], counts[1]) for key, counts in sorted(pair_counts.items())
    }
    return report


def _tally_agreement(
    pair_counts: Dict[str, List[int]],
    by_method: Dict[str, List[LocalizationVerdict]],
) -> None:
    """Count per method pair: claims overlapping on the same target."""
    methods = sorted(by_method)
    for i, method_a in enumerate(methods):
        for method_b in methods[i + 1 :]:
            key = f"{method_a}|{method_b}"
            counts = pair_counts.setdefault(key, [0, 0])
            targets_a = {
                (v.endpoint_ip, v.domain): set(v.candidate_links)
                for v in by_method[method_a]
                if v.candidate_links
            }
            for verdict in by_method[method_b]:
                claim = targets_a.get((verdict.endpoint_ip, verdict.domain))
                if claim is None or not verdict.candidate_links:
                    continue
                counts[1] += 1
                if claim & set(verdict.candidate_links):
                    counts[0] += 1
