"""Parallel campaign execution engine.

A campaign decomposes into independent **work units**: one CenTrace
measurement per (vantage, endpoint, domain, protocol) and one CenFuzz
endpoint run per (endpoint, domain, protocol). This module shards those
units across ``multiprocessing`` workers while keeping a hard
guarantee: a parallel run is **bit-identical** to the serial run.

Two properties make that possible:

1. Worlds are pure functions of :class:`~repro.geo.countries.WorldSpec`
   (country, seed, scale), so each worker process rebuilds its own
   replica instead of sharing simulator state.

2. Every unit starts from the same canonical state regardless of which
   process — or in what order — executes it. :func:`prepare_unit`
   resets all cross-measurement mutable state (simulator clock/RNG/
   stacks/capture, device residual and injection tracking, and the
   simulator-owned :class:`~repro.netmodel.netctx.NetContext` whose
   streams supply every IP ID, ephemeral port, injected sequential
   IP ID and fake-DNS cursor value) and re-seeds the simulator RNG
   from a digest of the unit's content. A unit's result is then a
   function of (world spec, unit) alone.

Results are merged back in canonical work-unit order, so callers never
observe scheduling. Serial execution (``workers=None``) goes through
the exact same prepare/execute path in-process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cenfuzz import CenFuzz, EndpointFuzzReport
from ..core.centrace import CenTrace, CenTraceConfig, CenTraceResult
from ..geo.countries import StudyWorld
from ..telemetry import NULL_TELEMETRY, Telemetry, wall_now

VANTAGE_REMOTE = "remote"
VANTAGE_IN_COUNTRY = "in_country"

# Test hook: when set, worker processes die immediately (hard exit, no
# exception) so tests can exercise crash surfacing without a real fault.
CRASH_ENV = "REPRO_EXECUTOR_TEST_CRASH"

# Test hook: when set to a substring of a work-unit key, the worker
# process executing that unit hard-exits *mid-campaign* — the
# crashed-mid-unit case, distinct from CRASH_ENV's crash-at-init.
CRASH_UNIT_ENV = "REPRO_EXECUTOR_TEST_CRASH_UNIT"


class ExecutorError(RuntimeError):
    """A worker pool failed in a way that loses results."""


@dataclass(frozen=True)
class TraceUnit:
    """One CenTrace measurement."""

    vantage: str  # VANTAGE_REMOTE | VANTAGE_IN_COUNTRY
    endpoint_ip: str
    domain: str
    protocol: str

    @property
    def key(self) -> Tuple[str, str, str, str]:
        return (self.vantage, self.endpoint_ip, self.domain, self.protocol)


@dataclass(frozen=True)
class FuzzUnit:
    """One CenFuzz endpoint run."""

    endpoint_ip: str
    domain: str
    protocol: str

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.endpoint_ip, self.domain, self.protocol)


# -- per-unit determinism ----------------------------------------------------


def unit_work_key(
    kind: str, unit, repetitions: int
) -> Tuple[str, int, Tuple[str, ...]]:
    """Canonical content key for one work unit.

    Two work units with equal keys produce byte-identical results on
    worlds built from the same :class:`~repro.geo.countries.WorldSpec`
    (:func:`prepare_unit` makes every unit a pure function of the world
    spec and the unit's content). The campaign service coalesces
    duplicate requests on exactly this key — prefixed with the world's
    identity — so "identical work" is a content question, never an
    object-identity or submission-order question.
    """
    return (kind, repetitions, tuple(unit.key))


def unit_seed(world_seed: int, kind: str, key: Sequence[str]) -> int:
    """Deterministic RNG seed for one work unit.

    Content-based (never index-based) so the seed is stable across
    processes, unit orderings and subsetting.
    """
    material = "|".join([str(world_seed), kind, *key]).encode("utf-8")
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big")


def prepare_unit(world: StudyWorld, kind: str, key: Sequence[str]) -> None:
    """Reset all cross-measurement mutable state before one unit.

    After this call the upcoming measurement depends only on the world's
    construction parameters and the unit's content — the invariant that
    makes serial and parallel campaigns bit-identical.
    """
    world.sim.reset(rng_seed=unit_seed(world.sim.seed, kind, key))
    for device in world.devices:
        device.reset_state()
    # Identifier allocation (IP IDs, ephemeral ports, sequential
    # injection IDs, the fake-DNS cursor) lives on the world's
    # NetContext; sim.reset() above already rewound it, but the reset
    # protocol names it explicitly — it is the contract that replaced
    # the old module-global counter ritual.
    world.net_context.reset()


# -- unit execution (shared by serial path and workers) ----------------------


@dataclass
class Toolset:
    """Tracers/fuzzer bound to one world instance.

    The single-unit execution surface shared by the serial path, the
    worker processes and the campaign service (``repro.service``).
    """

    world: StudyWorld
    remote_tracer: CenTrace
    in_country_tracer: Optional[CenTrace]
    fuzzer: CenFuzz

    @classmethod
    def build(cls, world: StudyWorld, repetitions: int) -> "Toolset":
        trace_config = CenTraceConfig(repetitions=repetitions)
        remote = CenTrace(
            world.sim, world.remote_client, asdb=world.asdb, config=trace_config
        )
        in_country = None
        if world.in_country_client is not None:
            in_country = CenTrace(
                world.sim,
                world.in_country_client,
                asdb=world.asdb,
                config=trace_config,
            )
        fuzzer = CenFuzz(world.sim, world.remote_client)
        return cls(world, remote, in_country, fuzzer)

    def run_trace(self, unit: TraceUnit) -> CenTraceResult:
        prepare_unit(self.world, "trace", unit.key)
        if unit.vantage == VANTAGE_REMOTE:
            tracer = self.remote_tracer
        elif self.in_country_tracer is not None:
            tracer = self.in_country_tracer
        else:
            raise ExecutorError(
                f"unit {unit} needs an in-country vantage but "
                f"world {self.world.country!r} has none"
            )
        return tracer.measure(
            unit.endpoint_ip,
            unit.domain,
            unit.protocol,
            control_domain=self.world.control_domain,
        )

    def run_fuzz(self, unit: FuzzUnit) -> EndpointFuzzReport:
        prepare_unit(self.world, "fuzz", unit.key)
        return self.fuzzer.run_endpoint(
            unit.endpoint_ip,
            unit.domain,
            unit.protocol,
            control_domain=self.world.control_domain,
        )


#: Backwards-compatible private alias (pre-service-layer name).
_Toolset = Toolset


# -- per-unit telemetry ------------------------------------------------------


def run_unit_instrumented(
    toolset: Toolset, method: str, unit, collect: bool
) -> Tuple[object, Optional[Dict]]:
    """Execute one unit, optionally under a fresh per-unit telemetry sink.

    Both the serial path and the worker processes come through here, so
    serial and parallel campaigns perform *identical* telemetry work:
    one fresh :class:`~repro.telemetry.Telemetry` per unit, snapshotted
    after the measurement and merged back in canonical unit order. The
    snapshot also carries the unit's total virtual-clock duration (the
    simulator clock ends the unit at its virtual runtime, since
    :func:`prepare_unit` zeroes it) and the ground-truth fault tallies.

    Wall-clock duration and the executing PID ride along for the wall
    section of the run report (worker shard balance, unit latency) and
    never enter the deterministic identity sections.
    """
    bound = getattr(toolset, method)
    if not collect:
        return bound(unit), None
    sim = toolset.world.sim
    tel = Telemetry()
    previous = sim.telemetry
    sim.set_telemetry(tel)
    wall0 = wall_now()
    try:
        result = bound(unit)
    finally:
        sim.set_telemetry(previous)
    snapshot = tel.snapshot()
    if sim._faults is not None:
        for f in dataclasses.fields(sim._faults.counters):
            value = getattr(sim._faults.counters, f.name)
            if value:
                counters = snapshot["counters"]
                key = f"faults.{f.name}"
                counters[key] = counters.get(key, 0) + value
    snapshot["virtual_seconds"] = sim.clock
    snapshot["wall_seconds"] = wall_now() - wall0
    snapshot["pid"] = os.getpid()
    return result, snapshot


# -- worker process side -----------------------------------------------------

# One toolset per worker process, built once by the pool initializer
# around a private world replica.
_WORKER_TOOLSET: Optional[Toolset] = None
_WORKER_COLLECT = False


def _worker_init(spec, repetitions: int, collect_telemetry: bool = False) -> None:
    global _WORKER_TOOLSET, _WORKER_COLLECT
    if os.environ.get(CRASH_ENV):
        # Hard exit — simulates a worker segfault/OOM kill. The parent
        # sees BrokenProcessPool, which must surface as ExecutorError.
        os._exit(17)
    world = spec.build()
    _WORKER_TOOLSET = Toolset.build(world, repetitions)
    _WORKER_COLLECT = collect_telemetry


def _maybe_crash_mid_unit(unit) -> None:
    """Die mid-campaign when CRASH_UNIT_ENV names this unit (tests only).

    Runs in the worker process, after the pool initialized successfully
    — the crash therefore loses an in-flight unit, which is the case
    the executor must surface as a BrokenProcessPool-wrapped
    ExecutorError instead of hanging the campaign.
    """
    needle = os.environ.get(CRASH_UNIT_ENV)
    if needle and needle in "|".join(str(part) for part in unit.key):
        os._exit(23)


def _worker_trace(unit: TraceUnit):
    assert _WORKER_TOOLSET is not None, "worker initializer did not run"
    _maybe_crash_mid_unit(unit)
    return run_unit_instrumented(
        _WORKER_TOOLSET, "run_trace", unit, _WORKER_COLLECT
    )


def _worker_fuzz(unit: FuzzUnit):
    assert _WORKER_TOOLSET is not None, "worker initializer did not run"
    _maybe_crash_mid_unit(unit)
    return run_unit_instrumented(
        _WORKER_TOOLSET, "run_fuzz", unit, _WORKER_COLLECT
    )


# -- the executor ------------------------------------------------------------


class CampaignExecutor:
    """Executes campaign work units, optionally across worker processes.

    ``workers=None`` (or 0) runs every unit in-process; ``workers=N``
    shards units over N processes, each holding a world replica rebuilt
    from ``world.spec``. Both paths produce byte-identical results in
    canonical (input) order. Use as a context manager so the pool is
    torn down promptly.
    """

    def __init__(
        self,
        world: StudyWorld,
        repetitions: int = 3,
        workers: Optional[int] = None,
        telemetry=NULL_TELEMETRY,
    ) -> None:
        self.world = world
        self.repetitions = repetitions
        self.workers = workers
        self.telemetry = telemetry
        self._pool: Optional[ProcessPoolExecutor] = None
        self._toolset: Optional[Toolset] = None
        if workers is not None and workers >= 1:
            if world.spec is None:
                raise ExecutorError(
                    "parallel execution needs world.spec so workers can "
                    "rebuild replicas; this world was hand-built — use "
                    "build_world() or run with workers=None"
                )
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-forking platforms
                ctx = multiprocessing.get_context()
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=ctx,
                initializer=_worker_init,
                initargs=(world.spec, repetitions, telemetry.enabled),
            )

    # -- lifecycle ----------------------------------------------------

    def __enter__(self) -> "CampaignExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # -- execution ----------------------------------------------------

    def run_traces(self, units: Sequence[TraceUnit]) -> List[CenTraceResult]:
        return self._run(units, _worker_trace, "run_trace", "traces")

    def run_fuzz(self, units: Sequence[FuzzUnit]) -> List[EndpointFuzzReport]:
        return self._run(units, _worker_fuzz, "run_fuzz", "fuzz")

    def run_unit(
        self, kind: str, unit, collect: bool = False
    ) -> Tuple[object, Optional[Dict]]:
        """Execute ONE work unit — the campaign service's entry point.

        Returns ``(result, snapshot)`` exactly as
        :func:`run_unit_instrumented` does (``snapshot`` is ``None``
        unless telemetry is collected; in pool mode collection follows
        the executor's own telemetry flag, set at pool init). A worker
        process that dies mid-unit surfaces as an
        :class:`ExecutorError` whose ``__cause__`` is the pool's
        ``BrokenProcessPool`` — callers retry on a fresh executor or
        report the unit as failed; they never hang on a dead worker.
        """
        if kind == "trace":
            method, worker_fn = "run_trace", _worker_trace
        elif kind == "fuzz":
            method, worker_fn = "run_fuzz", _worker_fuzz
        else:
            raise ExecutorError(f"unknown work-unit kind {kind!r}")
        if self._pool is None:
            return run_unit_instrumented(
                self._local_toolset(), method, unit, collect
            )
        try:
            return self._pool.submit(worker_fn, unit).result()
        except BrokenProcessPool as exc:
            raise ExecutorError(
                f"a campaign worker process died while executing {kind} "
                f"unit {getattr(unit, 'key', unit)!r} "
                f"(workers={self.workers}); the in-flight result was "
                "lost — retry on a fresh executor or report the unit "
                "as failed"
            ) from exc

    def _run(
        self, units: Sequence[object], worker_fn, method: str, stage: str
    ) -> List:
        if not units:
            return []
        tel = self.telemetry
        collect = tel.enabled
        if collect:
            tel.event("stage", stage=stage, units=len(units))
        wall0 = wall_now() if collect else 0.0
        if self._pool is None:
            toolset = self._local_toolset()
            pairs = [
                run_unit_instrumented(toolset, method, unit, collect)
                for unit in units
            ]
        else:
            try:
                # map() preserves input order, so merged results come
                # back in canonical work-unit order regardless of
                # scheduling.
                pairs = list(self._pool.map(worker_fn, units))
            except BrokenProcessPool as exc:
                raise ExecutorError(
                    f"a campaign worker process died while executing "
                    f"{len(units)} {method} unit(s); partial results were "
                    f"discarded (workers={self.workers}). Re-run with "
                    f"workers=None to execute serially."
                ) from exc
        results = []
        for result, snapshot in pairs:
            results.append(result)
            if snapshot is not None:
                # Canonical-order merge: identical for serial and
                # parallel runs, which keeps event order and float
                # accumulation byte-identical.
                tel.merge_snapshot(snapshot)
                tel.add_virtual(
                    f"campaign.{stage}", snapshot["virtual_seconds"]
                )
                tel.record_unit_wall(
                    stage, snapshot["wall_seconds"], snapshot["pid"]
                )
        if collect:
            tel.add_wall(f"campaign.{stage}", wall_now() - wall0)
        return results

    def _local_toolset(self) -> Toolset:
        if self._toolset is None:
            self._toolset = Toolset.build(self.world, self.repetitions)
        return self._toolset
