"""Figure 5: success rates of CenFuzz strategies per country.

Headline paper observations this reproduces (§6.3):

* alternate HTTP methods vary: POST barely evades (1.76%), PUT 21.63%,
  PATCH 82.15%, empty 92.01%;
* extra headers never evade; invalid HTTP versions rarely do (10.55%);
* path alternation evades ~68.72%;
* hostname padding evades 77.12% — leading pads blocked, trailing evade;
* TLD alternation (88%) beats subdomain alternation (61.52%);
* Remove strategies evade most devices (Host Word Rem. >91.3%);
* Capitalize strategies rarely evade;
* TLS: SNI manipulation behaves like Host manipulation; versions and
  cipher suites rarely evade (a few RU/KZ/BY cases).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cenfuzz.runner import EndpointFuzzReport
from ..geo.countries import COUNTRIES
from .base import ExperimentResult, percent
from .campaign import CountryCampaign, get_campaign

PAPER_FIG5 = {
    "post_evasion_pct": 1.76,
    "put_evasion_pct": 21.63,
    "patch_evasion_pct": 82.15,
    "empty_method_evasion_pct": 92.01,
    "http_word_alt_pct": 10.55,
    "path_alt_pct": 68.72,
    "hostname_pad_pct": 77.12,
    "hostname_tld_pct": 88.0,
    "hostname_subdomain_pct": 61.52,
    "host_word_rem_pct": 91.3,
}


def aggregate_success(
    reports: Sequence[EndpointFuzzReport],
    weights: Optional[Dict[Tuple[str, str], int]] = None,
) -> Dict[str, Tuple[int, int]]:
    """strategy -> (successful, evaluated) summed over reports.

    ``weights`` re-weights each (deduplicated) fuzz report by the
    number of blocked measurements behind the same device, restoring
    the paper's measurement-weighted percentages.
    """
    totals: Dict[str, List[int]] = {}
    for report in reports:
        weight = 1
        if weights is not None:
            weight = weights.get((report.endpoint_ip, report.protocol), 1)
        for strategy, (ok, evaluated) in report.success_by_strategy().items():
            entry = totals.setdefault(strategy, [0, 0])
            entry[0] += ok * weight
            entry[1] += evaluated * weight
    return {k: (v[0], v[1]) for k, v in totals.items()}


def label_success(
    reports: Sequence[EndpointFuzzReport],
    strategy: str,
    weights: Optional[Dict[Tuple[str, str], int]] = None,
) -> Dict[str, Tuple[int, int]]:
    """permutation label -> (successful, evaluated) for one strategy."""
    totals: Dict[str, List[int]] = {}
    for report in reports:
        weight = 1
        if weights is not None:
            weight = weights.get((report.endpoint_ip, report.protocol), 1)
        for permutation in report.results:
            if permutation.strategy != strategy:
                continue
            if not (permutation.successful or permutation.unsuccessful):
                continue
            entry = totals.setdefault(permutation.label, [0, 0])
            entry[1] += weight
            if permutation.successful:
                entry[0] += weight
    return {k: (v[0], v[1]) for k, v in totals.items()}


def run(
    countries: Sequence[str] = COUNTRIES,
    *,
    scale: Optional[float] = None,
    repetitions: int = 3,
    campaigns: Optional[Dict[str, CountryCampaign]] = None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig5",
        title="Success rates of CenFuzz strategies (Figure 5)",
        paper_reference=PAPER_FIG5,
    )
    per_country: Dict[str, Dict[str, Tuple[int, int]]] = {}
    all_reports: List[EndpointFuzzReport] = []
    all_weights: Dict[Tuple[str, str], int] = {}
    for country in countries:
        campaign = (
            campaigns[country]
            if campaigns is not None
            else get_campaign(country, scale=scale, repetitions=repetitions)
        )
        weights = campaign.fuzz_weights()
        per_country[country] = aggregate_success(campaign.fuzz_reports, weights)
        all_reports.extend(campaign.fuzz_reports)
        all_weights.update(weights)

    strategies = sorted(
        {s for rates in per_country.values() for s in rates}
    )
    result.headers = ["Strategy"] + [f"{c}%" for c in countries] + ["All%"]
    combined = aggregate_success(all_reports, all_weights)
    for strategy in strategies:
        row = [strategy]
        for country in countries:
            ok, evaluated = per_country[country].get(strategy, (0, 0))
            row.append(f"{percent(ok, evaluated):.1f}" if evaluated else "-")
        ok, evaluated = combined.get(strategy, (0, 0))
        row.append(f"{percent(ok, evaluated):.1f}" if evaluated else "-")
        result.rows.append(tuple(row))

    # Per-method breakdown for the §6.3 headline numbers.
    methods = label_success(all_reports, "Get Word Alt.", all_weights)
    for label, paper_key in (
        ("POST", "post_evasion_pct"),
        ("PUT", "put_evasion_pct"),
        ("PATCH", "patch_evasion_pct"),
        ("<empty>", "empty_method_evasion_pct"),
    ):
        ok, evaluated = methods.get(label, (0, 0))
        result.extra[paper_key] = percent(ok, evaluated)
    result.notes.append(
        "method evasion: POST {post:.1f}% (paper 1.76), PUT {put:.1f}%"
        " (21.63), PATCH {patch:.1f}% (82.15), empty {empty:.1f}% (92.01)".format(
            post=result.extra["post_evasion_pct"],
            put=result.extra["put_evasion_pct"],
            patch=result.extra["patch_evasion_pct"],
            empty=result.extra["empty_method_evasion_pct"],
        )
    )
    # Padding asymmetry (§6.3): leading pads blocked, trailing evade.
    pads = label_success(all_reports, "Hostname Pad.", all_weights)
    leading = [v for k, v in pads.items() if k.endswith("trail0")]
    trailing = [v for k, v in pads.items() if not k.endswith("trail0")]
    lead_pct = percent(sum(v[0] for v in leading), sum(v[1] for v in leading))
    trail_pct = percent(sum(v[0] for v in trailing), sum(v[1] for v in trailing))
    result.extra["leading_pad_pct"] = lead_pct
    result.extra["trailing_pad_pct"] = trail_pct
    result.notes.append(
        f"padding: leading-only {lead_pct:.1f}% vs any-trailing {trail_pct:.1f}%"
        " (paper: leading mostly blocked, trailing evade)"
    )
    return result
