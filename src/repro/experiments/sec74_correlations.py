"""§7.4: vendor feature-similarity correlations.

The paper computes pairwise Spearman rank correlations over device
feature vectors: Fortinet devices correlate at r_s = 1.00, Cisco at
r_s > 0.78, the two Kerio boxes at r_s = 0.98, while cross-vendor
pairs correlate weakly (e.g. Fortinet vs Cisco r_s = 0.56). Same-vendor
devices always land in the same DBSCAN cluster.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..analysis.cluster import cluster_endpoints, vendor_correlations
from ..geo.countries import COUNTRIES
from .base import ExperimentResult
from .campaign import CountryCampaign, get_campaign
from .fig9 import blockpage_campaign

PAPER_SEC74 = {
    "fortinet_rs": 1.00,
    "cisco_rs_min": 0.78,
    "kerio_rs": 0.98,
    "fortinet_vs_cisco_rs": 0.56,
    "same_vendor_same_cluster": True,
}


def run(
    countries: Sequence[str] = COUNTRIES,
    *,
    scale: Optional[float] = None,
    repetitions: int = 3,
    campaigns: Optional[Dict[str, CountryCampaign]] = None,
) -> ExperimentResult:
    features = []
    for country in countries:
        campaign = (
            campaigns[country]
            if campaigns is not None
            else get_campaign(country, scale=scale, repetitions=repetitions)
        )
        features.extend(campaign.endpoint_features())

    correlations = vendor_correlations(features)
    result = ExperimentResult(
        experiment_id="sec74_correlations",
        title="Vendor feature-similarity (Spearman r_s) (§7.4)",
        headers=["VendorA", "VendorB", "r_s", "p"],
        paper_reference=PAPER_SEC74,
    )
    for (vendor_a, vendor_b), (rs, p) in sorted(correlations.items()):
        result.rows.append((vendor_a, vendor_b, f"{rs:.2f}", f"{p:.3f}"))

    # Same-vendor purity under DBSCAN (uses case-study importances).
    labeled_features = blockpage_campaign().endpoint_features()
    from ..analysis.cluster import rank_features

    importance = rank_features(labeled_features)
    report = cluster_endpoints(
        features, eps=1.2, importance=importance, top_features=10
    )
    purity = report.vendor_purity()
    result.extra["vendor_purity"] = purity
    result.extra["correlations"] = {
        f"{a}|{b}": rs for (a, b), (rs, _) in correlations.items()
    }
    within = {
        vendor_a: rs
        for (vendor_a, vendor_b), (rs, _) in correlations.items()
        if vendor_a == vendor_b
    }
    cross = [
        rs
        for (vendor_a, vendor_b), (rs, _) in correlations.items()
        if vendor_a != vendor_b
    ]
    result.extra["within_vendor"] = within
    result.extra["cross_vendor_mean"] = (
        sum(cross) / len(cross) if cross else 0.0
    )
    result.notes.append(
        "within-vendor r_s: "
        + ", ".join(f"{v}={rs:.2f}" for v, rs in sorted(within.items()))
        + f"; cross-vendor mean r_s={result.extra['cross_vendor_mean']:.2f}"
        + f"; same-vendor single-cluster: {purity}"
    )
    return result
