"""Figures 10-12: remote CenTrace path graphs for AZ, BY and KZ.

The appendix figures draw the remote measurement trees and mark the
blocking links. The paper's qualitative findings encoded here:

* AZ (Fig 10): blocking at the link entering the country —
  Telia (AS1299) -> Delta Telecom (AS29049);
* BY (Fig 11): blocking close to the endpoint ASes (plus the Cogent
  anomaly for bridges.torproject.org);
* KZ (Fig 12): blocking near the Kazakhtelecom ingress and inside the
  Russian transit ASes for RU-routed endpoints.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

# Submodule import (see fig1.py): `from .. import viz` is a
# root->experiments cycle the layer lint (RP402) rejects.
from ..viz import blocking_link_summary, build_path_graph, render_dot
from .base import ExperimentResult
from .campaign import CountryCampaign, get_campaign

PAPER_FIG10_12 = {
    "AZ": {"blocking_link": ("TELIANET Telia Company", "Delta Telecom Ltd")},
    "BY": {"anomaly_as": "COGENT-174", "blocking_near_endpoints": True},
    "KZ": {"ru_transit": ("PJSC MegaFon", "JSC Kvant-telekom")},
}


def run(
    countries: Sequence[str] = ("AZ", "BY", "KZ"),
    *,
    scale: Optional[float] = None,
    repetitions: int = 3,
    campaigns: Optional[Dict[str, CountryCampaign]] = None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig10_12",
        title="Remote CenTrace path graphs: AZ / BY / KZ (Figures 10-12)",
        headers=["Co.", "FromAS", "ToAS", "BlockedTraces"],
        paper_reference=PAPER_FIG10_12,
    )
    for country in countries:
        campaign = (
            campaigns[country]
            if campaigns is not None
            else get_campaign(country, scale=scale, repetitions=repetitions)
        )
        graph = build_path_graph(
            campaign.remote_results,
            asdb=campaign.world.asdb,
            client_label=f"{country} remote client",
        )
        links = blocking_link_summary(graph)
        for from_as, to_as, count in links[:8]:
            result.rows.append((country, from_as, to_as, count))
        result.extra[f"{country}_dot"] = render_dot(graph)
        result.extra[f"{country}_links"] = links
    return result
