"""Figure 1: CenTrace measurements from a client inside KZ.

The paper's opening figure draws paths from the in-country KZ client
toward its endpoints with red links where blocking occurs — inside
JSC-Kazakhtelecom (AS9198), upstream of the client's hosting AS. We
rebuild that graph from in-country CenTrace results and verify the
blocking links land in AS9198.
"""

from __future__ import annotations

from typing import Optional

# Submodule import, not `from .. import viz`: pulling attributes off
# the package root at import time is a root->experiments->fig1 cycle
# (RP402) that only resolves through partially-initialized-package
# fallback behaviour.
from ..viz import (
    blocking_link_summary,
    build_path_graph,
    render_ascii,
    render_dot,
)
from ..core.centrace import CenTrace, CenTraceConfig
from ..geo.countries import build_kz_world
from .base import ExperimentResult

PAPER_FIG1 = {
    "blocking_asn": 9198,
    "blocking_as_name": "JSC Kazakhtelecom",
    "device_hops_from_client": 3,
}


def run(*, seed: Optional[int] = None, repetitions: int = 3) -> ExperimentResult:
    world = build_kz_world(**({"seed": seed} if seed is not None else {}))
    tracer = CenTrace(
        world.sim,
        world.in_country_client,
        asdb=world.asdb,
        config=CenTraceConfig(repetitions=repetitions),
    )
    results = []
    for target in world.in_country_targets:
        for domain in world.test_domains:
            results.append(
                tracer.measure(target.ip, domain, "http", world.control_domain)
            )
    graph = build_path_graph(results, asdb=world.asdb, client_label="KZ client")
    blocking_links = blocking_link_summary(graph)

    result = ExperimentResult(
        experiment_id="fig1",
        title="CenTrace measurements from a client in KZ (Figure 1)",
        headers=["FromAS", "ToAS", "BlockedTraces"],
        rows=[tuple(row) for row in blocking_links],
        paper_reference=PAPER_FIG1,
    )
    blocked = [r for r in results if r.blocked and r.valid]
    asns = {r.blocking_hop.asn for r in blocked if r.blocking_hop}
    distances = {r.terminating_ttl for r in blocked}
    result.extra["blocking_asns"] = sorted(a for a in asns if a)
    result.extra["device_distances"] = sorted(d for d in distances if d)
    result.extra["ascii"] = render_ascii(graph, root="KZ client")
    result.extra["dot"] = render_dot(graph)
    result.notes.append(
        f"blocking ASNs: {result.extra['blocking_asns']} (paper: 9198),"
        f" device at hop {result.extra['device_distances']} from client"
        " (paper: 3 hops)"
    )
    return result
