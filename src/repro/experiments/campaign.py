"""Measurement campaigns: run all three tools over a study world.

A campaign reproduces the paper's §4.2/§5.2/§6.2 data collection for
one country: remote CenTraces for every (endpoint, test domain,
protocol), in-country CenTraces where a vantage point exists, banner
grabs on every potential device IP, and CenFuzz against blocked
endpoints (deduplicated per blocking hop so every distinct device is
fuzzed once — the full paper-scale sweep is available via
``fuzz_all_blocked=True``).

Campaigns are cached per configuration because several experiments
(Table 1, Figures 3/4/5/6/9, §4.3/§5.3/§7.4) consume the same data.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.features import EndpointFeatures, extract_features
from ..core.blockpages import DEFAULT_MATCHER
from ..core.cenfuzz import EndpointFuzzReport
from ..core.cenprobe import CenProbe, ProbeReport
from ..core.centrace import (
    CenTraceResult,
    PROTO_HTTP,
    PROTO_TLS,
)
from ..geo.countries import StudyWorld, build_world
from ..netsim.faults import FaultPlan
from ..telemetry import NULL_TELEMETRY, RunReport, wall_now
from .executor import (
    VANTAGE_IN_COUNTRY,
    VANTAGE_REMOTE,
    CampaignExecutor,
    FuzzUnit,
    TraceUnit,
)

PROTOCOLS = (PROTO_HTTP, PROTO_TLS)


@dataclass
class CampaignConfig:
    """Knobs for one country campaign."""

    repetitions: int = 3  # CenTrace sweep repetitions (paper: 11)
    protocols: Tuple[str, ...] = PROTOCOLS
    max_endpoints: Optional[int] = None  # further scaling for quick runs
    fuzz_all_blocked: bool = False  # paper-scale CenFuzz
    fuzz_max_endpoints: Optional[int] = None
    run_fuzz: bool = True
    run_probe: bool = True
    # Fault-injection plan applied to the world before measuring (see
    # repro.netsim.faults); None = the world's own configuration.
    fault_plan: Optional[FaultPlan] = None


@dataclass
class CountryCampaign:
    """All measurement data collected for one country."""

    world: StudyWorld
    config: CampaignConfig
    remote_results: List[CenTraceResult] = field(default_factory=list)
    in_country_results: List[CenTraceResult] = field(default_factory=list)
    fuzz_reports: List[EndpointFuzzReport] = field(default_factory=list)
    probe_reports: Dict[str, ProbeReport] = field(default_factory=dict)
    # (endpoint_ip, protocol) -> the blocking-hop IP the fuzz report
    # stands in for (used for measurement re-weighting).
    fuzz_target_hops: Dict[Tuple[str, str], Optional[str]] = field(
        default_factory=dict
    )
    # Observability: set when run_campaign() is given an active
    # telemetry sink; None under the default NULL_TELEMETRY.
    run_report: Optional[RunReport] = None
    # How the run executed (None = serial). Environment provenance only
    # — results are bit-identical regardless, and persistence keeps it
    # out of identity comparisons accordingly.
    workers: Optional[int] = None

    # -- derived views ----------------------------------------------------

    @property
    def country(self) -> str:
        return self.world.country

    def all_trace_results(self) -> List[CenTraceResult]:
        return self.remote_results + self.in_country_results

    def blocked_remote(self) -> List[CenTraceResult]:
        return [r for r in self.remote_results if r.blocked and r.valid]

    def blocked_all(self) -> List[CenTraceResult]:
        return [r for r in self.all_trace_results() if r.blocked and r.valid]

    def potential_device_ips(self) -> List[str]:
        """Unique in-path blocking-hop IPs (§5.2's banner targets)."""
        ips = []
        seen = set()
        for result in self.blocked_all():
            if result.in_path is not True:
                continue
            hop = result.blocking_hop
            if hop is None or hop.ip is None or hop.ip == result.endpoint_ip:
                continue
            if hop.ip not in seen:
                seen.add(hop.ip)
                ips.append(hop.ip)
        return ips

    def fuzz_weights(self) -> Dict[Tuple[str, str], int]:
        """(endpoint_ip, protocol) -> blocked-measurement weight.

        CenFuzz deduplicates per blocking hop to avoid re-fuzzing the
        same device; analyses that reproduce the paper's
        measurement-weighted percentages (Figure 5) re-weight each
        fuzz report by how many blocked CenTrace measurements share
        its blocking hop.
        """
        hop_counts: Dict[Tuple[Optional[str], str], int] = {}
        for result in self.blocked_remote():
            hop_ip = result.blocking_hop.ip if result.blocking_hop else None
            key = (hop_ip, result.protocol)
            hop_counts[key] = hop_counts.get(key, 0) + 1
        return {
            (endpoint_ip, protocol): hop_counts.get((hop_ip, protocol), 1)
            for (endpoint_ip, protocol), hop_ip in self.fuzz_target_hops.items()
        }

    def results_by_endpoint(self) -> Dict[str, List[CenTraceResult]]:
        grouped: Dict[str, List[CenTraceResult]] = {}
        for result in self.remote_results:
            grouped.setdefault(result.endpoint_ip, []).append(result)
        return grouped

    def endpoint_features(self) -> List[EndpointFeatures]:
        """One clustering feature vector per blocked endpoint (§7.1).

        CenFuzz runs once per distinct blocking hop; endpoints whose
        traffic crossed the same device inherit that device's fuzz
        report (the probes would have met the identical engine).
        """
        fuzz_by_endpoint: Dict[str, List[EndpointFuzzReport]] = {}
        fuzz_by_hop: Dict[Optional[str], List[EndpointFuzzReport]] = {}
        for report in self.fuzz_reports:
            fuzz_by_endpoint.setdefault(report.endpoint_ip, []).append(report)
            hop = self.fuzz_target_hops.get(
                (report.endpoint_ip, report.protocol)
            )
            if hop is not None:
                fuzz_by_hop.setdefault(hop, []).append(report)
        features = []
        for endpoint_ip, results in self.results_by_endpoint().items():
            blocked = [r for r in results if r.blocked and r.valid]
            if not blocked:
                continue
            probe = None
            for result in blocked:
                hop = result.blocking_hop
                if hop and hop.ip and hop.ip in self.probe_reports:
                    probe = self.probe_reports[hop.ip]
                    break
            blockpage_vendor = None
            for result in blocked:
                if result.blockpage_fingerprint:
                    fingerprint = next(
                        (
                            f
                            for f in DEFAULT_MATCHER.fingerprints
                            if f.name == result.blockpage_fingerprint
                        ),
                        None,
                    )
                    if fingerprint and fingerprint.vendor:
                        blockpage_vendor = fingerprint.vendor
                        break
            fuzz_reports = fuzz_by_endpoint.get(endpoint_ip)
            if not fuzz_reports:
                for result in blocked:
                    hop = result.blocking_hop.ip if result.blocking_hop else None
                    if hop in fuzz_by_hop:
                        fuzz_reports = fuzz_by_hop[hop]
                        break
            meta = self.world.asdb.lookup(endpoint_ip)
            features.append(
                extract_features(
                    endpoint_ip,
                    blocked,
                    fuzz_reports or [],
                    probe,
                    country=self.world.country if self.world.country != "WW" else (
                        meta.country if meta else None
                    ),
                    asn=meta.asn if meta else None,
                    blockpage_vendor=blockpage_vendor,
                )
            )
        return features


def trace_units_for(
    world: StudyWorld, config: CampaignConfig
) -> List[TraceUnit]:
    """Canonical CenTrace work-unit order for a campaign.

    Remote units first (endpoint x test domain x protocol, §4.2), then
    in-country units. This ordering is the contract that lets parallel
    results merge back bit-identically.
    """
    endpoints = world.endpoints
    if config.max_endpoints is not None:
        endpoints = endpoints[: config.max_endpoints]
    units = [
        TraceUnit(VANTAGE_REMOTE, endpoint.ip, domain, protocol)
        for endpoint in endpoints
        for domain in world.test_domains
        for protocol in config.protocols
    ]
    if world.in_country_client is not None and world.in_country_targets:
        units.extend(
            TraceUnit(VANTAGE_IN_COUNTRY, target.ip, domain, protocol)
            for target in world.in_country_targets
            for domain in world.test_domains
            for protocol in config.protocols
        )
    return units


def run_campaign(
    world: StudyWorld,
    config: Optional[CampaignConfig] = None,
    workers: Optional[int] = None,
    telemetry=None,
) -> CountryCampaign:
    """Collect every measurement the experiments need for ``world``.

    ``workers=N`` shards CenTrace and CenFuzz work units across N
    processes (each rebuilding a world replica from ``world.spec``);
    the result is bit-identical to the serial run — see
    ``experiments/executor.py`` for the determinism discipline.

    ``telemetry`` accepts a :class:`repro.telemetry.Telemetry` sink;
    when given, the campaign's counters, virtual-clock spans and events
    are collected (identically for serial and parallel runs) and frozen
    into ``campaign.run_report``. The default ``NULL_TELEMETRY`` keeps
    the hot path uninstrumented.
    """
    config = config or CampaignConfig()
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    if config.fault_plan is not None:
        # Install the plan on the live simulator AND in the spec, so
        # parallel workers rebuilding from the spec fault identically.
        world.sim.set_fault_plan(config.fault_plan)
        if world.spec is not None:
            world.spec = dataclasses.replace(
                world.spec, fault_plan=config.fault_plan
            )
    campaign = CountryCampaign(world=world, config=config, workers=workers)

    units = trace_units_for(world, config)
    n_remote = sum(1 for u in units if u.vantage == VANTAGE_REMOTE)
    wall0 = wall_now() if tel.enabled else 0.0

    with CampaignExecutor(
        world, repetitions=config.repetitions, workers=workers, telemetry=tel
    ) as executor:
        results = executor.run_traces(units)
        campaign.remote_results = results[:n_remote]
        campaign.in_country_results = results[n_remote:]

        # Banner grabs at every potential device IP (§5.2). CenProbe
        # reads only the static topology (no simulator state), so it
        # runs serially in the parent under either mode — its counters
        # flow straight into the campaign sink.
        if config.run_probe:
            with tel.span("campaign.probe"):
                prober = CenProbe(world.topology, telemetry=tel)
                for ip in campaign.potential_device_ips():
                    campaign.probe_reports[ip] = prober.scan(ip)

        # CenFuzz against blocked endpoints (§6.2) — one endpoint per
        # distinct blocking hop unless fuzz_all_blocked is set.
        if config.run_fuzz:
            targets = fuzz_targets_for(campaign, config)
            fuzz_units = [FuzzUnit(*target) for target in targets]
            campaign.fuzz_reports = executor.run_fuzz(fuzz_units)

    if tel.enabled:
        tel.add_wall("campaign", wall_now() - wall0)
        campaign.run_report = tel.build_report(
            meta={
                "country": world.country,
                "repetitions": config.repetitions,
                "protocols": list(config.protocols),
                "trace_units": len(units),
                "fuzz_units": len(campaign.fuzz_reports),
                "fault_plan": config.fault_plan is not None,
            },
            # Environment-specific facts must not enter the identity
            # sections: a serial and a 4-worker run of the same
            # campaign must stay byte-identical there.
            wall_extra={"workers_requested": workers},
        )
    return campaign


def fuzz_targets_for(
    campaign: CountryCampaign, config: CampaignConfig
) -> List[Tuple[str, str, str]]:
    """(endpoint, domain, protocol) triples to fuzz.

    Also records ``campaign.fuzz_target_hops`` — but only for targets
    that survive the ``fuzz_max_endpoints`` cut, so downstream
    re-weighting (``fuzz_weights``) and clustering
    (``endpoint_features``) never see entries for endpoints that were
    never fuzzed.
    """
    selected: List[Tuple[Tuple[str, str], Optional[str], Tuple[str, str, str]]] = []
    seen_hops = set()
    seen_endpoint_protocol = set()
    for result in campaign.blocked_remote():
        key_ep = (result.endpoint_ip, result.protocol)
        if key_ep in seen_endpoint_protocol:
            continue
        hop_ip = result.blocking_hop.ip if result.blocking_hop else None
        hop_key = (hop_ip, result.protocol)
        if not config.fuzz_all_blocked:
            if hop_ip is not None and hop_key in seen_hops:
                continue
        seen_hops.add(hop_key)
        seen_endpoint_protocol.add(key_ep)
        triple = (result.endpoint_ip, result.test_domain, result.protocol)
        selected.append((key_ep, hop_ip, triple))
    if config.fuzz_max_endpoints is not None:
        selected = selected[: config.fuzz_max_endpoints]
    targets: List[Tuple[str, str, str]] = []
    for key_ep, hop_ip, triple in selected:
        campaign.fuzz_target_hops[key_ep] = hop_ip
        targets.append(triple)
    return targets


#: Backwards-compatible private alias (pre-service-layer name).
_fuzz_targets = fuzz_targets_for


# -- campaign cache ----------------------------------------------------------

_CACHE: Dict[Tuple, CountryCampaign] = {}


def campaign_cache_key(
    country: str,
    scale: Optional[float],
    seed: Optional[int],
    config: CampaignConfig,
) -> Tuple:
    """The :func:`get_campaign` cache key for one configuration.

    Derived automatically from ``dataclasses.fields(CampaignConfig)``
    so that *every* config knob — present and future — participates in
    the key. The previous hand-maintained tuple silently aliased
    campaigns whenever a new field was added but not keyed (the bug PR 1
    fixed once already); deriving from the dataclass makes that whole
    failure mode unrepresentable. Every ``CampaignConfig`` field must
    therefore stay hashable (``FaultPlan`` is frozen for this reason).
    """
    return (country, scale, seed) + tuple(
        getattr(config, f.name) for f in dataclasses.fields(CampaignConfig)
    )


def get_campaign(
    country: str,
    *,
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    repetitions: int = 3,
    protocols: Tuple[str, ...] = PROTOCOLS,
    max_endpoints: Optional[int] = None,
    fuzz_all_blocked: bool = False,
    fuzz_max_endpoints: Optional[int] = None,
    run_fuzz: bool = True,
    run_probe: bool = True,
    workers: Optional[int] = None,
    fault_plan=None,
) -> CountryCampaign:
    """Build (or fetch from cache) the campaign for ``country``.

    The cache key covers every knob that changes campaign *content* —
    (country, scale, seed) plus all :class:`CampaignConfig` fields.
    ``workers`` is deliberately excluded: parallel runs are
    bit-identical to serial ones, so it only affects wall-clock time.
    ``fault_plan`` accepts anything :meth:`FaultPlan.from_spec` does
    (a plan, a preset name, a dict, inline JSON, or ``@file``).
    """
    plan = FaultPlan.from_spec(fault_plan) if fault_plan is not None else None
    config = CampaignConfig(
        repetitions=repetitions,
        protocols=tuple(protocols),
        max_endpoints=max_endpoints,
        fuzz_all_blocked=fuzz_all_blocked,
        fuzz_max_endpoints=fuzz_max_endpoints,
        run_fuzz=run_fuzz,
        run_probe=run_probe,
        fault_plan=plan,
    )
    key = campaign_cache_key(country, scale, seed, config)
    if key not in _CACHE:
        world = build_world(country, seed=seed, scale=scale)
        _CACHE[key] = run_campaign(world, config, workers=workers)
    return _CACHE[key]


def clear_campaign_cache() -> None:
    _CACHE.clear()
