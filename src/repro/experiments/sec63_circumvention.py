"""§6.3's circumvention case study from the KZ in-country vantage.

Evasion means the censor missed the request; *circumvention* means the
legitimate endpoint also served the intended resource. The paper's KZ
examples, both reproduced here:

* padding the SNI and hostname for www.pokerstars.com with leading pad
  characters evades the censor AND fetches legitimate content (the
  origin tolerates padded Host values);
* requests for dailymotion.com circumvent when certain subdomains
  (e.g. wiki.dailymotion.com) are used (wildcard vhosts);
* web servers for other domains reject the same mangled requests with
  400 / 403 / 301 / 505 — so circumvention applicability varies by
  domain.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from ..core.cenfuzz import CenFuzz
from ..geo.countries import build_kz_world
from .base import ExperimentResult, percent

PAPER_SEC63 = {
    "pokerstars_padding_circumvents": True,
    "dailymotion_subdomain_circumvents": True,
    "error_codes_from_other_servers": [400, 403, 301, 505],
}


def run(*, seed: Optional[int] = None) -> ExperimentResult:
    world = build_kz_world(**({"seed": seed} if seed is not None else {}))
    fuzzer = CenFuzz(world.sim, world.in_country_client)
    result = ExperimentResult(
        experiment_id="sec63_circumvention",
        title="Evasion vs circumvention from the KZ vantage (§6.3)",
        headers=["Domain", "Strategy", "Evaded", "Circumvented"],
        paper_reference=PAPER_SEC63,
    )
    status_codes: Counter = Counter()
    interesting = {
        "www.pokerstars.com": ("Hostname Pad.", "SNI Pad."),
        "www.dailymotion.com": ("Host. Subdomain Alt.", "SNI Subdomain Alt."),
        "www.azattyq.org": ("Hostname Pad.", "Host. Subdomain Alt."),
    }
    targets = {t.domains[0]: t for t in world.in_country_targets}
    reports = []
    for domain, strategies in interesting.items():
        target = targets.get(domain)
        if target is None:
            continue
        for protocol in ("http", "tls"):
            report = fuzzer.run_endpoint(
                target.ip, domain, protocol, world.control_domain
            )
            reports.append(report)
            per_strategy = {}
            for permutation in report.results:
                if permutation.strategy not in strategies:
                    if permutation.test.status_code:
                        status_codes[permutation.test.status_code] += 1
                    continue
                entry = per_strategy.setdefault(
                    permutation.strategy, [0, 0, 0]
                )
                entry[2] += 1
                if permutation.successful:
                    entry[0] += 1
                if permutation.circumvented:
                    entry[1] += 1
                if permutation.test.status_code:
                    status_codes[permutation.test.status_code] += 1
            for strategy, (evaded, circ, total) in per_strategy.items():
                result.rows.append(
                    (domain, strategy, f"{evaded}/{total}", f"{circ}/{total}")
                )
    result.extra["status_codes"] = dict(status_codes)
    pokerstars_pad = [
        r for r in result.rows
        if r[0] == "www.pokerstars.com" and "Pad" in r[1]
    ]
    dailymotion_sub = [
        r for r in result.rows
        if r[0] == "www.dailymotion.com" and "Subdomain" in r[1]
    ]
    result.extra["pokerstars_pad_circumvented"] = any(
        int(r[3].split("/")[0]) > 0 for r in pokerstars_pad
    )
    result.extra["dailymotion_subdomain_circumvented"] = any(
        int(r[3].split("/")[0]) > 0 for r in dailymotion_sub
    )
    observed_errors = sorted(
        c for c in status_codes if c in (301, 400, 403, 505)
    )
    result.extra["error_codes_observed"] = observed_errors
    result.notes.append(
        f"pokerstars padding circumvents: "
        f"{result.extra['pokerstars_pad_circumvented']};"
        f" dailymotion subdomains circumvent: "
        f"{result.extra['dailymotion_subdomain_circumvented']};"
        f" error codes from strict servers: {observed_errors}"
        " (paper: 400/403/301/505)"
    )
    return result
