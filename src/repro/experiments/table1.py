"""Table 1: CenTrace measurements collected per country.

Paper columns: in-country clients / CTs / blocked CTs, remote endpoints
/ endpoint ASNs / CTs / blocked CTs. Absolute counts scale with the
worlds' endpoint counts (RU is built at a tenth of the paper's 1,291
endpoints by default); the blocked *fractions* are the comparable
shape.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..geo.countries import COUNTRIES
from .base import ExperimentResult, percent
from .campaign import CountryCampaign, get_campaign

PAPER_TABLE1 = {
    # country: (in_clients, in_cts, in_blocked, endpoints, endpoint_asns,
    #           remote_cts, remote_blocked)
    "AZ": (1, 18, 6, 29, 10, 227, 96),
    "BY": (0, 0, 0, 123, 19, 1040, 287),
    "KZ": (1, 14, 8, 95, 29, 868, 748),
    "RU": (1, 14, 0, 1291, 498, 10488, 418),
}


def run(
    countries: Sequence[str] = COUNTRIES,
    *,
    scale: Optional[float] = None,
    repetitions: int = 3,
    campaigns: Optional[Dict[str, CountryCampaign]] = None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table1",
        title="CenTrace measurements collected (Table 1)",
        headers=[
            "Co.",
            "InClients",
            "InCTs",
            "InBlocked",
            "Endpoints",
            "EndpointASNs",
            "RemoteCTs",
            "RemoteBlocked",
            "Blocked%",
        ],
        paper_reference={"table1": PAPER_TABLE1},
    )
    for country in countries:
        campaign = (
            campaigns[country]
            if campaigns is not None
            else get_campaign(country, scale=scale, repetitions=repetitions)
        )
        world = campaign.world
        remote_blocked = len(campaign.blocked_remote())
        in_blocked = sum(
            1 for r in campaign.in_country_results if r.blocked and r.valid
        )
        endpoint_asns = len({e.asn for e in world.endpoints})
        result.rows.append(
            (
                country,
                1 if world.in_country_client else 0,
                len(campaign.in_country_results),
                in_blocked,
                len(world.endpoints),
                endpoint_asns,
                len(campaign.remote_results),
                remote_blocked,
                f"{percent(remote_blocked, len(campaign.remote_results)):.1f}",
            )
        )
    result.notes.append(
        "RU endpoints are simulated at a reduced scale; compare blocked"
        " fractions (paper: AZ 42%, BY 28%, KZ 86%, RU 4%)."
    )
    return result
