"""Figure 3: distribution of blocking type and location per country.

The paper plots, per country, the count of blocked CenTraces by
terminating-response type (RST / TIMEOUT / FIN / HTTP) stacked by
blocking-hop location (on the path, at the endpoint, no ICMP, past the
endpoint). The headline paper statistics this reproduces:

* 94.75% of blocked CenTraces are packet drops or reset injection;
* 73.97% of blocking hops lie on the client->endpoint path;
* 16.19% block at the endpoint itself ("At E");
* a "Past E" population exists in RU (TTL-copying injectors);
* exactly one "No ICMP" trace.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Sequence

from ..core.centrace.results import (
    BLOCK_TYPES,
    LOC_AT_E,
    LOC_NO_ICMP,
    LOC_PAST_E,
    LOC_PATH,
    LOCATION_CLASSES,
    TYPE_RST,
    TYPE_TIMEOUT,
)
from ..geo.countries import COUNTRIES
from .base import ExperimentResult, percent
from .campaign import CountryCampaign, get_campaign

PAPER_FIG3 = {
    "drops_and_resets_pct": 94.75,
    "on_path_pct": 73.97,
    "at_e_pct": 16.19,
    "no_icmp_count": 1,
    "past_e_country": "RU",
}


def run(
    countries: Sequence[str] = COUNTRIES,
    *,
    scale: Optional[float] = None,
    repetitions: int = 3,
    campaigns: Optional[Dict[str, CountryCampaign]] = None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig3",
        title="Blocking type and location w.r.t. client and endpoint (Figure 3)",
        headers=["Co.", "Type"] + list(LOCATION_CLASSES) + ["Total"],
        paper_reference=PAPER_FIG3,
    )
    totals: Counter = Counter()
    location_totals: Counter = Counter()
    for country in countries:
        campaign = (
            campaigns[country]
            if campaigns is not None
            else get_campaign(country, scale=scale, repetitions=repetitions)
        )
        blocked = campaign.blocked_all()
        by_type_loc: Dict[str, Counter] = {t: Counter() for t in BLOCK_TYPES}
        for trace in blocked:
            by_type_loc[trace.blocking_type][trace.location_class] += 1
            totals[trace.blocking_type] += 1
            location_totals[trace.location_class] += 1
        for block_type in BLOCK_TYPES:
            row_counts = [
                by_type_loc[block_type][loc] for loc in LOCATION_CLASSES
            ]
            result.rows.append(
                (country, block_type, *row_counts, sum(row_counts))
            )
    grand_total = sum(totals.values())
    drops_resets = totals[TYPE_TIMEOUT] + totals[TYPE_RST]
    result.extra["drops_and_resets_pct"] = percent(drops_resets, grand_total)
    result.extra["on_path_pct"] = percent(location_totals[LOC_PATH], grand_total)
    result.extra["at_e_pct"] = percent(location_totals[LOC_AT_E], grand_total)
    result.extra["past_e_count"] = location_totals[LOC_PAST_E]
    result.extra["no_icmp_count"] = location_totals[LOC_NO_ICMP]
    result.notes.append(
        f"drops+resets {result.extra['drops_and_resets_pct']:.1f}%"
        f" (paper 94.75%), on-path {result.extra['on_path_pct']:.1f}%"
        f" (paper 73.97%), at-E {result.extra['at_e_pct']:.1f}%"
        f" (paper 16.19%), no-ICMP {result.extra['no_icmp_count']}"
        f" (paper 1), past-E {result.extra['past_e_count']} (RU only)"
    )
    return result
