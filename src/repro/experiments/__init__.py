"""One module per paper table/figure, plus the campaign machinery."""

from . import (
    fig1,
    fig3,
    fig4,
    fig5,
    fig6,
    fig9,
    fig10_12,
    sec41_pathvar,
    sec43_quotes,
    sec53_banners,
    sec63_circumvention,
    sec71_classify,
    sec74_correlations,
    table1,
    table2,
)
from .base import ExperimentResult, percent
from .campaign import (
    CampaignConfig,
    CountryCampaign,
    clear_campaign_cache,
    get_campaign,
    run_campaign,
)
from .epochs import EpochResult, EpochScheduler

ALL_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "fig1": fig1,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig9": fig9,
    "fig10_12": fig10_12,
    "sec41_pathvar": sec41_pathvar,
    "sec43_quotes": sec43_quotes,
    "sec53_banners": sec53_banners,
    "sec63_circumvention": sec63_circumvention,
    "sec71_classify": sec71_classify,
    "sec74_correlations": sec74_correlations,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "percent",
    "CampaignConfig",
    "CountryCampaign",
    "clear_campaign_cache",
    "get_campaign",
    "run_campaign",
    "EpochResult",
    "EpochScheduler",
]
