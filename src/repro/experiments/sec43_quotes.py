"""§4.3's quoted-ICMP-packet analysis at blocking hops.

The paper compares the packet quoted in each blocking hop's ICMP Time
Exceeded error against the sent probe: 57.6% quote per RFC 792 (only
the first 64 bits of the transport payload); the rest follow RFC 1812;
32.06% of quotes show a modified IP TOS byte and one a modified IP
flags field.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..geo.countries import COUNTRIES
from .base import ExperimentResult, percent
from .campaign import CountryCampaign, get_campaign

PAPER_SEC43 = {
    "rfc792_pct": 57.6,
    "tos_changed_pct": 32.06,
    "ip_flags_changed_traces": 1,
}


def run(
    countries: Sequence[str] = COUNTRIES,
    *,
    scale: Optional[float] = None,
    repetitions: int = 3,
    campaigns: Optional[Dict[str, CountryCampaign]] = None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="sec43_quotes",
        title="Quoted packets in ICMP at blocking hops (§4.3)",
        headers=["Co.", "Quotes", "RFC792%", "TOSChanged%", "IPFlagsChanged"],
        paper_reference=PAPER_SEC43,
    )
    total_quotes = 0
    total_rfc792 = 0
    total_tos = 0
    total_flags = 0
    for country in countries:
        campaign = (
            campaigns[country]
            if campaigns is not None
            else get_campaign(country, scale=scale, repetitions=repetitions)
        )
        deltas = [
            r.quote_delta for r in campaign.blocked_all() if r.quote_delta
        ]
        rfc792 = sum(1 for d in deltas if d.follows_rfc792)
        tos = sum(1 for d in deltas if d.tos_changed)
        flags = sum(1 for d in deltas if d.ip_flags_changed)
        total_quotes += len(deltas)
        total_rfc792 += rfc792
        total_tos += tos
        total_flags += flags
        result.rows.append(
            (
                country,
                len(deltas),
                f"{percent(rfc792, len(deltas)):.1f}",
                f"{percent(tos, len(deltas)):.1f}",
                flags,
            )
        )
    result.extra["rfc792_pct"] = percent(total_rfc792, total_quotes)
    result.extra["tos_changed_pct"] = percent(total_tos, total_quotes)
    result.extra["ip_flags_changed"] = total_flags

    # Tracebox-style localization (§4.1): pin each header rewrite to a
    # link using the per-hop quotes of the control sweeps.
    from ..core.centrace.tracebox import locate_modifications_aggregated

    modifier_links = set()
    for country in countries:
        campaign = (
            campaigns[country]
            if campaigns is not None
            else get_campaign(country, scale=scale, repetitions=repetitions)
        )
        seen_endpoints = set()
        for trace in campaign.blocked_all():
            if trace.endpoint_ip in seen_endpoints or not trace.sweeps_control:
                continue
            seen_endpoints.add(trace.endpoint_ip)
            for event in locate_modifications_aggregated(trace.sweeps_control):
                modifier_links.add(
                    (country, event.fieldname, event.before_hop, event.at_hop)
                )
    result.extra["modifier_links"] = sorted(modifier_links)
    result.notes.append(
        f"tracebox localization: {len(modifier_links)} distinct"
        " header-modifying links pinned down"
        + (
            ": "
            + "; ".join(
                f"{c}:{f}@{a}->{b}" for c, f, a, b in sorted(modifier_links)[:6]
            )
            if modifier_links
            else ""
        )
    )
    result.notes.append(
        f"overall: RFC792 {result.extra['rfc792_pct']:.1f}% (paper 57.6%),"
        f" TOS-changed {result.extra['tos_changed_pct']:.1f}% (paper"
        f" 32.06%), IP-flags-changed {total_flags} (paper 1)"
    )
    return result
