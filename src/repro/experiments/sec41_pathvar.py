"""§4.1's path-variance calibration experiment.

The paper performs 200 traceroutes to each of 20 controlled endpoints
and finds that, on average, 90% of the paths observed for an endpoint
are covered within 11 traceroutes — motivating 11 repetitions — with
a single endpoint exhibiting over 100 unique paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.centrace import CenTrace, CenTraceConfig
from ..geo.countries import build_calibration_world
from .base import ExperimentResult

PAPER_SEC41 = {
    "traceroutes_per_endpoint": 200,
    "endpoints": 20,
    "avg_traces_for_90pct": 11,
    "max_unique_paths": ">100",
}


def run(
    *,
    traceroutes: int = 200,
    seed: Optional[int] = None,
) -> ExperimentResult:
    world = build_calibration_world(**({"seed": seed} if seed is not None else {}))
    tracer = CenTrace(
        world.sim,
        world.remote_client,
        asdb=world.asdb,
        config=CenTraceConfig(repetitions=1, probe_retries=1),
    )
    result = ExperimentResult(
        experiment_id="sec41_pathvar",
        title="Path variance calibration (§4.1)",
        headers=["Endpoint", "UniquePaths", "TracesFor90pct"],
        paper_reference=PAPER_SEC41,
    )
    traces_needed: List[int] = []
    max_unique = 0
    for endpoint in world.endpoints:
        paths_seen: List[tuple] = []
        first_seen_at: Dict[tuple, int] = {}
        for i in range(traceroutes):
            sweep = tracer.sweep(endpoint.ip, world.control_domain, "http")
            path = tuple(
                ip for _, ip in sorted(sweep.hop_ips().items()) if ip
            )
            if path not in first_seen_at:
                first_seen_at[path] = i + 1
            paths_seen.append(path)
        unique = len(first_seen_at)
        max_unique = max(max_unique, unique)
        # Smallest n such that the paths seen in the first n traces
        # cover >= 90% of all observed traceroutes.
        coverage_target = 0.9 * len(paths_seen)
        needed = traceroutes
        for n in range(1, traceroutes + 1):
            covered_paths = {p for p, first in first_seen_at.items() if first <= n}
            covered = sum(1 for p in paths_seen if p in covered_paths)
            if covered >= coverage_target:
                needed = n
                break
        traces_needed.append(needed)
        result.rows.append((endpoint.name, unique, needed))
    avg_needed = sum(traces_needed) / len(traces_needed)
    # The paper singles out one endpoint with extreme variance (>100
    # unique paths); its calibration target (11 repetitions) describes
    # the typical endpoint, so report the average both ways.
    trimmed = sorted(traces_needed)[:-1] if len(traces_needed) > 1 else traces_needed
    avg_trimmed = sum(trimmed) / len(trimmed)
    result.extra["avg_traces_for_90pct"] = avg_needed
    result.extra["avg_traces_excluding_outlier"] = avg_trimmed
    result.extra["max_unique_paths"] = max_unique
    result.notes.append(
        f"avg traces for 90% coverage: {avg_needed:.1f}"
        f" ({avg_trimmed:.1f} excluding the pathological endpoint;"
        " paper: 11); max unique paths on one endpoint:"
        f" {max_unique} (paper: >100)"
    )
    return result
