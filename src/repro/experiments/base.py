"""Common result type for experiment reproductions.

Every experiment module exposes ``run(...) -> ExperimentResult``; the
result carries the table rows it reproduces, a rendered text block, and
the paper's reference values so EXPERIMENTS.md can be generated from
the same source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass
class ExperimentResult:
    """The output of one table/figure reproduction."""

    experiment_id: str  # e.g. "table1", "fig5"
    title: str
    headers: List[str] = field(default_factory=list)
    rows: List[Tuple] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    paper_reference: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """A fixed-width text table (what the benches print)."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.headers:
            widths = [
                max(
                    len(str(self.headers[i])),
                    max((len(str(row[i])) for row in self.rows), default=0),
                )
                for i in range(len(self.headers))
            ]
            lines.append(
                "  ".join(
                    str(h).ljust(widths[i]) for i, h in enumerate(self.headers)
                )
            )
            lines.append("  ".join("-" * w for w in widths))
            for row in self.rows:
                lines.append(
                    "  ".join(
                        str(cell).ljust(widths[i]) for i, cell in enumerate(row)
                    )
                )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def row_dict(self, key_column: int = 0) -> Dict[Any, Tuple]:
        return {row[key_column]: row for row in self.rows}


def percent(part: int, whole: int) -> float:
    """Percentage helper tolerant of empty denominators."""
    return 100.0 * part / whole if whole else 0.0
