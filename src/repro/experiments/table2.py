"""Table 2: the CenFuzz strategy catalog with permutation counts."""

from __future__ import annotations

from ..core.cenfuzz.strategies import strategy_catalog
from .base import ExperimentResult

PAPER_TABLE2 = {
    # strategy display name: permutation count (Table 2's NP column)
    "Get Word Alt.": 6,
    "Http Word Alt.": 16,
    "Host Word Alt.": 7,
    "Path Alt.": 8,
    "Hostname Alt.": 5,
    "Hostname TLD Alt.": 10,
    "Host. Subdomain Alt.": 10,
    "Header Alt.": 59,
    "Get Word Cap.": 8,
    "Http Word Cap.": 16,
    "Host Word Cap.": 16,
    "Get Word Rem.": 7,
    "Http Word Rem.": 167,
    "Host Word Rem.": 63,
    "Http Delimiter Rem.": 3,
    "Hostname Pad.": 9,
    "Min Version Alt.": 4,
    "Max Version Alt.": 4,
    "CipherSuite Alt.": 25,
    "Client Certificate Alt.": 3,
    "SNI Alt.": 4,
    "SNI TLD Alt.": 10,
    "SNI Subdomain Alt.": 10,
    "SNI Pad.": 9,
}


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table2",
        title="CenFuzz HTTP request and TLS Client Hello strategies (Table 2)",
        headers=["Category", "Strategy", "Protocol", "NP", "PaperNP", "Match"],
        paper_reference={"table2": PAPER_TABLE2},
    )
    for category, strategy, protocol, count in sorted(
        strategy_catalog(), key=lambda r: (r[2], r[0], r[1])
    ):
        paper_np = PAPER_TABLE2.get(strategy)
        result.rows.append(
            (
                category,
                strategy,
                protocol.upper(),
                count,
                paper_np if paper_np is not None else "-",
                "yes" if paper_np == count else "NO",
            )
        )
    total = sum(row[3] for row in result.rows)
    result.notes.append(f"total permutations: {total} (HTTP 410 + TLS 69)")
    return result
