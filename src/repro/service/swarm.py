"""Synthetic client swarm: many tenants hammering the service at once.

Reproduces the deployment shape of the real platforms (Centinel-style
clients submitting measurement requests to a shared backend): a fleet
of tenants repeatedly requesting measurements drawn from a skewed
popularity distribution — the duplicate-heavy workload the coalescing
layer exists for. This drives ``repro serve`` and the CI smoke job.

``verify=True`` re-executes every distinct delivered unit directly on a
fresh serial :class:`~repro.experiments.executor.Toolset` and
byte-compares the serialized payloads — the swarm-scale version of the
golden-digest identity check.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..experiments.campaign import CampaignConfig, trace_units_for
from ..experiments.executor import Toolset
from ..netsim.faults import FaultPlan
from ..telemetry import RunReport
from .jobs import ProbeRequest, UnitResult, WorldKey
from .queue import CampaignService, ServiceConfig


@dataclass
class SwarmConfig:
    """Shape of one synthetic swarm run."""

    country: str = "AZ"
    seed: Optional[int] = 7
    scale: Optional[float] = 0.35
    fault_plan: Optional[FaultPlan] = None
    requests: int = 1000
    tenants: int = 8
    interleave_seed: int = 0
    repetitions: int = 2
    max_endpoints: Optional[int] = 4
    #: Max units per request (each request draws 1..N).
    units_per_request: int = 2
    #: Popularity-skew exponent: higher = more duplicate-heavy
    #: (index ~ U^skew over the unit pool).
    skew: float = 2.0
    #: Byte-compare every delivered payload against a direct serial run.
    verify: bool = False


@dataclass
class SwarmReport:
    """What one swarm run did, plus the service's own RunReport."""

    stats: Dict[str, float]
    run_report: RunReport
    distinct_units: int
    delivered: int
    #: None when verification was not requested.
    verified: Optional[bool] = None
    #: Serialized payload of every delivery, in delivery order — the
    #: per-request result feed (``repro serve --out`` persists it).
    payloads: List[Dict] = field(default_factory=list)

    def render(self) -> str:
        stats = self.stats
        lines = [
            "service swarm:",
            f"  requests            {int(stats['requests'])}",
            f"  units requested     {int(stats['units_requested'])}"
            f" ({self.distinct_units} distinct)",
            f"  units executed      {int(stats['units_executed'])}",
            f"  coalesced           {int(stats['coalesced'])}"
            f" (hit rate {stats['coalescing_hit_rate']:.1%})",
            f"  rate-limited waits  {int(stats['rate_limited_waits'])}",
            f"  backpressure waits  {int(stats['backpressure_waits'])}",
            f"  max queue depth     {int(stats['max_queue_depth'])}",
            f"  unit failures       {int(stats['unit_failures'])}"
            f" (retries {int(stats['unit_retries'])})",
            f"  delivered results   {self.delivered}",
        ]
        if self.verified is not None:
            lines.append(
                "  byte-identity       "
                + ("VERIFIED vs direct run" if self.verified else "FAILED")
            )
        return "\n".join(lines)


def _skewed_index(rng: random.Random, size: int, skew: float) -> int:
    return min(size - 1, int(size * rng.random() ** skew))


async def run_swarm(
    swarm: Optional[SwarmConfig] = None,
    service_config: Optional[ServiceConfig] = None,
) -> SwarmReport:
    """Run one synthetic swarm against a fresh service instance."""
    swarm = swarm or SwarmConfig()
    if service_config is None:
        # Defaults sized to actually exercise the flow-control paths:
        # small pending bound, throttled tenants.
        service_config = ServiceConfig(max_pending=16, rate=2.0, burst=4)
    campaign_config = CampaignConfig(
        repetitions=swarm.repetitions, max_endpoints=swarm.max_endpoints
    )
    world_key = WorldKey(
        country=swarm.country,
        seed=swarm.seed,
        scale=swarm.scale,
        fault_plan=swarm.fault_plan,
    )
    delivered: List[UnitResult] = []
    async with CampaignService(service_config) as service:
        world = service.world_for(world_key)
        pool = trace_units_for(world, campaign_config)
        rng = random.Random(swarm.interleave_seed)
        requests = []
        for _ in range(swarm.requests):
            size = rng.randint(1, max(1, swarm.units_per_request))
            units = tuple(
                pool[_skewed_index(rng, len(pool), swarm.skew)]
                for _ in range(size)
            )
            requests.append(
                ProbeRequest(
                    tenant=f"client-{rng.randrange(max(1, swarm.tenants)):03d}",
                    world=world_key,
                    units=units,
                    repetitions=swarm.repetitions,
                    priority=rng.randrange(3),
                )
            )
        streams = await asyncio.gather(
            *(service.submit(request) for request in requests)
        )
        for stream in streams:
            delivered.extend(await stream.collect())
        stats = service.stats()
        run_report = service.build_report(
            meta={
                "country": swarm.country,
                "requests": swarm.requests,
                "tenants": swarm.tenants,
                "interleave_seed": swarm.interleave_seed,
            }
        )
    distinct = {r.key for r in delivered}
    report = SwarmReport(
        stats=stats,
        run_report=run_report,
        distinct_units=len(distinct),
        delivered=len(delivered),
        payloads=[r.payload for r in delivered if r.payload is not None],
    )
    if swarm.verify:
        report.verified = _verify_against_direct(swarm, delivered)
    return report


def _verify_against_direct(
    swarm: SwarmConfig, delivered: List[UnitResult]
) -> bool:
    """Byte-compare delivered payloads with a direct serial execution.

    Checks both identities the service promises: (a) every delivery of
    one work key carried the same bytes, and (b) those bytes equal what
    a fresh serial toolset produces for the same unit.
    """
    from ..persist import unit_result_to_dict

    world = WorldKey(
        country=swarm.country,
        seed=swarm.seed,
        scale=swarm.scale,
        fault_plan=swarm.fault_plan,
    ).build()
    toolset = Toolset.build(world, swarm.repetitions)
    by_key: Dict[Tuple, Tuple[UnitResult, str]] = {}
    for result in delivered:
        if result.error is not None or result.payload is None:
            return False
        blob = json.dumps(result.payload, sort_keys=True)
        seen = by_key.get(result.key)
        if seen is None:
            by_key[result.key] = (result, blob)
        elif seen[1] != blob:
            return False  # two deliveries of one unit differed
    for result, blob in by_key.values():
        if result.kind == "trace":
            direct = toolset.run_trace(result.unit)
        else:
            direct = toolset.run_fuzz(result.unit)
        direct_blob = json.dumps(
            unit_result_to_dict(result.kind, direct), sort_keys=True
        )
        if direct_blob != blob:
            return False
    return True
