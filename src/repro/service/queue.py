"""The job queue: coalescing, priorities, rate limits, backpressure.

Single-threaded by design: the service runs inside one asyncio event
loop and executes work units synchronously on it, one at a time,
through :meth:`~repro.experiments.executor.CampaignExecutor.run_unit`.
That gives per-unit atomicity for free — no unit ever observes another
unit's partial state — and combined with the executor's ``prepare_unit``
reset protocol it yields the service's hard invariant:

    **Scheduling decides when a unit runs, never what it computes.**
    Per-work-unit results are byte-identical to a direct serial
    ``run_campaign`` of the same configuration, regardless of request
    interleaving, tenant mix, priorities, or coalescing.

Flow control, all surfaced as ``service.*`` telemetry counters:

* **Coalescing** — the unit's content key (:func:`~repro.service.jobs.
  work_key`) indexes a unit-state table; duplicate submissions attach
  to the pending/running entry (or are answered straight from the
  done-cache) instead of enqueueing a second execution.
* **Rate limiting** — per-tenant token buckets; one token admits one
  unit (coalesced or not: tokens price tenant *demand*, not backend
  work). Buckets refill on every service tick — a tick follows each
  dispatched unit, and an idle dispatcher ticks whenever submitters are
  parked on empty buckets, so throttling can never deadlock.
* **Backpressure** — admission of *new* (non-coalesced) units awaits a
  bounded count of queued-not-yet-started units. Duplicates are never
  back-pressured; they add no backend work.
* **Priorities** — a binary heap on ``(priority, admission_seq)``:
  lower priority value first, FIFO within a priority level.
* **Retry-or-report** — a unit whose worker process died
  (:class:`~repro.experiments.executor.ExecutorError`) gets a fresh
  executor and up to ``max_retries`` retries; if it keeps failing the
  error is *delivered* to every subscriber as a failed
  :class:`~repro.service.jobs.UnitResult` and the service keeps
  serving. The queue never hangs on a dead worker.
"""

from __future__ import annotations

import asyncio
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..experiments.executor import CampaignExecutor, ExecutorError, unit_work_key
from ..geo.countries import StudyWorld
from ..persist import (
    UnitCache,
    unit_cache_key,
    unit_result_from_dict,
    unit_result_to_dict,
)
from ..telemetry import RunReport, Telemetry, wall_now
from .jobs import (
    ProbeRequest,
    ResultStream,
    ServiceError,
    UnitResult,
    WorldKey,
    kind_of,
    work_key,
)

_PENDING = "pending"
_RUNNING = "running"
_DONE = "done"
_FAILED = "failed"


@dataclass
class ServiceConfig:
    """Operational knobs for one :class:`CampaignService`."""

    #: Backpressure bound: max distinct work units queued-but-not-started.
    #: Admission of new units awaits below this depth.
    max_pending: int = 64
    #: Per-tenant token-bucket refill, in tokens per service tick
    #: (``None`` disables rate limiting). One token admits one unit.
    rate: Optional[float] = None
    #: Token-bucket capacity: how many units a tenant may burst-admit.
    burst: int = 8
    #: Retries (on a rebuilt executor) for units whose worker died.
    max_retries: int = 1
    #: Worker processes per world executor (``None`` = in-process).
    workers: Optional[int] = None
    #: Directory for a persistent :class:`~repro.persist.UnitCache`.
    #: When set, completed unit payloads survive service restarts: a
    #: fresh service answers previously-computed units from disk
    #: without re-simulating (``service.cache_restored`` counter).
    #: ``None`` keeps the service memory-only, as before.
    cache_dir: Optional[str] = None


class _TokenBucket:
    __slots__ = ("rate", "burst", "tokens")

    def __init__(self, rate: Optional[float], burst: int) -> None:
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)

    def try_take(self) -> bool:
        if self.rate is None:
            return True
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def refill(self) -> None:
        if self.rate is not None:
            self.tokens = min(self.burst, self.tokens + self.rate)


@dataclass
class _UnitState:
    """One distinct work unit's lifecycle inside the service."""

    key: Tuple
    world: WorldKey
    kind: str
    unit: object
    repetitions: int
    priority: int
    seq: int
    status: str = _PENDING
    # (stream, coalesced) pairs awaiting this unit's completion.
    subscribers: List[Tuple[ResultStream, bool]] = field(default_factory=list)
    result: object = None
    payload: Optional[Dict] = None
    error: Optional[str] = None
    attempts: int = 0


class CampaignService:
    """An asyncio front end serving the measurement engine to many clients.

    Lifecycle::

        async with CampaignService(ServiceConfig(...)) as service:
            stream = await service.submit(request)
            async for unit_result in stream:
                ...

    See the module docstring for the flow-control model and the
    determinism-under-interleaving contract.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        # The service always carries an active sink: its counters ARE
        # the ops surface (hit rate, queue depth, retries) that stats()
        # and build_report() expose.
        if telemetry is None or not telemetry.enabled:
            telemetry = Telemetry()
        self.telemetry = telemetry
        self._worlds: Dict[WorldKey, StudyWorld] = {}
        self._executors: Dict[Tuple[WorldKey, int], CampaignExecutor] = {}
        self._states: Dict[Tuple, _UnitState] = {}
        self._heap: List[Tuple[int, int, Tuple]] = []
        self._seq = 0
        self._pending = 0  # distinct units queued-but-not-started
        self._buckets: Dict[str, _TokenBucket] = {}
        self._progress = asyncio.Condition()
        self._wake = asyncio.Event()
        self._dispatcher: Optional[asyncio.Task] = None
        self._running = False
        self._token_waiters = 0
        self.max_depth = 0
        # Cross-restart persistence: payloads of completed units, keyed
        # by the same content hash the epoch scheduler uses (so an
        # observatory's cache and a service's cache interoperate).
        self._cache: Optional[UnitCache] = None
        if self.config.cache_dir is not None:
            self._cache = UnitCache(
                self.config.cache_dir, telemetry=self.telemetry
            )

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> "CampaignService":
        if not self._running:
            self._running = True
            self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        return self

    async def stop(self) -> None:
        self._running = False
        self._wake.set()
        # Snapshot-and-clear before awaiting: a start() racing this
        # stop() would otherwise have its fresh dispatcher clobbered by
        # the stale write after the await (RP802's check-then-act shape).
        dispatcher = self._dispatcher
        self._dispatcher = None
        if dispatcher is not None:
            await dispatcher
        for executor in self._executors.values():
            executor.close()
        self._executors.clear()

    async def __aenter__(self) -> "CampaignService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- worlds and executors -----------------------------------------

    def world_for(self, key: WorldKey) -> StudyWorld:
        """The shared world instance for ``key`` (built on first use)."""
        world = self._worlds.get(key)
        if world is None:
            world = key.build()
            self._worlds[key] = world
        return world

    def _executor_for(
        self, world_key: WorldKey, repetitions: int
    ) -> CampaignExecutor:
        ekey = (world_key, repetitions)
        executor = self._executors.get(ekey)
        if executor is None:
            executor = CampaignExecutor(
                self.world_for(world_key),
                repetitions=repetitions,
                workers=self.config.workers,
                telemetry=self.telemetry,
            )
            self._executors[ekey] = executor
        return executor

    def _discard_executor(self, world_key: WorldKey, repetitions: int) -> None:
        executor = self._executors.pop((world_key, repetitions), None)
        if executor is not None:
            executor.close()

    # -- submission ---------------------------------------------------

    async def submit(self, request: ProbeRequest) -> ResultStream:
        """Admit one request; returns its :class:`ResultStream`.

        Awaits per-tenant rate-limit tokens and (for new units)
        backpressure capacity — callers therefore experience admission
        control, not an unbounded fire-and-forget queue.
        """
        if not self._running:
            raise ServiceError(
                "service is not running — enter 'async with "
                "CampaignService(...)' or await start() first"
            )
        tel = self.telemetry
        tel.count("service.requests")
        stream = ResultStream(len(request.units))
        bucket = self._buckets.get(request.tenant)
        if bucket is None:
            bucket = _TokenBucket(self.config.rate, self.config.burst)
            self._buckets[request.tenant] = bucket
        for unit in request.units:
            tel.count("service.units_requested")
            await self._admit_tokens(bucket)
            key = work_key(request.world, unit, request.repetitions)
            state = self._states.get(key)
            if state is None and self._cache is not None:
                restored = self._restore_from_cache(key, request, unit)
                if restored is not None:
                    # Restored units add no backend work, so like
                    # coalesced duplicates they bypass backpressure.
                    stream._deliver(
                        self._result_for(restored, coalesced=False)
                    )
                    continue
            if state is None:
                await self._admit_backpressure()
                # Re-check: while this task awaited capacity, another
                # submitter may have admitted the same unit. Missing
                # this re-check double-enqueues the key and orphans the
                # first state's subscribers.
                state = self._states.get(key)
            if state is not None:
                tel.count("service.coalesced")
                if state.status in (_DONE, _FAILED):
                    tel.count("service.coalesced_cached")
                    stream._deliver(self._result_for(state, coalesced=True))
                else:
                    tel.count("service.coalesced_inflight")
                    state.subscribers.append((stream, True))
                continue
            self._seq += 1
            state = _UnitState(
                key=key,
                world=request.world,
                kind=kind_of(unit),
                unit=unit,
                repetitions=request.repetitions,
                priority=request.priority,
                seq=self._seq,
            )
            state.subscribers.append((stream, False))
            self._states[key] = state
            heapq.heappush(self._heap, (request.priority, self._seq, key))
            self._pending += 1
            if self._pending > self.max_depth:
                self.max_depth = self._pending
            tel.count("service.units_enqueued")
            self._wake.set()
            # Yield so the dispatcher can interleave with bulk
            # submissions instead of the whole batch landing first.
            await asyncio.sleep(0)
        return stream

    def _persist_key(
        self, world: WorldKey, kind: str, unit, repetitions: int
    ) -> str:
        fault_plan = world.fault_plan
        identity = [
            world.country.upper(),
            world.seed,
            world.scale,
            fault_plan.to_dict() if fault_plan is not None else None,
        ]
        return unit_cache_key(
            identity, unit_work_key(kind, unit, repetitions)
        )

    def _restore_from_cache(
        self, key: Tuple, request: ProbeRequest, unit
    ) -> Optional[_UnitState]:
        """A DONE state rebuilt from the persistent cache, or None."""
        kind = kind_of(unit)
        entry = self._cache.get(
            self._persist_key(request.world, kind, unit, request.repetitions)
        )
        if entry is None or entry["kind"] != kind:
            return None
        self.telemetry.count("service.cache_restored")
        self._seq += 1
        state = _UnitState(
            key=key,
            world=request.world,
            kind=kind,
            unit=unit,
            repetitions=request.repetitions,
            priority=request.priority,
            seq=self._seq,
            status=_DONE,
        )
        state.payload = entry["payload"]
        state.result = unit_result_from_dict(kind, entry["payload"])
        self._states[key] = state
        return state

    async def _admit_tokens(self, bucket: _TokenBucket) -> None:
        if bucket.try_take():
            return
        # Counted once per blocked admission (not per recheck): the
        # number of unit admissions the rate limiter actually delayed.
        self.telemetry.count("service.rate_limited_waits")
        async with self._progress:
            while not bucket.try_take():
                self._token_waiters += 1
                self._wake.set()
                try:
                    await self._progress.wait()
                finally:
                    self._token_waiters -= 1

    async def _admit_backpressure(self) -> None:
        if self._pending < self.config.max_pending:
            return
        self.telemetry.count("service.backpressure_waits")
        async with self._progress:
            while self._pending >= self.config.max_pending:
                self._wake.set()
                await self._progress.wait()

    # -- dispatch -----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while self._running:
            if self._heap:
                _, _, key = heapq.heappop(self._heap)
                state = self._states[key]
                self._pending -= 1
                state.status = _RUNNING
                self._execute(state)
                await self._tick()
            elif self._token_waiters:
                # Submitters are parked on empty buckets with nothing
                # in flight to drive refills: tick so rate limiting
                # throttles contention without deadlocking an idle
                # queue.
                await self._tick()
            else:
                self._wake.clear()
                if self._heap or self._token_waiters or not self._running:
                    continue
                await self._wake.wait()

    async def _tick(self) -> None:
        """One service tick: refill every bucket, wake every waiter."""
        for tenant in sorted(self._buckets):
            self._buckets[tenant].refill()
        async with self._progress:
            self._progress.notify_all()
        # Hand the loop to woken submitters before the next dispatch.
        await asyncio.sleep(0)

    def _execute(self, state: _UnitState) -> None:
        """Run one unit to completion (or final failure) and fan out.

        Synchronous on the event loop: per-unit atomicity is structural,
        not locked-for.
        """
        tel = self.telemetry
        last_error: Optional[BaseException] = None
        attempts = 1 + max(0, self.config.max_retries)
        for attempt in range(attempts):
            state.attempts = attempt + 1
            executor = self._executor_for(state.world, state.repetitions)
            wall0 = wall_now()
            try:
                result, snapshot = executor.run_unit(
                    state.kind, state.unit, collect=True
                )
            except ExecutorError as exc:
                last_error = exc
                # The executor's pool is broken; rebuild it for the
                # retry (and for every later unit on this world).
                self._discard_executor(state.world, state.repetitions)
                if attempt + 1 < attempts:
                    tel.count("service.unit_retries")
                    continue
                tel.count("service.unit_failures")
                break
            except Exception as exc:  # defensive: report, never hang
                last_error = exc
                tel.count("service.unit_failures")
                break
            state.status = _DONE
            state.result = result
            state.payload = unit_result_to_dict(state.kind, result)
            if self._cache is not None:
                self._cache.put(
                    self._persist_key(
                        state.world, state.kind, state.unit, state.repetitions
                    ),
                    state.kind,
                    state.payload,
                )
            if snapshot is not None:
                tel.merge_snapshot(snapshot)
                tel.add_virtual("service.unit", snapshot["virtual_seconds"])
                tel.record_unit_wall(
                    "service", snapshot["wall_seconds"], snapshot["pid"]
                )
            else:
                # Pool mode with collection disabled at pool init still
                # contributes to the latency surface.
                tel.record_unit_wall("service", wall_now() - wall0, 0)
            tel.count("service.units_executed")
            self._fanout(state)
            return
        state.status = _FAILED
        state.error = f"{type(last_error).__name__}: {last_error}"
        self._fanout(state)

    def _fanout(self, state: _UnitState) -> None:
        for stream, coalesced in state.subscribers:
            stream._deliver(self._result_for(state, coalesced=coalesced))
        state.subscribers = []

    def _result_for(self, state: _UnitState, coalesced: bool) -> UnitResult:
        return UnitResult(
            key=state.key,
            kind=state.kind,
            unit=state.unit,
            result=state.result,
            payload=state.payload,
            error=state.error,
            coalesced=coalesced,
            attempts=state.attempts,
        )

    # -- observability ------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Live operational stats, derived from the service counters."""
        counters = self.telemetry.counters
        requested = counters.get("service.units_requested", 0)
        coalesced = counters.get("service.coalesced", 0)
        return {
            "requests": counters.get("service.requests", 0),
            "units_requested": requested,
            "units_executed": counters.get("service.units_executed", 0),
            "coalesced": coalesced,
            "coalescing_hit_rate": (coalesced / requested) if requested else 0.0,
            "rate_limited_waits": counters.get("service.rate_limited_waits", 0),
            "backpressure_waits": counters.get("service.backpressure_waits", 0),
            "unit_retries": counters.get("service.unit_retries", 0),
            "unit_failures": counters.get("service.unit_failures", 0),
            "max_queue_depth": self.max_depth,
        }

    def build_report(self, meta: Optional[Dict] = None) -> RunReport:
        """Freeze the service sink into a RunReport.

        Queue depth and the coalescing hit rate are wall-layer facts
        (they depend on request interleaving, which must never enter
        the identity sections).
        """
        stats = self.stats()
        return self.telemetry.build_report(
            meta=dict(meta or {}),
            wall_extra={
                "queue_depth_max": self.max_depth,
                "coalescing_hit_rate": round(
                    stats["coalescing_hit_rate"], 4
                ),
            },
        )
