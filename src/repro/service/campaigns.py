"""Drive a full country campaign *through* the service queue.

This is the determinism-under-interleaving proof in executable form: a
campaign whose CenTrace and CenFuzz units were submitted by many
tenants, in seeded shuffled order, duplicate-heavy, at mixed
priorities, must reassemble into a
:class:`~repro.experiments.campaign.CountryCampaign` that serializes
byte-identically to a direct serial
:func:`~repro.experiments.run_campaign` — the golden digests in
``tests/experiments/test_golden_digest.py`` check exactly that.

CenProbe stays serial in the caller (as in ``run_campaign``): it reads
only static topology, so there is nothing to coalesce or reset.
"""

from __future__ import annotations

import asyncio
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cenprobe import CenProbe
from ..experiments.campaign import (
    CampaignConfig,
    CountryCampaign,
    fuzz_targets_for,
    trace_units_for,
)
from ..experiments.executor import VANTAGE_REMOTE, FuzzUnit
from .jobs import ProbeRequest, ServiceError, UnitResult, WorldKey, work_key
from .queue import CampaignService


async def run_campaign_via_service(
    service: CampaignService,
    country: str,
    config: Optional[CampaignConfig] = None,
    *,
    seed: Optional[int] = None,
    scale: Optional[float] = None,
    tenants: int = 4,
    interleave_seed: int = 0,
) -> CountryCampaign:
    """Collect a full campaign by submitting its units to ``service``.

    ``interleave_seed`` controls the request shuffle/duplication/tenant
    assignment — by the service's determinism contract, it must have no
    observable effect on the returned campaign's content.
    """
    config = config or CampaignConfig()
    # run_campaign installs config.fault_plan on an existing world; the
    # service's shared worlds are keyed and *built* with the plan, which
    # is equivalent (WorldSpec.build threads it through construction).
    world_key = WorldKey(
        country=country, seed=seed, scale=scale, fault_plan=config.fault_plan
    )
    world = service.world_for(world_key)
    campaign = CountryCampaign(world=world, config=config)

    units = trace_units_for(world, config)
    by_key = await _submit_interleaved(
        service, world_key, units, config, tenants, interleave_seed
    )
    ordered = [
        by_key[work_key(world_key, unit, config.repetitions)] for unit in units
    ]
    n_remote = sum(1 for u in units if u.vantage == VANTAGE_REMOTE)
    campaign.remote_results = [r.result for r in ordered[:n_remote]]
    campaign.in_country_results = [r.result for r in ordered[n_remote:]]

    if config.run_probe:
        prober = CenProbe(world.topology)
        for ip in campaign.potential_device_ips():
            campaign.probe_reports[ip] = prober.scan(ip)

    if config.run_fuzz:
        fuzz_units = [
            FuzzUnit(*target) for target in fuzz_targets_for(campaign, config)
        ]
        if fuzz_units:
            fuzz_by_key = await _submit_interleaved(
                service,
                world_key,
                fuzz_units,
                config,
                tenants,
                interleave_seed + 1,
            )
            campaign.fuzz_reports = [
                fuzz_by_key[
                    work_key(world_key, unit, config.repetitions)
                ].result
                for unit in fuzz_units
            ]
    return campaign


async def _submit_interleaved(
    service: CampaignService,
    world_key: WorldKey,
    units: Sequence,
    config: CampaignConfig,
    tenants: int,
    interleave_seed: int,
    duplication: float = 0.5,
) -> Dict[Tuple, UnitResult]:
    """Submit ``units`` as a shuffled duplicate-heavy multi-tenant mix.

    Returns one :class:`UnitResult` per distinct work key; raises
    :class:`ServiceError` if any unit failed.
    """
    rng = random.Random(interleave_seed)
    submissions = list(units)
    if units:
        submissions.extend(
            rng.choice(units) for _ in range(int(len(units) * duplication))
        )
    rng.shuffle(submissions)
    requests = []
    index = 0
    while index < len(submissions):
        size = rng.randint(1, 3)
        batch = tuple(submissions[index : index + size])
        index += size
        requests.append(
            ProbeRequest(
                tenant=f"tenant-{rng.randrange(max(1, tenants))}",
                world=world_key,
                units=batch,
                repetitions=config.repetitions,
                priority=rng.randrange(3),
            )
        )
    streams = await asyncio.gather(
        *(service.submit(request) for request in requests)
    )
    results: Dict[Tuple, UnitResult] = {}
    for stream in streams:
        for result in await stream.collect():
            if result.error is not None:
                raise ServiceError(
                    f"work unit {result.key!r} failed after "
                    f"{result.attempts} attempt(s): {result.error}"
                )
            results[result.key] = result
    return results
