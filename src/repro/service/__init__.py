"""Campaign-as-a-service: an asyncio job queue over the campaign engine.

Real censorship-measurement platforms are standing services: many
vantage clients (ICLab nodes, Centinel-style probes) continuously
submit measurement requests to a shared backend, and the backend — not
each client — decides what actually runs. This package puts that front
end over the repo's campaign engine:

* :class:`CampaignService` (``queue.py``) — the queue itself:
  per-tenant rate limits, priorities, request **coalescing** (identical
  work units execute once and fan out to every subscriber), bounded
  backpressure, and retry-or-report on worker death.
* ``jobs.py`` — the request/result data model (:class:`WorldKey`,
  :class:`ProbeRequest`, :class:`UnitResult`, :class:`ResultStream`).
* :func:`run_campaign_via_service` (``campaigns.py``) — drives a whole
  country campaign through the queue as shuffled, duplicate-heavy
  multi-tenant requests and reassembles a
  :class:`~repro.experiments.campaign.CountryCampaign` that is
  byte-identical to a direct :func:`~repro.experiments.run_campaign`.
* :func:`run_swarm` (``swarm.py``) — the synthetic client swarm behind
  ``repro serve`` and the CI smoke job.

The load-bearing invariant: **scheduling decides when a unit runs,
never what it computes.** Every unit executes through the executor's
``prepare_unit`` reset protocol, so its result is a pure function of
(world spec, unit content, repetitions) — request interleaving, tenant
mix, priorities and coalescing cannot change a single byte.
"""

from .jobs import (
    ProbeRequest,
    ResultStream,
    ServiceError,
    UnitResult,
    WorldKey,
    work_key,
)
from .queue import CampaignService, ServiceConfig
from .campaigns import run_campaign_via_service
from .swarm import SwarmConfig, SwarmReport, run_swarm

__all__ = [
    "CampaignService",
    "ServiceConfig",
    "ProbeRequest",
    "ResultStream",
    "ServiceError",
    "UnitResult",
    "WorldKey",
    "work_key",
    "run_campaign_via_service",
    "SwarmConfig",
    "SwarmReport",
    "run_swarm",
]
