"""Request/result data model for the campaign service.

A **request** is what a tenant submits: a batch of work units against
one shared world. A **work unit** is the unit of coalescing; its key is
pure content — world identity plus the executor's canonical unit key —
so two requests naming the same measurement share one execution
regardless of tenant, submission order, or interleaving.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..experiments.executor import FuzzUnit, TraceUnit, unit_work_key
from ..geo.countries import StudyWorld, build_world
from ..netsim.faults import FaultPlan


class ServiceError(RuntimeError):
    """The service could not accept or complete a request."""


@dataclass(frozen=True)
class WorldKey:
    """Identity of a shared study world.

    Worlds are pure functions of (country, seed, scale, fault plan), so
    this frozen tuple both names the world for coalescing *and* suffices
    to build it. A fault plan carried here is installed at construction
    time — equivalent to ``run_campaign`` installing ``config.fault_plan``
    on an already-built world.
    """

    country: str
    seed: Optional[int] = None
    scale: Optional[float] = None
    fault_plan: Optional[FaultPlan] = None

    def build(self) -> StudyWorld:
        return build_world(
            self.country,
            seed=self.seed,
            scale=self.scale,
            fault_plan=self.fault_plan,
        )


Unit = Union[TraceUnit, FuzzUnit]


def kind_of(unit: Unit) -> str:
    """The executor work-unit kind ("trace" | "fuzz") for ``unit``."""
    return "trace" if isinstance(unit, TraceUnit) else "fuzz"


def work_key(world: WorldKey, unit: Unit, repetitions: int) -> Tuple:
    """Global coalescing key: world identity + canonical unit content.

    Two submissions with equal work keys are *the same measurement* —
    the determinism contract (``executor.prepare_unit``) guarantees
    byte-identical results, so the service computes one and delivers it
    to every subscriber.
    """
    return (world,) + unit_work_key(kind_of(unit), unit, repetitions)


@dataclass(frozen=True)
class ProbeRequest:
    """One tenant submission: a batch of probe work units.

    ``priority`` orders the shared queue (lower runs first); ties run in
    admission order. Rate limits and backpressure apply per *unit* at
    admission, so a large batch from one tenant cannot starve others.
    """

    tenant: str
    world: WorldKey
    units: Tuple[Unit, ...]
    repetitions: int = 3
    priority: int = 1

    def keys(self) -> List[Tuple]:
        return [work_key(self.world, u, self.repetitions) for u in self.units]


@dataclass
class UnitResult:
    """One delivered work-unit result (or failure report).

    ``payload`` is the persist-layer serialization of ``result`` —
    shared (read-only) between all subscribers of a coalesced unit.
    """

    key: Tuple
    kind: str
    unit: Unit
    result: object = None  # CenTraceResult | EndpointFuzzReport
    payload: Optional[Dict] = None
    error: Optional[str] = None
    # True when this delivery shared an execution requested elsewhere
    # (the unit was already queued, running, or done when admitted).
    coalesced: bool = False
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None


class ResultStream:
    """Per-request incremental result delivery.

    Results arrive in unit *completion* order — a coalesced unit whose
    execution was already in flight may complete before an earlier
    distinct unit from the same request. Iterate with ``async for``, or
    drain everything with :meth:`collect`; the stream terminates after
    exactly one result per submitted unit.
    """

    def __init__(self, expected: int) -> None:
        self.expected = expected
        self._queue: asyncio.Queue = asyncio.Queue()
        self._yielded = 0

    def _deliver(self, result: UnitResult) -> None:
        self._queue.put_nowait(result)

    def __aiter__(self) -> "ResultStream":
        return self

    async def __anext__(self) -> UnitResult:
        if self._yielded >= self.expected:
            raise StopAsyncIteration
        result = await self._queue.get()
        self._yielded += 1
        return result

    async def collect(self) -> List[UnitResult]:
        return [result async for result in self]
