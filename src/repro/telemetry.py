"""repro.telemetry: deterministic campaign observability.

Long measurement campaigns (CenTrace sweeps x repetitions x endpoints,
CenFuzz permutation grids, banner scans) are opaque without
instrumentation: a degraded run — retries burning probes, rate-limited
hops, fault draws eating packets — looks exactly like a healthy one.
This module provides the three primitives the rest of the repo threads
through its hot paths:

* **named counters** — monotonically increasing integer tallies
  (``centrace.probes``, ``sim.icmp_rate_limited``, ``faults.fail_open``);
* **span timers** — per-name aggregates over *two* clocks: the
  simulator's virtual clock (deterministic, part of a run's identity)
  and the wall clock (informational only);
* **a structured event log** — bounded, deterministic-order records of
  notable occurrences (blocked measurements, stage starts, evasions).

Determinism contract
--------------------

Counters, virtual-clock span aggregates and events are pure functions
of the measurement content. Serial and parallel executions of the same
campaign therefore produce **byte-identical** identity sections
(:meth:`RunReport.identity_json`), which makes telemetry a correctness
oracle on top of the executor's existing result bit-identity: the two
modes must not only produce the same results, they must do the same
*work* — probe for probe, retry for retry, fault draw for fault draw.

Wall-clock data (stage durations, per-worker unit latencies, shard
balance) lives in a separate ``wall`` section that is excluded from
identity comparison and from any test assertion about run equality.

Performance contract
--------------------

:data:`NULL_TELEMETRY` is the default everywhere. Its methods are
no-ops and instrumented hot paths guard on ``telemetry.enabled`` before
doing any work, so the uninstrumented path stays allocation-free (the
``make bench`` gate verifies this continuously).

This module is the **only** place in ``src/repro`` allowed to read the
wall clock — ``make lint`` enforces that ``time.time``/``perf_counter``
never leak into measurement code, where they would silently break the
virtual-clock determinism discipline.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

REPORT_VERSION = 1

#: Default cap on the structured event log. The cap is part of the
#: determinism contract: events merge in canonical work-unit order, so
#: which events get dropped is itself deterministic.
DEFAULT_MAX_EVENTS = 10_000


def wall_now() -> float:
    """The one sanctioned wall-clock read (monotonic seconds).

    Everything outside this module that needs wall time must call this
    instead of ``time.perf_counter()`` — see the module docstring.
    """
    return time.perf_counter()


# ---------------------------------------------------------------------------
# Telemetry sinks
# ---------------------------------------------------------------------------


class _NullSpan:
    """Reusable no-op context manager (no allocation per use)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The do-nothing default sink.

    Shares the :class:`Telemetry` surface so instrumented code never
    branches on type — only on :attr:`enabled` where the work of
    *computing* the observation would otherwise be paid.
    """

    enabled = False

    def count(self, name: str, n: int = 1) -> None:
        return None

    def add_virtual(self, name: str, seconds: float, count: int = 1) -> None:
        return None

    def add_wall(self, name: str, seconds: float) -> None:
        return None

    def event(self, kind: str, **fields) -> None:
        return None

    def span(self, name: str, sim=None) -> _NullSpan:
        return _NULL_SPAN

    def merge_snapshot(self, snapshot: Dict) -> None:
        return None

    def record_unit_wall(self, stage: str, seconds: float, pid: int) -> None:
        return None


NULL_TELEMETRY = NullTelemetry()


class _Span:
    """Context manager recording one span occurrence into a sink.

    Wall time is always measured; virtual time is measured when a
    simulator (anything with a ``clock`` attribute) is supplied. Spans
    nest freely — each records its own durations under its own name,
    which is what makes the aggregates hierarchical (``campaign`` >
    ``campaign.traces`` > ``centrace.sweep``).
    """

    __slots__ = ("_tel", "_name", "_sim", "_wall0", "_virtual0")

    def __init__(self, tel: "Telemetry", name: str, sim=None) -> None:
        self._tel = tel
        self._name = name
        self._sim = sim

    def __enter__(self) -> "_Span":
        self._wall0 = wall_now()
        self._virtual0 = self._sim.clock if self._sim is not None else 0.0
        return self

    def __exit__(self, *exc_info) -> None:
        tel = self._tel
        tel.add_wall(self._name, wall_now() - self._wall0)
        if self._sim is not None:
            tel.add_virtual(self._name, self._sim.clock - self._virtual0)
        else:
            tel.add_virtual(self._name, 0.0)


class Telemetry:
    """An active telemetry sink: counters + spans + events.

    One instance aggregates a whole campaign; the executor additionally
    creates one short-lived instance per work unit (in whichever
    process runs the unit), snapshots it, and merges the snapshots back
    into the campaign sink in canonical unit order — the discipline
    that keeps parallel runs byte-identical to serial ones.
    """

    enabled = True

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.counters: Dict[str, int] = {}
        # name -> [count, virtual_seconds]
        self._spans: Dict[str, List[float]] = {}
        # name -> wall seconds (informational)
        self._wall_spans: Dict[str, float] = {}
        # stage -> list of (wall_seconds, worker_pid) per unit
        self.unit_wall: Dict[str, List[Tuple[float, int]]] = {}
        self.events: List[Dict[str, Any]] = []
        self.events_dropped = 0
        self.max_events = max_events

    # -- recording -----------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def add_virtual(self, name: str, seconds: float, count: int = 1) -> None:
        entry = self._spans.get(name)
        if entry is None:
            entry = [0, 0.0]
            self._spans[name] = entry
        entry[0] += count
        entry[1] += seconds

    def add_wall(self, name: str, seconds: float) -> None:
        self._wall_spans[name] = self._wall_spans.get(name, 0.0) + seconds

    def span(self, name: str, sim=None) -> _Span:
        return _Span(self, name, sim)

    def event(self, kind: str, **fields) -> None:
        if len(self.events) >= self.max_events:
            self.events_dropped += 1
            return
        record = {"kind": kind}
        record.update(fields)
        self.events.append(record)

    def record_unit_wall(self, stage: str, seconds: float, pid: int) -> None:
        self.unit_wall.setdefault(stage, []).append((seconds, pid))

    # -- cross-process transport ---------------------------------------

    def snapshot(self) -> Dict:
        """A picklable dump of everything recorded so far.

        Used by worker processes to ship one unit's telemetry back to
        the parent; merged with :meth:`merge_snapshot`.
        """
        return {
            "counters": dict(self.counters),
            "spans": {k: list(v) for k, v in self._spans.items()},
            "wall_spans": dict(self._wall_spans),
            "events": list(self.events),
            "events_dropped": self.events_dropped,
        }

    def merge_snapshot(self, snapshot: Dict) -> None:
        """Fold another sink's snapshot into this one.

        Merging is order-sensitive for the event log (appends), so
        callers must merge in canonical work-unit order — the executor
        does, for both the serial and the parallel path.
        """
        for name, value in snapshot["counters"].items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, (count, virtual) in snapshot["spans"].items():
            self.add_virtual(name, virtual, count=int(count))
        for name, seconds in snapshot.get("wall_spans", {}).items():
            self.add_wall(name, seconds)
        for record in snapshot["events"]:
            if len(self.events) >= self.max_events:
                self.events_dropped += 1
            else:
                self.events.append(record)
        self.events_dropped += snapshot.get("events_dropped", 0)

    # -- reporting ------------------------------------------------------

    def build_report(
        self,
        meta: Optional[Dict] = None,
        wall_extra: Optional[Dict] = None,
    ) -> "RunReport":
        """Freeze this sink into a :class:`RunReport`.

        ``meta`` must contain only deterministic facts (country,
        repetitions, unit counts); anything run-environment-specific
        (worker count, hostnames) belongs in ``wall_extra``.
        """
        spans = {
            name: {"count": int(entry[0]), "virtual_seconds": entry[1]}
            for name, entry in sorted(self._spans.items())
        }
        wall: Dict[str, Any] = {
            "spans": {
                name: round(seconds, 6)
                for name, seconds in sorted(self._wall_spans.items())
            },
        }
        if self.unit_wall:
            stages: Dict[str, Dict] = {}
            for stage, samples in sorted(self.unit_wall.items()):
                seconds = [s for s, _ in samples]
                ordered = sorted(seconds)
                by_pid: Dict[str, int] = {}
                for _, pid in samples:
                    key = str(pid)
                    by_pid[key] = by_pid.get(key, 0) + 1
                stages[stage] = {
                    "units": len(samples),
                    "queue_depth": len(samples),
                    "unit_seconds": {
                        "min": round(min(seconds), 6),
                        "max": round(max(seconds), 6),
                        "mean": round(sum(seconds) / len(seconds), 6),
                        # Nearest-rank percentiles over per-unit wall
                        # latency (the service's p50/p99 ops surface):
                        # rank = ceil(p/100 * n), so p99 of a small
                        # sample is its max, never below p50.
                        "p50": round(
                            ordered[(50 * len(ordered) + 99) // 100 - 1], 6
                        ),
                        "p99": round(
                            ordered[(99 * len(ordered) + 99) // 100 - 1], 6
                        ),
                        "total": round(sum(seconds), 6),
                    },
                    # Shard balance: units executed per worker process.
                    "units_by_worker": dict(sorted(by_pid.items())),
                }
            wall["stages"] = stages
        if wall_extra:
            wall.update(wall_extra)
        return RunReport(
            counters=dict(sorted(self.counters.items())),
            spans=spans,
            events=list(self.events),
            events_dropped=self.events_dropped,
            wall=wall,
            meta=dict(meta or {}),
        )


# ---------------------------------------------------------------------------
# Run reports
# ---------------------------------------------------------------------------


@dataclass
class RunReport:
    """What one campaign actually did, in two layers.

    The **identity layer** (``counters``, ``spans``, ``events``,
    ``events_dropped``, ``meta``) is deterministic: byte-identical
    between serial and parallel executions of the same campaign. The
    **wall layer** is informational — stage wall durations, per-worker
    unit latency and shard balance — and is excluded from identity.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    spans: Dict[str, Dict] = field(default_factory=dict)
    events: List[Dict] = field(default_factory=list)
    events_dropped: int = 0
    wall: Dict = field(default_factory=dict)
    meta: Dict = field(default_factory=dict)

    # -- identity -------------------------------------------------------

    def identity_dict(self) -> Dict:
        """The deterministic sections only (wall clock excluded)."""
        return {
            "counters": self.counters,
            "spans": self.spans,
            "events": self.events,
            "events_dropped": self.events_dropped,
            "meta": self.meta,
        }

    def identity_json(self) -> str:
        """Canonical JSON of the identity sections.

        Tests compare this string byte-for-byte between serial and
        parallel runs of the same campaign.
        """
        return json.dumps(
            self.identity_dict(), sort_keys=True, separators=(",", ":")
        )

    # -- (de)serialization ---------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "version": REPORT_VERSION,
            "counters": self.counters,
            "spans": self.spans,
            "events": self.events,
            "events_dropped": self.events_dropped,
            "wall": self.wall,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RunReport":
        return cls(
            counters=dict(data.get("counters", {})),
            spans={k: dict(v) for k, v in data.get("spans", {}).items()},
            events=list(data.get("events", [])),
            events_dropped=int(data.get("events_dropped", 0)),
            wall=dict(data.get("wall", {})),
            meta=dict(data.get("meta", {})),
        )

    # -- rendering ------------------------------------------------------

    def render(self, max_events: int = 10) -> str:
        """Human-readable multi-line report (``repro report --run``)."""
        lines: List[str] = []
        title = "Run report"
        country = self.meta.get("country")
        if country:
            title += f" — {country} campaign"
        lines.append(title)
        lines.append("=" * len(title))
        if self.meta:
            parts = [
                f"{key}={self.meta[key]}" for key in sorted(self.meta)
            ]
            lines.append("  " + ", ".join(parts))
        if self.counters:
            lines.append("")
            lines.append("Counters")
            width = max(len(name) for name in self.counters)
            for name, value in self.counters.items():
                lines.append(f"  {name:<{width}}  {value:>10,}")
        if self.spans:
            lines.append("")
            lines.append("Spans (virtual clock)")
            width = max(len(name) for name in self.spans)
            for name, entry in self.spans.items():
                lines.append(
                    f"  {name:<{width}}  count={entry['count']:<6} "
                    f"virtual={entry['virtual_seconds']:,.1f}s"
                )
        wall_spans = self.wall.get("spans") or {}
        if wall_spans:
            lines.append("")
            lines.append("Wall clock (informational; excluded from identity)")
            width = max(len(name) for name in wall_spans)
            for name, seconds in wall_spans.items():
                lines.append(f"  {name:<{width}}  {seconds:.3f}s")
        stages = self.wall.get("stages") or {}
        for stage, info in stages.items():
            unit = info.get("unit_seconds", {})
            workers = info.get("units_by_worker", {})
            lines.append(
                f"  {stage}: {info.get('units', 0)} units, "
                f"unit wall mean={unit.get('mean', 0):.4f}s "
                f"p99={unit.get('p99', unit.get('max', 0)):.4f}s "
                f"max={unit.get('max', 0):.4f}s; "
                f"workers={{"
                + ", ".join(f"{pid}: {n}" for pid, n in workers.items())
                + "}"
            )
        if self.events:
            lines.append("")
            shown = min(len(self.events), max_events)
            suffix = f" (showing first {shown})" if shown < len(self.events) else ""
            dropped = (
                f", {self.events_dropped} dropped at cap"
                if self.events_dropped
                else ""
            )
            lines.append(f"Events: {len(self.events)}{dropped}{suffix}")
            for record in self.events[:shown]:
                kind = record.get("kind", "?")
                rest = ", ".join(
                    f"{k}={v}" for k, v in record.items() if k != "kind"
                )
                lines.append(f"  [{kind}] {rest}")
        return "\n".join(lines)
