"""Distill one epoch's classified campaign into fact assertions.

Extraction is deliberately conservative, mirroring the paper's
classification discipline: only *valid blocked* CenTrace results assert
anything, blocking mechanisms are the classifier's types (§4.1), device
identities are observed blocking-hop IPs (§4.2's localization output),
vendor names come from CenProbe banner matches (§5.2) and blockpage
fingerprints from the known-fingerprint corpus (§6.1). AS-level facts
additionally record registry metadata (name, country) so rehoming drift
is observable longitudinally.
"""

from __future__ import annotations

from typing import List, Set

from .records import (
    PRED_BLOCKS_DOMAIN,
    PRED_BLOCKS_WITH,
    PRED_HOSTS_DEVICE,
    PRED_IN_COUNTRY,
    PRED_NAMED,
    PRED_SERVES_BLOCKPAGE,
    PRED_VENDOR,
    Fact,
    entity_as,
    entity_country,
    entity_device,
)


def facts_from_campaign(campaign) -> List[Fact]:
    """All facts one campaign (or loaded campaign) asserts, sorted.

    Works on anything with the campaign result surface:
    ``remote_results``/``in_country_results`` (CenTrace),
    ``probe_reports`` (CenProbe) — both :class:`CountryCampaign` and
    :class:`~repro.persist.LoadedCampaign` qualify. The world, when
    present, contributes AS registry metadata.
    """
    facts: Set[Fact] = set()
    world = getattr(campaign, "world", None)
    country = None
    if world is not None:
        country = world.country
    else:
        meta = getattr(campaign, "meta", None) or {}
        country = meta.get("country")
    country_entity = entity_country(country) if country else None

    results = list(campaign.remote_results) + list(campaign.in_country_results)
    blocking_asns: Set[int] = set()
    for result in results:
        if not (result.blocked and result.valid):
            continue
        hop = result.blocking_hop
        hop_asn = hop.asn if hop is not None else None
        subjects = []
        if hop_asn is not None:
            subjects.append(entity_as(hop_asn))
            blocking_asns.add(hop_asn)
        if hop is not None and hop.ip is not None:
            device = entity_device(hop.ip)
            subjects.append(device)
            if hop_asn is not None:
                facts.add(Fact(entity_as(hop_asn), PRED_HOSTS_DEVICE, device))
        for subject in subjects:
            facts.add(Fact(subject, PRED_BLOCKS_WITH, result.blocking_type))
            facts.add(Fact(subject, PRED_BLOCKS_DOMAIN, result.test_domain))
            if result.blockpage_fingerprint:
                facts.add(
                    Fact(
                        subject,
                        PRED_SERVES_BLOCKPAGE,
                        result.blockpage_fingerprint,
                    )
                )
        if country_entity is not None:
            facts.add(
                Fact(country_entity, PRED_BLOCKS_DOMAIN, result.test_domain)
            )

    for ip, report in campaign.probe_reports.items():
        if report.vendor:
            facts.add(Fact(entity_device(ip), PRED_VENDOR, report.vendor))

    if world is not None:
        for asn in blocking_asns:
            info = world.asdb.as_info(asn)
            if info is None:
                continue
            facts.add(Fact(entity_as(asn), PRED_NAMED, info.name))
            facts.add(Fact(entity_as(asn), PRED_IN_COUNTRY, info.country))

    return sorted(facts, key=lambda f: (f.subject, f.predicate, f.object))
