"""The append-only fact store and its interval/transition queries.

Layout under one directory:

* ``facts.jsonl`` — one line per (fact, epoch) observation:
  ``{"subject", "predicate", "object", "epoch"}``. Append-only; nothing
  rewrites history.
* ``epochs.jsonl`` — the epoch manifest, one line per appended epoch
  (strictly increasing), carrying the per-epoch fact count. This is
  what distinguishes "fact absent because it stopped being true" from
  "fact absent because that epoch was never observed".

Queries fold observations into **validity intervals**: a fact observed
at epochs {0, 1} of an observed sequence [0, 1, 2] yields
``FactInterval(valid_from=0, valid_to=1)`` — it stopped being true at
epoch 2. ``valid_to`` of the latest observed epoch means "still true".
**Transitions** are the longitudinal payoff: for a (subject, predicate)
pair, the epochs at which the set of asserted objects changed, with the
before/after sets — "when did AS 9198 switch from RST injection to
blockpage?" is one transitions call (see ``repro facts query``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from ..persist import PersistError, read_jsonl as _read_jsonl
from ..telemetry import NULL_TELEMETRY
from .records import Fact


@dataclass(frozen=True)
class FactInterval:
    """One fact's maximal run of consecutive observed epochs."""

    fact: Fact
    valid_from: int
    valid_to: int  # inclusive; == latest observed epoch => still valid

    def to_dict(self) -> Dict:
        out = self.fact.to_dict()
        out["valid_from"] = self.valid_from
        out["valid_to"] = self.valid_to
        return out


@dataclass(frozen=True)
class Transition:
    """A (subject, predicate) object-set change between adjacent epochs."""

    subject: str
    predicate: str
    epoch: int  # first epoch at which ``after`` held
    before: Tuple[str, ...]
    after: Tuple[str, ...]

    def to_dict(self) -> Dict:
        return {
            "subject": self.subject,
            "predicate": self.predicate,
            "epoch": self.epoch,
            "before": list(self.before),
            "after": list(self.after),
        }


class FactStore:
    """Append-per-epoch fact observations with interval/transition queries."""

    FACTS = "facts.jsonl"
    EPOCHS = "epochs.jsonl"

    def __init__(
        self, directory: Union[str, Path], telemetry=NULL_TELEMETRY
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.telemetry = telemetry
        # epoch -> set of facts observed at that epoch
        self._by_epoch: Dict[int, set] = {}
        self._load()

    # -- persistence -----------------------------------------------------

    def _load(self) -> None:
        epochs_path = self.directory / self.EPOCHS
        manifest = []
        for record in _read_jsonl(epochs_path):
            try:
                manifest.append(int(record["epoch"]))
            except (KeyError, TypeError, ValueError) as exc:
                raise PersistError(
                    f"corrupt epoch manifest {epochs_path}: {exc}"
                ) from None
        for epoch in manifest:
            self._by_epoch.setdefault(epoch, set())
        facts_path = self.directory / self.FACTS
        for record in _read_jsonl(facts_path):
            try:
                epoch = int(record["epoch"])
                fact = Fact.from_dict(record)
            except (KeyError, TypeError, ValueError) as exc:
                raise PersistError(
                    f"corrupt fact record in {facts_path}: {exc}"
                ) from None
            if epoch not in self._by_epoch:
                raise PersistError(
                    f"{facts_path} holds facts for epoch {epoch}, which "
                    f"the manifest {epochs_path} never recorded"
                )
            self._by_epoch[epoch].add(fact)
        self.telemetry.count("store.facts_loaded", self.fact_count())

    def append_epoch(self, epoch: int, facts: List[Fact]) -> int:
        """Record one epoch's observations (epochs strictly increasing)."""
        observed = self.epochs()
        if observed and epoch <= observed[-1]:
            raise PersistError(
                f"fact store {self.directory} already holds epoch "
                f"{observed[-1]}; epochs append in strictly increasing "
                f"order (got {epoch})"
            )
        unique = sorted(
            set(facts), key=lambda f: (f.subject, f.predicate, f.object)
        )
        with (self.directory / self.FACTS).open("a") as handle:
            for fact in unique:
                record = fact.to_dict()
                record["epoch"] = epoch
                handle.write(json.dumps(record, ensure_ascii=False) + "\n")
        with (self.directory / self.EPOCHS).open("a") as handle:
            handle.write(
                json.dumps({"epoch": epoch, "facts": len(unique)}) + "\n"
            )
        self._by_epoch[epoch] = set(unique)
        self.telemetry.count("store.facts_appended", len(unique))
        self.telemetry.count("store.epochs_appended")
        return len(unique)

    # -- raw views -------------------------------------------------------

    def epochs(self) -> List[int]:
        return sorted(self._by_epoch)

    def fact_count(self) -> int:
        return sum(len(facts) for facts in self._by_epoch.values())

    def facts_at(self, epoch: int) -> List[Fact]:
        facts = self._by_epoch.get(epoch, set())
        return sorted(facts, key=lambda f: (f.subject, f.predicate, f.object))

    # -- queries ---------------------------------------------------------

    def _matching(
        self,
        subject: Optional[str],
        predicate: Optional[str],
        obj: Optional[str],
    ) -> Dict[Fact, List[int]]:
        """fact -> sorted observed epochs, filtered on any of s/p/o."""
        hits: Dict[Fact, List[int]] = {}
        for epoch in self.epochs():
            for fact in self._by_epoch[epoch]:
                if subject is not None and fact.subject != subject:
                    continue
                if predicate is not None and fact.predicate != predicate:
                    continue
                if obj is not None and fact.object != obj:
                    continue
                hits.setdefault(fact, []).append(epoch)
        return hits

    def intervals(
        self,
        subject: Optional[str] = None,
        predicate: Optional[str] = None,
        obj: Optional[str] = None,
    ) -> List[FactInterval]:
        """Validity intervals for every fact matching the filters.

        Consecutiveness is measured against the *observed* epoch
        sequence: with epochs [0, 2, 4] on record, a fact seen at 0 and
        2 but not 4 is one interval [0, 2] — unobserved epochs in
        between assert nothing.
        """
        observed = self.epochs()
        position = {epoch: i for i, epoch in enumerate(observed)}
        out: List[FactInterval] = []
        self.telemetry.count("store.queries")
        for fact, epochs in sorted(
            self._matching(subject, predicate, obj).items(),
            key=lambda item: (
                item[0].subject, item[0].predicate, item[0].object,
            ),
        ):
            run_start = epochs[0]
            previous = epochs[0]
            for epoch in epochs[1:]:
                if position[epoch] == position[previous] + 1:
                    previous = epoch
                    continue
                out.append(FactInterval(fact, run_start, previous))
                run_start = previous = epoch
            out.append(FactInterval(fact, run_start, previous))
        return out

    def transitions(
        self,
        subject: Optional[str] = None,
        predicate: Optional[str] = None,
    ) -> List[Transition]:
        """Object-set changes per (subject, predicate) across epochs."""
        observed = self.epochs()
        # (subject, predicate) -> epoch -> frozenset of objects
        series: Dict[Tuple[str, str], Dict[int, FrozenSet[str]]] = {}
        for fact, epochs in self._matching(subject, predicate, None).items():
            key = (fact.subject, fact.predicate)
            per_epoch = series.setdefault(key, {})
            for epoch in epochs:
                per_epoch[epoch] = per_epoch.get(epoch, frozenset()) | {
                    fact.object
                }
        out: List[Transition] = []
        self.telemetry.count("store.queries")
        for (subj, pred) in sorted(series):
            per_epoch = series[(subj, pred)]
            previous: FrozenSet[str] = frozenset()
            for index, epoch in enumerate(observed):
                current = per_epoch.get(epoch, frozenset())
                if index > 0 and current != previous:
                    out.append(
                        Transition(
                            subject=subj,
                            predicate=pred,
                            epoch=epoch,
                            before=tuple(sorted(previous)),
                            after=tuple(sorted(current)),
                        )
                    )
                previous = current
        return out
