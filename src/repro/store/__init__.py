"""Longitudinal fact store: entity/relationship records across epochs.

Modeled on internet-yellow-pages' knowledge-graph approach: instead of
per-run result directories, the observatory distills each epoch's
classified measurements into append-only **facts** —
``(subject, predicate, object)`` triples observed at an epoch — and
answers questions over time by folding the per-epoch observations into
validity intervals ("AS 9198 blocked with RST from epoch 1 through 2").
"""

from .extract import facts_from_campaign
from .facts import FactInterval, FactStore, Transition
from .observatory import ObservatorySummary, run_observatory
from .records import (
    PRED_BLOCKS_DOMAIN,
    PRED_BLOCKS_WITH,
    PRED_HOSTS_DEVICE,
    PRED_IN_COUNTRY,
    PRED_NAMED,
    PRED_SERVES_BLOCKPAGE,
    PRED_VENDOR,
    Fact,
    entity_as,
    entity_country,
    entity_device,
)

__all__ = [
    "Fact",
    "FactInterval",
    "FactStore",
    "Transition",
    "ObservatorySummary",
    "facts_from_campaign",
    "run_observatory",
    "entity_as",
    "entity_country",
    "entity_device",
    "PRED_BLOCKS_DOMAIN",
    "PRED_BLOCKS_WITH",
    "PRED_HOSTS_DEVICE",
    "PRED_IN_COUNTRY",
    "PRED_NAMED",
    "PRED_SERVES_BLOCKPAGE",
    "PRED_VENDOR",
]
