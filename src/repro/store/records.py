"""Fact records: the store's entity/relationship vocabulary.

Entities are namespaced string identifiers (``as:9198``,
``device:5.2.0.2``, ``country:KZ``) and facts are
(subject, predicate, object) triples — the same shape
internet-yellow-pages uses for its AS/prefix/country graph, minus the
graph database. A fact carries no epoch itself; the store records *when*
each fact was observed (``facts.jsonl`` assertion lines), and validity
intervals are derived at query time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

# Predicates ----------------------------------------------------------------

#: subject blocks using mechanism ``object`` (a CenTrace blocking type:
#: RST/FIN/HTTP/TIMEOUT/DNSINJECT).
PRED_BLOCKS_WITH = "blocks_with"
#: subject censors ``object`` (a domain).
PRED_BLOCKS_DOMAIN = "blocks_domain"
#: AS subject hosts censoring device ``object`` (a device entity).
PRED_HOSTS_DEVICE = "hosts_device"
#: device subject identified as vendor ``object`` (CenProbe, §5.2).
PRED_VENDOR = "vendor"
#: device subject serves blockpage fingerprint ``object`` (§6.1).
PRED_SERVES_BLOCKPAGE = "serves_blockpage"
#: AS subject registered under name ``object`` (registry metadata).
PRED_NAMED = "named"
#: AS subject geolocated in country ``object``.
PRED_IN_COUNTRY = "in_country"

PREDICATES = (
    PRED_BLOCKS_WITH,
    PRED_BLOCKS_DOMAIN,
    PRED_HOSTS_DEVICE,
    PRED_VENDOR,
    PRED_SERVES_BLOCKPAGE,
    PRED_NAMED,
    PRED_IN_COUNTRY,
)


def entity_as(asn: int) -> str:
    return f"as:{asn}"


def entity_device(ip: str) -> str:
    """A censoring device, identified by its observed blocking-hop IP."""
    return f"device:{ip}"


def entity_country(code: str) -> str:
    return f"country:{code}"


@dataclass(frozen=True)
class Fact:
    """One (subject, predicate, object) assertion."""

    subject: str
    predicate: str
    object: str

    def to_dict(self) -> Dict:
        return {
            "subject": self.subject,
            "predicate": self.predicate,
            "object": self.object,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Fact":
        return cls(
            subject=data["subject"],
            predicate=data["predicate"],
            object=data["object"],
        )
