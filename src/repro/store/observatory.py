"""The longitudinal observatory driver: epochs -> campaigns -> facts.

One call runs the whole loop the ``repro epochs`` CLI exposes: per
epoch, build the drifted world, run the incremental campaign (reusing
drift-unaffected units from the persistent cache), persist the raw
campaign directory, extract facts, and append them to the store.

Output layout under ``out_dir``::

    epoch-000/ epoch-001/ ...   save_campaign directories (raw data)
    units-cache/units.jsonl     persistent work-unit cache
    facts/facts.jsonl,epochs.jsonl   the queryable fact store
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from ..experiments.campaign import CampaignConfig
from ..experiments.epochs import EpochResult, EpochScheduler
from ..geo.drift import DriftPlan
from ..persist import UnitCache, save_campaign
from ..telemetry import NULL_TELEMETRY
from .extract import facts_from_campaign
from .facts import FactStore


@dataclass
class ObservatorySummary:
    """What one observatory run did, per epoch and in total."""

    out_dir: Path
    epoch_results: List[EpochResult] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.epoch_results)

    @property
    def total_units(self) -> int:
        return sum(r.total_units for r in self.epoch_results)

    @property
    def reused_units(self) -> int:
        return sum(r.reused_units for r in self.epoch_results)

    @property
    def reuse_rate(self) -> float:
        total = self.total_units
        return self.reused_units / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "out_dir": str(self.out_dir),
            "epochs": self.epochs,
            "total_units": self.total_units,
            "reused_units": self.reused_units,
            "reuse_rate": round(self.reuse_rate, 4),
            "per_epoch": [
                {
                    "epoch": r.epoch,
                    "total_units": r.total_units,
                    "reused_units": r.reused_units,
                    "executed_units": (
                        r.executed_trace_units + r.executed_fuzz_units
                    ),
                    "drift_ops_applied": r.drift_ops_applied,
                    "reuse_rate": round(r.reuse_rate, 4),
                }
                for r in self.epoch_results
            ],
        }


def run_observatory(
    country: str,
    out_dir: Union[str, Path],
    *,
    epochs: int,
    seed: Optional[int] = None,
    scale: Optional[float] = None,
    config: Optional[CampaignConfig] = None,
    drift_plan: Optional[DriftPlan] = None,
    workers: Optional[int] = None,
    telemetry=NULL_TELEMETRY,
) -> ObservatorySummary:
    """Run ``epochs`` epochs end-to-end into ``out_dir``.

    Re-runnable: the unit cache and fact store both persist, so a second
    invocation with more epochs continues where the first stopped (fact
    epochs must keep increasing — the store enforces it).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    cache = UnitCache(out / "units-cache", telemetry=telemetry)
    store = FactStore(out / "facts", telemetry=telemetry)
    start_epoch = store.epochs()[-1] + 1 if store.epochs() else 0
    scheduler = EpochScheduler(
        country,
        seed=seed,
        scale=scale,
        config=config,
        drift_plan=drift_plan,
        cache=cache,
        workers=workers,
        telemetry=telemetry,
    )
    summary = ObservatorySummary(out_dir=out)
    for epoch in range(start_epoch, start_epoch + epochs):
        result = scheduler.run_epoch(epoch)
        save_campaign(result.campaign, out / f"epoch-{epoch:03d}")
        store.append_epoch(epoch, facts_from_campaign(result.campaign))
        summary.epoch_results.append(result)
    return summary
