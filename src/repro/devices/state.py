"""Stateful behaviour of censorship devices.

§4.1 ("Network path variance") observes two stateful behaviours that
shape CenTrace's design: residual censorship — after one trigger, a
device keeps interfering with the 3-tuple for a while regardless of
content — and per-connection injection limits ("some middleboxes only
inject censored responses a certain number of times per TCP
connection"). Both live here, keyed on the simulator's virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..netmodel.ip import FlowKey

# What identifies a "punished" tuple for residual censorship.
RESIDUAL_3TUPLE = "3tuple"  # (client, server, server-port)
RESIDUAL_HOSTS = "hosts"  # (client, server)
RESIDUAL_OFF = "off"


@dataclass
class ResidualTracker:
    """Tracks residually-censored tuples with expiry times."""

    mode: str = RESIDUAL_OFF
    duration: float = 90.0
    _entries: Dict[Tuple, float] = field(default_factory=dict)

    def _key(self, flow: FlowKey) -> Optional[Tuple]:
        if self.mode == RESIDUAL_3TUPLE:
            return (flow.src, flow.dst, flow.dport)
        if self.mode == RESIDUAL_HOSTS:
            return (flow.src, flow.dst)
        return None

    def punish(self, flow: FlowKey, clock: float) -> None:
        key = self._key(flow)
        if key is not None:
            self._entries[key] = clock + self.duration

    def is_punished(self, flow: FlowKey, clock: float) -> bool:
        key = self._key(flow)
        if key is None:
            return False
        expiry = self._entries.get(key)
        if expiry is None:
            return False
        if clock >= expiry:
            del self._entries[key]
            return False
        return True

    def active_count(self, clock: float) -> int:
        return sum(1 for expiry in self._entries.values() if expiry > clock)


@dataclass
class FlowInjectionCounter:
    """Counts injections per flow to enforce per-connection limits."""

    limit: Optional[int] = None  # None = unlimited
    _counts: Dict[Tuple, int] = field(default_factory=dict)

    def may_inject(self, flow: FlowKey) -> bool:
        if self.limit is None:
            return True
        return self._counts.get(flow.canonical(), 0) < self.limit

    def record(self, flow: FlowKey) -> None:
        if self.limit is None:
            return
        key = flow.canonical()
        self._counts[key] = self._counts.get(key, 0) + 1

    def reset_flow(self, flow: FlowKey) -> None:
        self._counts.pop(flow.canonical(), None)
