"""OS stack personalities of the vendor catalog's appliances.

Every node in the simulator may carry an :class:`OSPersonality` — the
stack-level behaviours Nmap-style crafted probes elicit (initial TTL,
SYN-ACK window and options, whether a FIN-to-open-port gets a reply,
whether a UDP probe to a closed port draws an ICMP port-unreachable,
IP-ID sequence style, DF bit). The *prober* that replays the crafted
sequence lives up-stack in :mod:`repro.core.cenprobe.os_probes`; the
personalities themselves are vendor-catalog data, so they live here in
``devices`` where the world builders (``repro.geo``) may reach them
without importing measurement code — ``geo -> core`` is a layer
violation (RP401).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

# IP-ID sequence classes (Nmap's "II" test, simplified). Distinct from
# the injection-side IPID_* modes in repro.devices.actions: these
# describe the *management stack*, those the forged packets.
IPID_INCREMENTAL = "incremental"
IPID_ZERO = "zero"
IPID_RANDOM = "random"


@dataclass(frozen=True)
class OSPersonality:
    """Stack-level behaviours crafted probes elicit from one device OS."""

    name: str
    initial_ttl: int = 64
    syn_ack_window: int = 64240
    tcp_options: Tuple[int, ...] = (2, 4, 8, 1, 3)  # MSS,SACK,TS,NOP,WS
    rst_window: int = 0
    answers_fin_probe: bool = False  # RFC 793 stacks stay silent
    answers_null_probe: bool = False
    icmp_port_unreachable: bool = True
    ip_id_pattern: str = IPID_INCREMENTAL
    df_bit: bool = True
    ecn_supported: bool = True


# Personalities for the platforms our vendor catalog ships on.
LINUX = OSPersonality(name="Linux 5.x")
FORTIOS = OSPersonality(
    name="FortiOS",
    initial_ttl=255,
    syn_ack_window=16384,
    tcp_options=(2, 1, 3),
    answers_fin_probe=False,
    ip_id_pattern=IPID_ZERO,
    ecn_supported=False,
)
CISCO_IOS = OSPersonality(
    name="Cisco IOS",
    initial_ttl=255,
    syn_ack_window=4128,
    tcp_options=(2,),
    rst_window=4128,
    icmp_port_unreachable=False,  # rate-limited to silence
    ip_id_pattern=IPID_RANDOM,
    df_bit=False,
    ecn_supported=False,
)
ROUTEROS = OSPersonality(
    name="MikroTik RouterOS",
    initial_ttl=64,
    syn_ack_window=14600,
    tcp_options=(2, 4, 1, 3),
    answers_fin_probe=False,
    ip_id_pattern=IPID_INCREMENTAL,
    ecn_supported=False,
)
PANOS = OSPersonality(
    name="PAN-OS",
    initial_ttl=64,
    syn_ack_window=32768,
    tcp_options=(2, 1, 1, 4),
    answers_fin_probe=True,  # middlebox proxy stack answers anything
    answers_null_probe=True,
    ip_id_pattern=IPID_ZERO,
)
KERIO_OS = OSPersonality(
    name="Kerio Control appliance",
    initial_ttl=64,
    syn_ack_window=29200,
    tcp_options=(2, 4, 8, 1, 3),
    icmp_port_unreachable=True,
    ip_id_pattern=IPID_INCREMENTAL,
)
WINDOWS_LIKE = OSPersonality(
    name="Windows Server",
    initial_ttl=128,
    syn_ack_window=8192,
    tcp_options=(2, 1, 3, 1, 1, 4),
    answers_fin_probe=False,
    ip_id_pattern=IPID_INCREMENTAL,
    ecn_supported=False,
)

PERSONALITIES = {
    p.name: p
    for p in (LINUX, FORTIOS, CISCO_IOS, ROUTEROS, PANOS, KERIO_OS, WINDOWS_LIKE)
}

# Vendor -> appliance OS mapping (used when placing devices).
VENDOR_PERSONALITIES: Dict[str, OSPersonality] = {
    "Fortinet": FORTIOS,
    "Cisco": CISCO_IOS,
    "Mikrotik": ROUTEROS,
    "Palo Alto": PANOS,
    "Kerio Control": KERIO_OS,
    "Kaspersky": LINUX,
    "DDoS-Guard": LINUX,
    "Netsweeper": LINUX,
    "SonicWall": WINDOWS_LIKE,
    "Squid": LINUX,
    "Sophos": LINUX,
}
