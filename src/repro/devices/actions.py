"""Blocking actions and injected-packet signatures.

When a device triggers, it either drops the offending packet or injects
forged packets (TCP RST/FIN, or an HTTP blockpage) with the endpoint's
spoofed source address (§4.1). The *fingerprint* of those injections —
IP ID behaviour, TOS byte, IP flags, TTL handling, TCP window, flags
and options — differs per vendor and is one of the strongest clustering
features the paper finds (Figure 9: "CensorResponse", "InjectedIPTTL",
"InjectedIPFlags"...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..netmodel import tcp as tcpmod
from ..netmodel.ip import FLAG_DF, IPHeader
from ..netmodel.netctx import NetContext, default_context
from ..netmodel.packet import Packet
from ..netmodel.tcp import TCPOption, TCPSegment

KIND_DROP = "drop"
KIND_RST = "rst"
KIND_FIN = "fin"
KIND_BLOCKPAGE = "blockpage"

TTL_FIXED = "fixed"
TTL_COPY = "copy"  # copy the remaining TTL of the triggering packet

IPID_ZERO = "zero"
IPID_CONSTANT = "constant"
IPID_ECHO = "echo"  # copy the triggering packet's IP ID
IPID_SEQUENTIAL = "sequential"


@dataclass(frozen=True)
class InjectionSignature:
    """The network-layer fingerprint of a device's forged packets."""

    ttl_mode: str = TTL_FIXED
    fixed_ttl: int = 64
    ip_id_mode: str = IPID_ZERO
    ip_id_value: int = 0
    tos: int = 0
    ip_flags: int = FLAG_DF
    tcp_window: int = 0
    tcp_flags: int = tcpmod.RST
    tcp_options: Tuple[TCPOption, ...] = ()


@dataclass(frozen=True)
class BlockAction:
    """What a device does when a rule triggers."""

    kind: str = KIND_DROP
    signature: InjectionSignature = InjectionSignature()
    blockpage_html: Optional[str] = None
    inject_count: int = 1  # some middleboxes fire several RSTs
    rst_to_server: bool = False  # also tear down the server side
    drop_original: bool = True  # in-path only: swallow the request too

    def is_injecting(self) -> bool:
        return self.kind in (KIND_RST, KIND_FIN, KIND_BLOCKPAGE)


@dataclass(frozen=True)
class DNSBlockAction:
    """What a device does to a censored DNS query (the §8 extension).

    ``fake_addresses`` cycle per injection (the Great-Firewall pattern
    of rotating bogus answers); ``nxdomain=True`` injects NXDOMAIN
    instead. ``drop_query`` additionally swallows the original query
    (in-path deployments only).
    """

    fake_addresses: Tuple[str, ...] = ("198.18.0.66",)
    nxdomain: bool = False
    inject_count: int = 1
    drop_query: bool = False
    signature: InjectionSignature = InjectionSignature()


def reset_dns_fake_cursor(start: int = 0) -> None:
    """Deprecated shim: rewind the *default* context's fake-DNS cursor.

    Profiles with several ``fake_addresses`` (the GFW-style rotation)
    advance a cursor once per forged answer; it now lives on the owning
    simulator's :class:`~repro.netmodel.netctx.NetContext` — reset that
    instead (``sim.net_context.reset()``).
    """
    default_context().reset_dns_fake_cursor(start)


def build_dns_injections(
    action: DNSBlockAction,
    trigger: Packet,
    remaining_ttl: int,
    device_name: str,
    net: Optional[NetContext] = None,
) -> List[Packet]:
    """Forge DNS responses for a censored query.

    ``net`` is the owning simulator's identifier context (carried on
    the :class:`~repro.netsim.interfaces.InspectionContext`); the
    rotating fake-answer cursor lives there so serial and parallel
    campaigns rotate identically.
    """
    if net is None:
        net = default_context()
    from ..netmodel.dns import DNSAnswer, DNSMessage, QTYPE_A, RCODE_NXDOMAIN

    if trigger.udp is None:
        return []
    try:
        query = DNSMessage.from_bytes(trigger.udp.payload)
    except (ValueError, Exception):
        return []
    if not query.questions:
        return []
    question = query.questions[0]
    sig = action.signature
    forged: List[Packet] = []
    for i in range(action.inject_count):
        response = DNSMessage(
            txid=query.txid,
            is_response=True,
            recursion_desired=query.recursion_desired,
            recursion_available=True,
            questions=[question],
        )
        if action.nxdomain:
            response.rcode = RCODE_NXDOMAIN
        else:
            cursor = net.next_dns_fake_index()
            address = action.fake_addresses[
                cursor % len(action.fake_addresses)
            ]
            response.answers.append(
                DNSAnswer(question.qname, QTYPE_A, 300, address)
            )
        ttl = remaining_ttl if sig.ttl_mode == TTL_COPY else sig.fixed_ttl
        from ..netmodel.udp import UDPDatagram

        forged.append(
            Packet(
                ip=IPHeader(
                    src=trigger.ip.dst,  # spoofed: the resolver's address
                    dst=trigger.ip.src,
                    ttl=ttl,
                    tos=sig.tos,
                    flags=sig.ip_flags,
                    identification=(
                        0 if sig.ip_id_mode == IPID_ZERO else sig.ip_id_value
                    ),
                ),
                udp=UDPDatagram(
                    sport=trigger.udp.dport,
                    dport=trigger.udp.sport,
                    payload=response.to_bytes(),
                ),
                emitted_by=device_name,
                injected=True,
            )
        )
    return forged


def reset_sequential_ip_id(start: int = 0x1000) -> None:
    """Deprecated shim: rewind the *default* context's IPID_SEQUENTIAL
    stream; simulated injections draw from ``sim.net_context``."""
    default_context().reset_sequential_ip_id(start)


def build_injections(
    action: BlockAction,
    trigger: Packet,
    remaining_ttl: int,
    device_name: str,
    net: Optional[NetContext] = None,
) -> Tuple[List[Packet], List[Packet]]:
    """Materialize the forged packets for one trigger.

    Returns ``(to_client, to_server)``. Forged packets to the client are
    spoofed from the endpoint's address; those to the server are spoofed
    from the client's address, matching how commercial devices tear down
    both flow ends. ``net`` is the owning simulator's identifier
    context (carried on the inspection context); the IPID_SEQUENTIAL
    stream lives there.
    """
    if not action.is_injecting() or trigger.tcp is None:
        return [], []
    if net is None:
        net = default_context()
    sig = action.signature
    segment = trigger.tcp
    payload_len = len(segment.payload)

    def ip_id() -> int:
        if sig.ip_id_mode == IPID_ZERO:
            return 0
        if sig.ip_id_mode == IPID_CONSTANT:
            return sig.ip_id_value
        if sig.ip_id_mode == IPID_ECHO:
            return trigger.ip.identification
        return net.next_sequential_ip_id()

    def injected_ttl() -> int:
        if sig.ttl_mode == TTL_COPY:
            return remaining_ttl
        return sig.fixed_ttl

    def forge_to_client(flags: int, payload: bytes = b"", seq_offset: int = 0) -> Packet:
        packet = Packet(
            ip=IPHeader(
                src=trigger.ip.dst,  # spoofed: the endpoint's address
                dst=trigger.ip.src,
                ttl=injected_ttl(),
                tos=sig.tos,
                flags=sig.ip_flags,
                identification=ip_id(),
            ),
            tcp=TCPSegment(
                sport=segment.dport,
                dport=segment.sport,
                seq=(segment.ack + seq_offset) & 0xFFFFFFFF,
                ack=(segment.seq + payload_len) & 0xFFFFFFFF,
                flags=flags,
                window=sig.tcp_window,
                options=list(sig.tcp_options),
                payload=payload,
            ),
            emitted_by=device_name,
            injected=True,
        )
        return packet

    to_client: List[Packet] = []
    to_server: List[Packet] = []

    if action.kind == KIND_RST:
        for i in range(action.inject_count):
            to_client.append(forge_to_client(sig.tcp_flags, seq_offset=i))
    elif action.kind == KIND_FIN:
        for i in range(action.inject_count):
            to_client.append(
                forge_to_client(tcpmod.FIN | tcpmod.ACK, seq_offset=i)
            )
    elif action.kind == KIND_BLOCKPAGE:
        html = action.blockpage_html or ""
        body = (
            "HTTP/1.1 403 Forbidden\r\n"
            "Content-Type: text/html\r\n"
            f"Content-Length: {len(html.encode())}\r\n"
            "Connection: close\r\n\r\n" + html
        ).encode()
        to_client.append(forge_to_client(tcpmod.PSH | tcpmod.ACK, payload=body))
        to_client.append(
            forge_to_client(tcpmod.FIN | tcpmod.ACK, seq_offset=len(body))
        )

    if action.rst_to_server:
        to_server.append(
            Packet(
                ip=IPHeader(
                    src=trigger.ip.src,  # spoofed: the client's address
                    dst=trigger.ip.dst,
                    ttl=64,
                    tos=sig.tos,
                    flags=sig.ip_flags,
                    identification=ip_id(),
                ),
                tcp=TCPSegment(
                    sport=segment.sport,
                    dport=segment.dport,
                    seq=(segment.seq + payload_len) & 0xFFFFFFFF,
                    ack=segment.ack,
                    flags=tcpmod.RST,
                    window=sig.tcp_window,
                ),
                emitted_by=device_name,
                injected=True,
            )
        )
    return to_client, to_server
