"""Blocking rules: what hostnames/SNIs a device censors.

CenFuzz's results (§6.3) hinge on the *shape* of deployed rules: most
devices implement leading-wildcard rules (``*.blockeddomain.tld``), a
smaller share use exact hostnames, a few match a keyword substring, and
trailing-wildcard rules (``blockeddomain.*``) are rare. The rule kinds
here reproduce exactly those observable differences:

* leading pads on the hostname still match suffix rules but break exact
  rules;
* trailing pads break suffix and exact rules (evade);
* changing the TLD breaks suffix/exact rules but not keyword rules;
* changing the subdomain breaks exact rules but not suffix rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

KIND_EXACT = "exact"
KIND_SUFFIX = "suffix"  # leading wildcard: *.domain.tld
KIND_PREFIX = "prefix"  # trailing wildcard: domain.*
KIND_KEYWORD = "keyword"  # substring anywhere in the hostname

ALL_KINDS = (KIND_EXACT, KIND_SUFFIX, KIND_PREFIX, KIND_KEYWORD)

PROTO_HTTP = "http"
PROTO_TLS = "tls"
PROTO_DNS = "dns"


def registrable_domain(hostname: str) -> str:
    """A crude eTLD+1: the last two labels of the hostname."""
    labels = hostname.strip(".").split(".")
    return ".".join(labels[-2:]) if len(labels) >= 2 else hostname


def strip_tld(hostname: str) -> str:
    """Hostname minus its final label (``www.example.com`` -> ``www.example``)."""
    labels = hostname.strip(".").split(".")
    return ".".join(labels[:-1]) if len(labels) >= 2 else hostname


@dataclass(frozen=True)
class BlockRule:
    """One configured rule.

    ``domain`` is the canonical censored hostname (e.g.
    ``www.blocked.example``); ``kind`` controls the match semantics and
    ``protocols`` which protocols the rule applies to. For ``url``-scoped
    HTTP deployments (see quirks), ``paths`` restricts which request
    paths trigger.
    """

    domain: str
    kind: str = KIND_SUFFIX
    protocols: Tuple[str, ...] = (PROTO_HTTP, PROTO_TLS)
    paths: Tuple[str, ...] = ("/",)

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown rule kind: {self.kind}")

    def matches_host(self, hostname: Optional[str]) -> bool:
        """Does ``hostname`` (as extracted off the wire) trigger this rule?"""
        if not hostname:
            return False
        host = hostname.strip().lower().rstrip(".")
        # Strip a trailing port, but only when this actually looks like
        # host:port — keyword engines pass whole payloads through here.
        if ":" in host:
            head, _, tail = host.rpartition(":")
            if tail.isdigit():
                host = head
        target = self.domain.lower()
        if self.kind == KIND_EXACT:
            return host == target
        if self.kind == KIND_SUFFIX:
            # *.domain.tld semantics: the registrable part must be the
            # dot-separated suffix. Also matches the bare domain.
            base = registrable_domain(target)
            return host == base or host.endswith("." + base)
        if self.kind == KIND_PREFIX:
            base = strip_tld(target)
            return host.startswith(base + ".") or host == base
        if self.kind == KIND_KEYWORD:
            keyword = strip_tld(registrable_domain(target))
            return keyword in host
        return False  # pragma: no cover - kinds validated in __post_init__

    def applies_to(self, protocol: str) -> bool:
        return protocol in self.protocols


@dataclass
class Blocklist:
    """The ordered rule set of one device deployment."""

    rules: List[BlockRule] = field(default_factory=list)

    def add(self, rule: BlockRule) -> None:
        self.rules.append(rule)

    def match(self, hostname: Optional[str], protocol: str) -> Optional[BlockRule]:
        """First rule triggered by ``hostname`` on ``protocol`` (or None)."""
        if not hostname:
            return None
        for rule in self.rules:
            if rule.applies_to(protocol) and rule.matches_host(hostname):
                return rule
        return None

    def domains(self) -> List[str]:
        return [rule.domain for rule in self.rules]

    @classmethod
    def for_domains(
        cls,
        domains: Iterable[str],
        kind: str = KIND_SUFFIX,
        protocols: Sequence[str] = (PROTO_HTTP, PROTO_TLS),
    ) -> "Blocklist":
        return cls(
            rules=[
                BlockRule(domain=d, kind=kind, protocols=tuple(protocols))
                for d in domains
            ]
        )
