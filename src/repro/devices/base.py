"""The censorship device: rules × parser quirks × action × state.

A :class:`CensorshipDevice` is a :class:`~repro.netsim.interfaces.LinkDevice`
attached to a link in a path. On every forward packet it:

1. applies residual censorship if the flow's tuple is still punished;
2. ignores packets without an application payload (handshakes pass);
3. runs its vendor-specific HTTP/TLS parsing engine (``quirks``) over
   the payload to extract a hostname/SNI — a parse failure means the
   probe *evaded* inspection;
4. matches the extracted hostname against its blocklist; on a match it
   executes its configured action (drop / RST / FIN / blockpage) and
   starts the residual timer.

``in_path`` controls whether drops take effect (§4.1: on-path devices
only see a copy and can inject but not drop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..netmodel.http import looks_like_http_request
from ..netmodel.packet import Packet
from ..netmodel.tls import looks_like_client_hello
from ..netsim.interfaces import (
    DIRECTION_FORWARD,
    InspectionContext,
    LinkDevice,
    Verdict,
)
from .actions import (
    KIND_DROP,
    BlockAction,
    DNSBlockAction,
    build_dns_injections,
    build_injections,
)
from .quirks import (
    ParserQuirks,
    extract_dns_qname,
    extract_http_host,
    extract_tls_sni,
    path_matches,
)
from .rules import PROTO_DNS, PROTO_HTTP, PROTO_TLS, Blocklist
from .state import (
    RESIDUAL_OFF,
    FlowInjectionCounter,
    ResidualTracker,
)


@dataclass
class DeviceStats:
    """Ground-truth counters (for tests and world validation only)."""

    inspected: int = 0
    triggered: int = 0
    residual_hits: int = 0
    evaded: int = 0


class CensorshipDevice(LinkDevice):
    """A configurable censorship middlebox."""

    def __init__(
        self,
        name: str,
        *,
        blocklist: Blocklist,
        quirks: ParserQuirks = ParserQuirks(),
        action: BlockAction = BlockAction(),
        action_tls: Optional[BlockAction] = None,
        action_dns: Optional[DNSBlockAction] = None,
        in_path: bool = True,
        vendor: Optional[str] = None,
        residual_mode: str = RESIDUAL_OFF,
        residual_duration: float = 90.0,
        injection_limit: Optional[int] = None,
        bidirectional: bool = True,
    ) -> None:
        self.name = name
        self.blocklist = blocklist
        self.quirks = quirks
        self.action = action
        # TLS blocking cannot inject a blockpage into an encrypted
        # stream; vendors typically RST or drop instead (§5.3).
        self.action_tls = action_tls if action_tls is not None else action
        # Devices without a DNS action ignore DNS entirely (the common
        # case; DNS injection is the §8 extension).
        self.action_dns = action_dns
        self.in_path = in_path
        self.vendor = vendor  # ground truth; measurement code must not read
        self.bidirectional = bidirectional
        self.residual = ResidualTracker(mode=residual_mode, duration=residual_duration)
        self.injections = FlowInjectionCounter(limit=injection_limit)
        self.stats = DeviceStats()

    # ------------------------------------------------------------------

    def reset_state(self) -> None:
        """Forget all per-flow state (residual timers, injection counts).

        Ground-truth ``stats`` counters keep accumulating: they never
        influence measurement results, only tests and world validation.
        """
        self.residual._entries.clear()
        self.injections._counts.clear()

    # ------------------------------------------------------------------

    def inspect(self, packet: Packet, ctx: InspectionContext) -> Verdict:
        if packet.injected:
            return Verdict.pass_through()
        if packet.udp is not None:
            return self._inspect_dns(packet, ctx)
        if packet.tcp is None:
            return Verdict.pass_through()
        if ctx.direction != DIRECTION_FORWARD and not self.bidirectional:
            return Verdict.pass_through()
        flow = packet.flow_key()
        # Residual censorship applies to *every* packet of a punished
        # tuple, including fresh SYNs for the control domain.
        if self.residual.is_punished(flow, ctx.clock):
            self.stats.residual_hits += 1
            return self._execute(packet, ctx, note="residual")
        payload = packet.tcp.payload
        if not payload:
            return Verdict.pass_through()
        self.stats.inspected += 1
        hostname = None
        path = None
        protocol = None
        if looks_like_client_hello(payload):
            protocol = PROTO_TLS
            hostname = extract_tls_sni(payload, self.quirks)
        elif looks_like_http_request(payload) or b"\r\n" in payload or b"\n" in payload:
            protocol = PROTO_HTTP
            hostname, path = extract_http_host(payload, self.quirks)
        if hostname is None or protocol is None:
            self.stats.evaded += 1
            return Verdict.pass_through()
        rule = self.blocklist.match(hostname, protocol)
        if rule is None:
            return Verdict.pass_through()
        if protocol == PROTO_HTTP and not path_matches(path, rule.paths, self.quirks):
            self.stats.evaded += 1
            return Verdict.pass_through()
        self.stats.triggered += 1
        self.residual.punish(flow, ctx.clock)
        action = self.action_tls if protocol == PROTO_TLS else self.action
        return self._execute(
            packet, ctx, note=f"triggered:{rule.domain}", action=action
        )

    # ------------------------------------------------------------------

    def _inspect_dns(self, packet: Packet, ctx: InspectionContext) -> Verdict:
        """DNS-injection handling (the §8 extension)."""
        if self.action_dns is None or packet.udp.dport != 53:
            return Verdict.pass_through()
        payload = packet.udp.payload
        if not payload:
            return Verdict.pass_through()
        self.stats.inspected += 1
        qname = extract_dns_qname(payload, self.quirks)
        if qname is None:
            self.stats.evaded += 1
            return Verdict.pass_through()
        rule = self.blocklist.match(qname, PROTO_DNS)
        if rule is None:
            return Verdict.pass_through()
        self.stats.triggered += 1
        verdict = Verdict(note=f"{self.name}:dns:{rule.domain}")
        verdict.inject_to_client = build_dns_injections(
            self.action_dns, packet, ctx.remaining_ttl, self.name, net=ctx.net
        )
        if self.in_path and self.action_dns.drop_query:
            verdict.drop = True
        return verdict

    def _execute(
        self,
        packet: Packet,
        ctx: InspectionContext,
        note: str,
        action: Optional[BlockAction] = None,
    ) -> Verdict:
        verdict = Verdict(note=f"{self.name}:{note}")
        if action is None:
            action = self.action
        if action.kind == KIND_DROP:
            verdict.drop = self.in_path
            return verdict
        flow = packet.flow_key()
        if packet.tcp.payload and self.injections.may_inject(flow):
            to_client, to_server = build_injections(
                action, packet, ctx.remaining_ttl, self.name, net=ctx.net
            )
            verdict.inject_to_client = to_client
            verdict.inject_to_server = to_server
            self.injections.record(flow)
        elif not packet.tcp.payload:
            # Residual handling of handshake packets: injecting devices
            # reset them; the client sees the connection refused.
            to_client, to_server = build_injections(
                action, packet, ctx.remaining_ttl, self.name, net=ctx.net
            )
            verdict.inject_to_client = to_client
        if self.in_path and action.drop_original:
            verdict.drop = True
        return verdict

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CensorshipDevice {self.name} vendor={self.vendor}"
            f" action={self.action.kind} in_path={self.in_path}>"
        )
