"""Censorship device models: rules, parser quirks, actions, vendors."""

from .actions import (
    BlockAction,
    InjectionSignature,
    KIND_BLOCKPAGE,
    KIND_DROP,
    KIND_FIN,
    KIND_RST,
    TTL_COPY,
    TTL_FIXED,
)
from .base import CensorshipDevice
from .quirks import ParserQuirks, extract_http_host, extract_tls_sni
from .rules import (
    BlockRule,
    Blocklist,
    KIND_EXACT,
    KIND_KEYWORD,
    KIND_PREFIX,
    KIND_SUFFIX,
    PROTO_HTTP,
    PROTO_TLS,
)
from .personality import (
    OSPersonality,
    PERSONALITIES,
    VENDOR_PERSONALITIES,
)
from .state import (
    FlowInjectionCounter,
    RESIDUAL_3TUPLE,
    RESIDUAL_HOSTS,
    RESIDUAL_OFF,
    ResidualTracker,
)
from .vendors import ALL_PROFILES, LABELED_PROFILES, VendorProfile, make_device

__all__ = [
    "BlockAction",
    "InjectionSignature",
    "KIND_BLOCKPAGE",
    "KIND_DROP",
    "KIND_FIN",
    "KIND_RST",
    "TTL_COPY",
    "TTL_FIXED",
    "CensorshipDevice",
    "ParserQuirks",
    "extract_http_host",
    "extract_tls_sni",
    "BlockRule",
    "Blocklist",
    "KIND_EXACT",
    "KIND_KEYWORD",
    "KIND_PREFIX",
    "KIND_SUFFIX",
    "PROTO_HTTP",
    "PROTO_TLS",
    "FlowInjectionCounter",
    "RESIDUAL_3TUPLE",
    "RESIDUAL_HOSTS",
    "RESIDUAL_OFF",
    "ResidualTracker",
    "OSPersonality",
    "PERSONALITIES",
    "VENDOR_PERSONALITIES",
    "ALL_PROFILES",
    "LABELED_PROFILES",
    "VendorProfile",
    "make_device",
]
