"""Per-vendor DPI parsing quirks.

§6.3's central observation is that censorship devices implement their
own, idiosyncratic HTTP/TLS parsers: most trigger only on certain HTTP
methods, almost none validate the HTTP version, most require a
well-formed ``Host:`` token, and TLS engines parse a wide variety of
ClientHellos but trigger only on the SNI. :class:`ParserQuirks` encodes
one vendor's engine; :func:`extract_http_host` / :func:`extract_tls_sni`
run that engine over raw payload bytes and return the hostname the
engine *would have seen* (or None when the engine fails to parse — i.e.
the probe evades inspection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from ..netmodel.tls import (
    CIPHER_NAMES,
    looks_like_client_hello,
    parse_client_hello,
)

# How the engine locates the hostname in an HTTP request.
HOST_FROM_HEADER = "header"  # requires a recognizable Host header token
HOST_SUBSTRING = "substring"  # scans the whole payload for censored domains

# How strict the engine is about the request-line version token.
VERSION_ANY = "any"  # any third token is fine
VERSION_SLASH = "slash"  # third token must contain a '/'
VERSION_VALID = "valid"  # must be literally HTTP/1.0 or HTTP/1.1

# Which request paths trigger URL-scoped rules.
SCOPE_DOMAIN = "domain"  # any path triggers
SCOPE_URL = "url"  # only the rule's configured paths trigger

DEFAULT_METHODS = frozenset({"GET", "POST", "PUT", "PATCH", "DELETE", "HEAD"})


@dataclass(frozen=True)
class ParserQuirks:
    """The observable parsing behaviour of one DPI engine."""

    # ---- HTTP request line ----
    trigger_methods: FrozenSet[str] = frozenset({"GET", "POST"})
    method_case_sensitive: bool = False
    require_three_tokens: bool = True
    version_rule: str = VERSION_SLASH
    # ---- HTTP Host header ----
    host_extraction: str = HOST_FROM_HEADER
    host_word_case_sensitive: bool = False
    require_host_colon: bool = True
    # ---- delimiters ----
    accepted_delimiters: Tuple[str, ...] = ("\r\n", "\n")
    # ---- rule scope ----
    path_scope: str = SCOPE_DOMAIN
    # ---- TLS ----
    fragile_ciphers: FrozenSet[str] = frozenset()
    fragile_tls_versions: FrozenSet[int] = frozenset()
    requires_sni: bool = True  # engines never trigger without an SNI
    # ---- DNS (the DNS-injection extension; paper §8 future work) ----
    dns_trigger_qtypes: FrozenSet[int] = frozenset({1})  # A queries only
    dns_case_sensitive: bool = False  # True -> 0x20 encoding evades

    def method_triggers(self, method: str) -> bool:
        """Does this request method make the engine inspect further?"""
        if not self.trigger_methods:
            return True  # engine inspects regardless of method
        if self.method_case_sensitive:
            return method in self.trigger_methods
        return method.upper() in self.trigger_methods


def _split_lines(text: str, quirks: ParserQuirks) -> Optional[list]:
    """Split the request into lines using an accepted delimiter."""
    for delimiter in quirks.accepted_delimiters:
        if delimiter in text:
            return text.split(delimiter)
    return None


def extract_http_host(
    payload: bytes, quirks: ParserQuirks
) -> Tuple[Optional[str], Optional[str]]:
    """Run the DPI engine over an HTTP payload.

    Returns ``(hostname, path)`` as the engine sees them; ``(None, None)``
    means the engine did not recognize a blockable HTTP request (the
    probe evades inspection). In substring mode the hostname is the
    whole payload text — the caller matches rules against it as a
    keyword scan.
    """
    try:
        text = payload.decode("utf-8", errors="surrogateescape")
    except Exception:  # pragma: no cover - surrogateescape never raises
        return None, None
    if quirks.host_extraction == HOST_SUBSTRING:
        # Keyword engines skip structural parsing entirely.
        return text.lower(), "/"
    lines = _split_lines(text, quirks)
    if lines is None or not lines:
        return None, None
    request_line = lines[0]
    if quirks.require_three_tokens:
        # A strict engine anchors on exactly "METHOD SP PATH SP VERSION".
        parts = request_line.split(" ")
        if len(parts) != 3:
            return None, None
        method, path, version = parts
    else:
        parts = [t for t in request_line.split(" ") if t]
        if len(parts) < 2:
            return None, None
        method, path = parts[0], parts[1]
        version = parts[2] if len(parts) > 2 else ""
    if not quirks.method_triggers(method):
        return None, None
    if quirks.version_rule == VERSION_SLASH and "/" not in version:
        return None, None
    if quirks.version_rule == VERSION_VALID and version not in ("HTTP/1.0", "HTTP/1.1"):
        return None, None
    # Locate the Host header.
    for line in lines[1:]:
        if not line:
            break  # end of headers
        if ":" in line:
            name, _, value = line.partition(":")
        elif quirks.require_host_colon:
            continue
        else:
            bits = line.split(None, 1)
            if len(bits) != 2:
                continue
            name, value = bits
        name_token = name if quirks.host_word_case_sensitive else name.lower()
        expected = "Host" if quirks.host_word_case_sensitive else "host"
        if name_token == expected:
            return value.strip(), path
    return None, None


def extract_tls_sni(payload: bytes, quirks: ParserQuirks) -> Optional[str]:
    """Run the DPI engine over a TLS payload; returns the SNI it sees.

    None means the engine failed to parse (fragile cipher/version) or
    found no SNI — either way the probe evades inspection.
    """
    if not looks_like_client_hello(payload):
        return None
    hello = parse_client_hello(payload)
    if not hello.ok:
        return None
    if quirks.fragile_ciphers:
        names = {CIPHER_NAMES.get(code, "") for code in hello.cipher_suites}
        if names & quirks.fragile_ciphers:
            return None
    if quirks.fragile_tls_versions:
        offered = set(hello.supported_versions) or {hello.legacy_version}
        if offered and offered <= quirks.fragile_tls_versions:
            # The engine cannot handle any of the offered versions.
            return None
    if hello.sni is None and quirks.requires_sni:
        return None
    return hello.sni


def extract_dns_qname(payload: bytes, quirks: ParserQuirks) -> Optional[str]:
    """Run the DPI engine over a UDP payload; returns the qname it sees.

    None means the engine did not recognize a blockable DNS query: not
    DNS at all, a response, an untracked qtype, or — for case-sensitive
    engines — a 0x20-encoded name the matcher will never hit (the
    caller matches lowercased rules, so a case-sensitive engine must
    see an all-lowercase qname to trigger).
    """
    from ..netmodel.dns import DNSMessage

    try:
        message = DNSMessage.from_bytes(payload)
    except (ValueError, Exception):
        return None
    if message.is_response or not message.questions:
        return None
    question = message.questions[0]
    if (
        quirks.dns_trigger_qtypes
        and question.qtype not in quirks.dns_trigger_qtypes
    ):
        return None
    if quirks.dns_case_sensitive and question.qname != question.qname.lower():
        return None
    return question.qname


def path_matches(path: Optional[str], rule_paths: Tuple[str, ...], quirks: ParserQuirks) -> bool:
    """Does the request path satisfy the rule under this engine's scope?"""
    if quirks.path_scope == SCOPE_DOMAIN:
        return True
    if path is None:
        return True
    return path in rule_paths
