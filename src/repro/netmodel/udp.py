"""UDP datagram model (the substrate for the DNS extension).

§4.1 notes CenTrace "can be easily extended to other protocols such as
DNS"; §8 lists DNS packet injection as future work. The UDP model is
deliberately minimal — header + payload with a real checksum — since
DNS is its only consumer here.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from .ip import checksum16, ip_to_int

_UDP_STRUCT = struct.Struct("!HHHH")


@dataclass
class UDPDatagram:
    """A structural UDP datagram."""

    sport: int
    dport: int
    payload: bytes = b""
    checksum: int = 0

    HEADER_LEN = 8

    def to_bytes(self, src_ip: str = "0.0.0.0", dst_ip: str = "0.0.0.0") -> bytes:
        length = self.HEADER_LEN + len(self.payload)
        header = _UDP_STRUCT.pack(
            self.sport & 0xFFFF, self.dport & 0xFFFF, length & 0xFFFF, 0
        )
        datagram = header + self.payload
        pseudo = struct.pack(
            "!IIBBH", ip_to_int(src_ip), ip_to_int(dst_ip), 0, 17, length
        )
        csum = checksum16(pseudo + datagram)
        if csum == 0:
            csum = 0xFFFF  # RFC 768: transmitted as all-ones
        return datagram[:6] + struct.pack("!H", csum) + datagram[8:]

    @classmethod
    def from_bytes(cls, data: bytes) -> "UDPDatagram":
        if len(data) < cls.HEADER_LEN:
            raise ValueError("truncated UDP datagram")
        sport, dport, length, csum = _UDP_STRUCT.unpack(data[: cls.HEADER_LEN])
        if length < cls.HEADER_LEN or length > len(data):
            raise ValueError(f"invalid UDP length: {length}")
        return cls(
            sport=sport,
            dport=dport,
            payload=data[cls.HEADER_LEN : length],
            checksum=csum,
        )

    def copy(self, **changes) -> "UDPDatagram":
        return replace(self, **changes)
