"""Raw HTTP/1.1 request model for fuzzing.

CenFuzz (§6) crafts deliberately malformed HTTP requests — wrong method
words, mangled ``HTTP/1.1`` tokens, missing delimiters, alternative Host
header spellings — so every token in the request line and headers is
represented verbatim and serialized without normalization. The
complementary :func:`parse_request` is the *tolerant* parser used by
censorship devices and web servers, with per-consumer strictness knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

CRLF = "\r\n"
DEFAULT_USER_AGENT = "Mozilla/5.0 (X11; Linux x86_64) repro-cenfuzz/1.0"

KNOWN_METHODS = ("GET", "POST", "PUT", "PATCH", "DELETE", "HEAD", "OPTIONS")


@dataclass
class RawHeader:
    """One header line, kept as raw tokens.

    ``name`` includes everything before the separator and ``separator``
    is usually ``": "`` but fuzz strategies replace it (e.g. removing the
    colon entirely).
    """

    name: str
    value: str
    separator: str = ": "

    def render(self) -> str:
        return f"{self.name}{self.separator}{self.value}"


@dataclass
class HTTPRequest:
    """A raw HTTP request built from explicit tokens.

    The default values produce a well-formed ``GET / HTTP/1.1`` request
    with a Host header; fuzz strategies override individual tokens.
    """

    host: str
    method: str = "GET"
    path: str = "/"
    http_word: str = "HTTP/1.1"
    host_word: str = "Host"
    host_separator: str = ": "
    line_delimiter: str = CRLF
    request_line_spaces: Tuple[str, str] = (" ", " ")
    extra_headers: List[RawHeader] = field(default_factory=list)
    include_host_header: bool = True
    body: str = ""

    def build(self) -> bytes:
        """Serialize the request exactly as specified, no normalization."""
        sp1, sp2 = self.request_line_spaces
        lines = [f"{self.method}{sp1}{self.path}{sp2}{self.http_word}"]
        if self.include_host_header:
            lines.append(f"{self.host_word}{self.host_separator}{self.host}")
        for header in self.extra_headers:
            lines.append(header.render())
        raw = self.line_delimiter.join(lines)
        raw += self.line_delimiter * 2
        raw += self.body
        return raw.encode("utf-8", errors="surrogateescape")

    def copy(self, **changes) -> "HTTPRequest":
        return replace(self, **changes)

    @classmethod
    def normal(cls, host: str, path: str = "/") -> "HTTPRequest":
        """The unfuzzed baseline request used as CenFuzz's 'Normal'."""
        return cls(
            host=host,
            path=path,
            extra_headers=[RawHeader("User-Agent", DEFAULT_USER_AGENT)],
        )


@dataclass
class ParsedRequest:
    """The result of a tolerant parse of raw request bytes."""

    ok: bool
    method: str = ""
    path: str = ""
    http_word: str = ""
    version_valid: bool = False
    host: Optional[str] = None
    host_word: str = ""
    headers: Dict[str, str] = field(default_factory=dict)
    malformed_request_line: bool = False
    malformed_host_header: bool = False
    used_bare_lf: bool = False
    error: str = ""


_VALID_HTTP_WORDS = {"HTTP/1.0", "HTTP/1.1"}


def parse_request(data: bytes, *, accept_bare_lf: bool = True) -> ParsedRequest:
    """Parse raw request bytes tolerantly.

    This models the *observable* parsing behaviour of real HTTP servers:
    it extracts what it can and flags what was malformed, letting each
    consumer (web server, censorship device) decide how strict to be.
    """
    try:
        text = data.decode("utf-8", errors="surrogateescape")
    except Exception as exc:  # pragma: no cover - decode never fails here
        return ParsedRequest(ok=False, error=f"undecodable: {exc}")
    used_bare_lf = False
    if CRLF in text:
        head = text.split(CRLF + CRLF, 1)[0]
        lines = head.split(CRLF)
    elif "\n" in text and accept_bare_lf:
        used_bare_lf = True
        head = text.split("\n\n", 1)[0]
        lines = head.split("\n")
    else:
        return ParsedRequest(ok=False, error="no line delimiter found")
    if not lines or not lines[0].strip():
        return ParsedRequest(ok=False, error="empty request line")

    result = ParsedRequest(ok=True, used_bare_lf=used_bare_lf)
    request_line = lines[0]
    parts = request_line.split()
    if len(parts) == 3:
        result.method, result.path, result.http_word = parts
    elif len(parts) == 2:
        result.method, result.path = parts
        result.malformed_request_line = True
    elif len(parts) == 1:
        result.method = parts[0]
        result.malformed_request_line = True
    else:
        # >3 tokens: path contained spaces; treat first and last as
        # method/version, the middle as the path.
        result.method = parts[0]
        result.http_word = parts[-1]
        result.path = " ".join(parts[1:-1])
        result.malformed_request_line = True
    result.version_valid = result.http_word in _VALID_HTTP_WORDS

    for line in lines[1:]:
        if not line.strip():
            continue
        if ":" in line:
            name, _, value = line.partition(":")
            name_clean = name.strip()
            value_clean = value.strip()
            result.headers[name_clean.lower()] = value_clean
            if name_clean.lower() == "host":
                result.host = value_clean
                result.host_word = name_clean
        else:
            # Header line without a colon (e.g. Host-word fuzzing that
            # removed the separator). Try to salvage a hostname: lines
            # like "Host www.example.com" or "ost: ..." variants.
            tokens = line.split()
            if len(tokens) >= 2 and "." in tokens[-1]:
                result.malformed_host_header = True
            else:
                result.malformed_host_header = True
    if result.host is None:
        # Look for fuzzy host-ish headers ("HostHeader", "HoST", etc.).
        for name, value in result.headers.items():
            if "host" in name and "." in value:
                result.host = value
                result.host_word = name
                result.malformed_host_header = name != "host"
                break
    return result


def looks_like_http_request(data: bytes) -> bool:
    """Quick sniff: does ``data`` begin like an HTTP request line?"""
    prefix = data[:10].upper()
    return any(prefix.startswith(m.encode()) for m in KNOWN_METHODS) or (
        b" HTTP/" in data[:100].upper()
    )


@dataclass
class HTTPResponse:
    """A minimal HTTP response (status line + headers + body)."""

    status_code: int
    reason: str = ""
    headers: List[Tuple[str, str]] = field(default_factory=list)
    body: str = ""

    _REASONS = {
        200: "OK",
        301: "Moved Permanently",
        302: "Found",
        400: "Bad Request",
        403: "Forbidden",
        404: "Not Found",
        405: "Method Not Allowed",
        501: "Not Implemented",
        505: "HTTP Version Not Supported",
    }

    def build(self) -> bytes:
        reason = self.reason or self._REASONS.get(self.status_code, "")
        lines = [f"HTTP/1.1 {self.status_code} {reason}"]
        headers = list(self.headers)
        if not any(name.lower() == "content-length" for name, _ in headers):
            headers.append(("Content-Length", str(len(self.body.encode()))))
        for name, value in headers:
            lines.append(f"{name}: {value}")
        return (CRLF.join(lines) + CRLF * 2 + self.body).encode()

    @classmethod
    def parse(cls, data: bytes) -> Optional["HTTPResponse"]:
        """Parse response bytes; returns None if not an HTTP response."""
        try:
            text = data.decode("utf-8", errors="surrogateescape")
        except Exception:  # pragma: no cover
            return None
        if not text.startswith("HTTP/"):
            return None
        head, _, body = text.partition(CRLF + CRLF)
        lines = head.split(CRLF)
        status_parts = lines[0].split(" ", 2)
        if len(status_parts) < 2:
            return None
        try:
            code = int(status_parts[1])
        except ValueError:
            return None
        reason = status_parts[2] if len(status_parts) == 3 else ""
        headers = []
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers.append((name.strip(), value.strip()))
        return cls(status_code=code, reason=reason, headers=headers, body=body)
