"""TCP segment model with byte-accurate serialization.

Injected responses from censorship devices differ in TCP-level details
(flags, window, options, sequence behaviour); the clustering pipeline in
§7 uses those as features, so the model keeps them all explicit.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from .ip import checksum16, ip_to_int

# TCP flag bits.
FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10
URG = 0x20
ECE = 0x40
CWR = 0x80

_FLAG_NAMES = [
    (CWR, "CWR"),
    (ECE, "ECE"),
    (URG, "URG"),
    (ACK, "ACK"),
    (PSH, "PSH"),
    (RST, "RST"),
    (SYN, "SYN"),
    (FIN, "FIN"),
]

# Common TCP option kinds.
OPT_EOL = 0
OPT_NOP = 1
OPT_MSS = 2
OPT_WSCALE = 3
OPT_SACK_PERMITTED = 4
OPT_TIMESTAMP = 8

_TCP_STRUCT = struct.Struct("!HHIIBBHHH")


def flags_to_str(flags: int) -> str:
    """Render TCP flag bits as e.g. ``"SYN|ACK"`` (``"-"`` when empty)."""
    names = [name for bit, name in _FLAG_NAMES if flags & bit]
    return "|".join(names) if names else "-"


@dataclass
class TCPOption:
    """A single TCP option (kind + raw data)."""

    kind: int
    data: bytes = b""

    def to_bytes(self) -> bytes:
        if self.kind in (OPT_EOL, OPT_NOP):
            return bytes([self.kind])
        return bytes([self.kind, 2 + len(self.data)]) + self.data

    @staticmethod
    def mss(value: int) -> "TCPOption":
        return TCPOption(OPT_MSS, struct.pack("!H", value))

    @staticmethod
    def window_scale(shift: int) -> "TCPOption":
        return TCPOption(OPT_WSCALE, bytes([shift]))

    @staticmethod
    def sack_permitted() -> "TCPOption":
        return TCPOption(OPT_SACK_PERMITTED)

    @staticmethod
    def timestamp(tsval: int, tsecr: int = 0) -> "TCPOption":
        return TCPOption(OPT_TIMESTAMP, struct.pack("!II", tsval, tsecr))


def parse_options(data: bytes) -> List[TCPOption]:
    """Parse the options region of a TCP header."""
    options: List[TCPOption] = []
    i = 0
    while i < len(data):
        kind = data[i]
        if kind == OPT_EOL:
            options.append(TCPOption(OPT_EOL))
            break
        if kind == OPT_NOP:
            options.append(TCPOption(OPT_NOP))
            i += 1
            continue
        if i + 1 >= len(data):
            break  # truncated option
        length = data[i + 1]
        if length < 2 or i + length > len(data):
            break  # malformed option
        options.append(TCPOption(kind, data[i + 2 : i + length]))
        i += length
    return options


@dataclass
class TCPSegment:
    """A structural TCP segment (header + payload)."""

    sport: int
    dport: int
    seq: int = 0
    ack: int = 0
    flags: int = SYN
    window: int = 65535
    urgent: int = 0
    options: List[TCPOption] = field(default_factory=list)
    payload: bytes = b""
    checksum: int = 0

    BASE_HEADER_LEN = 20

    @property
    def header_len(self) -> int:
        """Header length in bytes, including padded options."""
        opts_len = sum(len(o.to_bytes()) for o in self.options)
        return self.BASE_HEADER_LEN + ((opts_len + 3) // 4) * 4

    def option_kinds(self) -> Tuple[int, ...]:
        """The option kinds present, in order (a device fingerprint)."""
        return tuple(o.kind for o in self.options)

    def to_bytes(self, src_ip: str = "0.0.0.0", dst_ip: str = "0.0.0.0") -> bytes:
        """Serialize with checksum over the IPv4 pseudo-header."""
        if self.options:
            opts = b"".join(o.to_bytes() for o in self.options)
            opts += b"\x00" * ((-len(opts)) % 4)
        else:
            opts = b""
        data_offset = (self.BASE_HEADER_LEN + len(opts)) // 4
        header = _TCP_STRUCT.pack(
            self.sport & 0xFFFF,
            self.dport & 0xFFFF,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            (data_offset << 4),
            self.flags & 0xFF,
            self.window & 0xFFFF,
            0,
            self.urgent & 0xFFFF,
        )
        segment = header + opts + self.payload
        pseudo = struct.pack(
            "!IIBBH",
            ip_to_int(src_ip),
            ip_to_int(dst_ip),
            0,
            6,
            len(segment),
        )
        csum = checksum16(pseudo + segment)
        return segment[:16] + csum.to_bytes(2, "big") + segment[18:]

    @classmethod
    def from_bytes(cls, data: bytes) -> "TCPSegment":
        """Parse a TCP segment (header, options, payload)."""
        if len(data) < cls.BASE_HEADER_LEN:
            raise ValueError("truncated TCP header")
        (
            sport,
            dport,
            seq,
            ack,
            offset_byte,
            flags,
            window,
            csum,
            urgent,
        ) = _TCP_STRUCT.unpack(data[: cls.BASE_HEADER_LEN])
        header_len = (offset_byte >> 4) * 4
        if header_len < cls.BASE_HEADER_LEN or header_len > len(data):
            raise ValueError(f"invalid TCP data offset: {header_len}")
        options = parse_options(data[cls.BASE_HEADER_LEN : header_len])
        return cls(
            sport=sport,
            dport=dport,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            urgent=urgent,
            options=options,
            payload=data[header_len:],
            checksum=csum,
        )

    def copy(self, **changes) -> "TCPSegment":
        """Return a copy with ``changes`` applied (options list is shared)."""
        return replace(self, **changes)

    def describe_flags(self) -> str:
        return flags_to_str(self.flags)
