"""TLS ClientHello model (build + parse) for SNI-based censorship.

Censorship devices block HTTPS connections by inspecting the Server Name
Indication (SNI) extension of the ClientHello — everything after it is
encrypted (§3.1, Appendix B). CenFuzz's TLS strategies permute the
client version fields, cipher-suite list, SNI value and padding, so the
builder exposes each of those, and the parser mimics a middlebox
extracting the SNI from raw bytes.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

RECORD_TYPE_HANDSHAKE = 22
RECORD_TYPE_ALERT = 21
HANDSHAKE_CLIENT_HELLO = 1
HANDSHAKE_SERVER_HELLO = 2

EXT_SERVER_NAME = 0
EXT_SUPPORTED_VERSIONS = 43
EXT_PADDING = 21
EXT_ALPN = 16

VERSION_TLS10 = 0x0301
VERSION_TLS11 = 0x0302
VERSION_TLS12 = 0x0303
VERSION_TLS13 = 0x0304

VERSION_NAMES = {
    VERSION_TLS10: "TLS 1.0",
    VERSION_TLS11: "TLS 1.1",
    VERSION_TLS12: "TLS 1.2",
    VERSION_TLS13: "TLS 1.3",
}

ALL_VERSIONS = (VERSION_TLS10, VERSION_TLS11, VERSION_TLS12, VERSION_TLS13)

# The cipher suites CenFuzz iterates over (Table 2 lists 25 permutations;
# this catalog provides the pool drawn from real TLS registries).
CIPHER_SUITES: Dict[str, int] = {
    "TLS_AES_128_GCM_SHA256": 0x1301,
    "TLS_AES_256_GCM_SHA384": 0x1302,
    "TLS_CHACHA20_POLY1305_SHA256": 0x1303,
    "TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256": 0xC02B,
    "TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384": 0xC02C,
    "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256": 0xC02F,
    "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384": 0xC030,
    "TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256": 0xCCA9,
    "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256": 0xCCA8,
    "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA": 0xC013,
    "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA": 0xC014,
    "TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA": 0xC009,
    "TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA": 0xC00A,
    "TLS_RSA_WITH_AES_128_GCM_SHA256": 0x009C,
    "TLS_RSA_WITH_AES_256_GCM_SHA384": 0x009D,
    "TLS_RSA_WITH_AES_128_CBC_SHA": 0x002F,
    "TLS_RSA_WITH_AES_256_CBC_SHA": 0x0035,
    "TLS_RSA_WITH_AES_128_CBC_SHA256": 0x003C,
    "TLS_RSA_WITH_AES_256_CBC_SHA256": 0x003D,
    "TLS_RSA_WITH_3DES_EDE_CBC_SHA": 0x000A,
    "TLS_RSA_WITH_RC4_128_SHA": 0x0005,
    "TLS_RSA_WITH_RC4_128_MD5": 0x0004,
    "TLS_DHE_RSA_WITH_AES_128_CBC_SHA": 0x0033,
    "TLS_DHE_RSA_WITH_AES_256_CBC_SHA": 0x0039,
    "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA256": 0xC027,
}

CIPHER_NAMES = {code: name for name, code in CIPHER_SUITES.items()}

DEFAULT_CIPHERS = [
    "TLS_AES_128_GCM_SHA256",
    "TLS_AES_256_GCM_SHA384",
    "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
    "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384",
    "TLS_RSA_WITH_AES_128_GCM_SHA256",
]


def _deterministic_random(seed_text: str) -> bytes:
    """32 bytes of deterministic 'client random' (simulation-friendly)."""
    return hashlib.sha256(seed_text.encode()).digest()


@dataclass
class Extension:
    """A raw TLS extension (type + body bytes)."""

    ext_type: int
    data: bytes = b""

    def to_bytes(self) -> bytes:
        return struct.pack("!HH", self.ext_type, len(self.data)) + self.data


def sni_extension(server_name: str) -> Extension:
    """Build an RFC 6066 server_name extension."""
    name_bytes = server_name.encode("utf-8", errors="surrogateescape")
    entry = struct.pack("!BH", 0, len(name_bytes)) + name_bytes
    body = struct.pack("!H", len(entry)) + entry
    return Extension(EXT_SERVER_NAME, body)


def supported_versions_extension(versions: List[int]) -> Extension:
    """Build an RFC 8446 supported_versions extension."""
    body = bytes([2 * len(versions)]) + b"".join(
        struct.pack("!H", v) for v in versions
    )
    return Extension(EXT_SUPPORTED_VERSIONS, body)


def padding_extension(length: int) -> Extension:
    return Extension(EXT_PADDING, b"\x00" * length)


@dataclass
class ClientHello:
    """A structural TLS ClientHello.

    ``min_version``/``max_version`` drive both the legacy version field
    and the supported_versions extension, matching how real stacks (and
    CenFuzz's Min/Max Version strategies) express version bounds.
    """

    server_name: Optional[str]
    min_version: int = VERSION_TLS10
    max_version: int = VERSION_TLS13
    cipher_suites: List[str] = field(
        default_factory=lambda: list(DEFAULT_CIPHERS)
    )
    session_id: bytes = b""
    include_sni: bool = True
    sni_padding: str = ""
    offers_client_certificate: bool = False
    client_certificate_cn: Optional[str] = None
    extra_extensions: List[Extension] = field(default_factory=list)

    @property
    def effective_sni(self) -> Optional[str]:
        """The server name as it appears on the wire (with padding)."""
        if not self.include_sni or self.server_name is None:
            return None
        return self.sni_padding + self.server_name if self.sni_padding else self.server_name

    def supported_versions(self) -> List[int]:
        return [v for v in ALL_VERSIONS if self.min_version <= v <= self.max_version]

    def build(self) -> bytes:
        """Serialize to record-layer bytes."""
        versions = self.supported_versions()
        if not versions:
            versions = [self.max_version]
        legacy_version = min(self.max_version, VERSION_TLS12)
        random = _deterministic_random(
            f"{self.server_name}|{self.min_version}|{self.max_version}"
        )
        body = struct.pack("!H", legacy_version)
        body += random
        body += bytes([len(self.session_id)]) + self.session_id
        suite_codes = [CIPHER_SUITES[name] for name in self.cipher_suites]
        body += struct.pack("!H", 2 * len(suite_codes))
        body += b"".join(struct.pack("!H", c) for c in suite_codes)
        body += b"\x01\x00"  # compression: null only
        extensions: List[Extension] = []
        effective = self.effective_sni
        if effective is not None:
            extensions.append(sni_extension(effective))
        extensions.append(supported_versions_extension(versions))
        extensions.extend(self.extra_extensions)
        ext_bytes = b"".join(e.to_bytes() for e in extensions)
        body += struct.pack("!H", len(ext_bytes)) + ext_bytes
        handshake = (
            bytes([HANDSHAKE_CLIENT_HELLO])
            + len(body).to_bytes(3, "big")
            + body
        )
        record = (
            bytes([RECORD_TYPE_HANDSHAKE])
            + struct.pack("!H", VERSION_TLS10)
            + struct.pack("!H", len(handshake))
            + handshake
        )
        return record

    def copy(self, **changes) -> "ClientHello":
        return replace(self, **changes)

    @classmethod
    def normal(cls, server_name: str) -> "ClientHello":
        """The unfuzzed baseline ClientHello (CenFuzz's 'Normal')."""
        return cls(server_name=server_name)


@dataclass
class ParsedClientHello:
    """Fields a middlebox can extract from raw ClientHello bytes."""

    ok: bool
    legacy_version: int = 0
    cipher_suites: Tuple[int, ...] = ()
    sni: Optional[str] = None
    supported_versions: Tuple[int, ...] = ()
    has_padding_extension: bool = False
    error: str = ""


def parse_client_hello(data: bytes) -> ParsedClientHello:
    """Parse raw record-layer bytes as a ClientHello.

    Mirrors the extraction a DPI middlebox performs; fails gracefully on
    anything that is not a well-formed ClientHello.
    """
    try:
        if len(data) < 5 or data[0] != RECORD_TYPE_HANDSHAKE:
            return ParsedClientHello(ok=False, error="not a handshake record")
        record_len = struct.unpack("!H", data[3:5])[0]
        body = data[5 : 5 + record_len]
        if len(body) < 4 or body[0] != HANDSHAKE_CLIENT_HELLO:
            return ParsedClientHello(ok=False, error="not a ClientHello")
        hs_len = int.from_bytes(body[1:4], "big")
        hello = body[4 : 4 + hs_len]
        offset = 0
        legacy_version = struct.unpack("!H", hello[offset : offset + 2])[0]
        offset += 2 + 32  # version + random
        sid_len = hello[offset]
        offset += 1 + sid_len
        suites_len = struct.unpack("!H", hello[offset : offset + 2])[0]
        offset += 2
        suites = tuple(
            struct.unpack("!H", hello[offset + i : offset + i + 2])[0]
            for i in range(0, suites_len, 2)
        )
        offset += suites_len
        comp_len = hello[offset]
        offset += 1 + comp_len
        result = ParsedClientHello(
            ok=True, legacy_version=legacy_version, cipher_suites=suites
        )
        if offset >= len(hello):
            return result
        ext_total = struct.unpack("!H", hello[offset : offset + 2])[0]
        offset += 2
        end = offset + ext_total
        while offset + 4 <= min(end, len(hello)):
            ext_type, ext_len = struct.unpack("!HH", hello[offset : offset + 4])
            ext_data = hello[offset + 4 : offset + 4 + ext_len]
            offset += 4 + ext_len
            if ext_type == EXT_SERVER_NAME and len(ext_data) >= 5:
                name_len = struct.unpack("!H", ext_data[3:5])[0]
                result.sni = ext_data[5 : 5 + name_len].decode(
                    "utf-8", errors="surrogateescape"
                )
            elif ext_type == EXT_SUPPORTED_VERSIONS and ext_data:
                count = ext_data[0] // 2
                result.supported_versions = tuple(
                    struct.unpack("!H", ext_data[1 + 2 * i : 3 + 2 * i])[0]
                    for i in range(count)
                )
            elif ext_type == EXT_PADDING:
                result.has_padding_extension = True
        return result
    except (struct.error, IndexError) as exc:
        return ParsedClientHello(ok=False, error=f"malformed: {exc}")


def looks_like_client_hello(data: bytes) -> bool:
    """Quick sniff for record type 22 / handshake type 1."""
    return len(data) >= 6 and data[0] == RECORD_TYPE_HANDSHAKE and data[5] == 1


@dataclass
class ServerHello:
    """A minimal ServerHello used by simulated TLS endpoints."""

    version: int = VERSION_TLS12
    cipher_suite: int = 0xC02F

    def build(self) -> bytes:
        body = struct.pack("!H", self.version)
        body += _deterministic_random("server")
        body += b"\x00"  # empty session id
        body += struct.pack("!H", self.cipher_suite)
        body += b"\x00"  # null compression
        handshake = (
            bytes([HANDSHAKE_SERVER_HELLO]) + len(body).to_bytes(3, "big") + body
        )
        return (
            bytes([RECORD_TYPE_HANDSHAKE])
            + struct.pack("!H", VERSION_TLS12)
            + struct.pack("!H", len(handshake))
            + handshake
        )


def tls_alert(description: int = 40) -> bytes:
    """A fatal TLS alert record (default: handshake_failure)."""
    return bytes([RECORD_TYPE_ALERT]) + struct.pack("!H", VERSION_TLS12) + struct.pack(
        "!H", 2
    ) + bytes([2, description])
