"""DNS message model: queries, responses, injection-relevant fields.

Implements the wire format of RFC 1035 for the subset the DNS-censorship
extension needs: A/AAAA questions, A answers, NXDOMAIN responses, and
the header bits a client uses to tell a forged answer from a resolver's
(ID matching, RA bit, answer contents). Name compression is emitted
never and tolerated on parse (forged responses from real injectors
often echo the uncompressed question).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

QTYPE_A = 1
QTYPE_AAAA = 28
QTYPE_TXT = 16
QCLASS_IN = 1

RCODE_NOERROR = 0
RCODE_NXDOMAIN = 3
RCODE_SERVFAIL = 2

_HEADER = struct.Struct("!HHHHHH")


def encode_name(name: str) -> bytes:
    """Encode a domain name as length-prefixed labels."""
    out = bytearray()
    for label in name.strip(".").split("."):
        raw = label.encode("idna") if any(ord(c) > 127 for c in label) else label.encode()
        if not 0 < len(raw) < 64:
            raise ValueError(f"invalid DNS label: {label!r}")
        out.append(len(raw))
        out.extend(raw)
    out.append(0)
    return bytes(out)


def decode_name(data: bytes, offset: int) -> Tuple[str, int]:
    """Decode a (possibly compressed) name; returns (name, next offset)."""
    labels: List[str] = []
    jumped = False
    next_offset = offset
    seen = set()
    while True:
        if offset >= len(data):
            raise ValueError("truncated DNS name")
        length = data[offset]
        if length == 0:
            if not jumped:
                next_offset = offset + 1
            break
        if length & 0xC0 == 0xC0:
            if offset + 1 >= len(data):
                raise ValueError("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | data[offset + 1]
            if pointer in seen:
                raise ValueError("compression loop")
            seen.add(pointer)
            if not jumped:
                next_offset = offset + 2
            offset = pointer
            jumped = True
            continue
        if length >= 64:
            raise ValueError(f"invalid label length: {length}")
        labels.append(data[offset + 1 : offset + 1 + length].decode("ascii", "replace"))
        offset += 1 + length
    return ".".join(labels), next_offset


@dataclass
class DNSQuestion:
    qname: str
    qtype: int = QTYPE_A
    qclass: int = QCLASS_IN


@dataclass
class DNSAnswer:
    name: str
    rtype: int = QTYPE_A
    ttl: int = 300
    address: str = "0.0.0.0"  # A-record data

    def rdata(self) -> bytes:
        if self.rtype == QTYPE_A:
            return bytes(int(part) for part in self.address.split("."))
        return self.address.encode()


@dataclass
class DNSMessage:
    """A DNS query or response."""

    txid: int = 0
    is_response: bool = False
    recursion_desired: bool = True
    recursion_available: bool = False
    authoritative: bool = False
    rcode: int = RCODE_NOERROR
    questions: List[DNSQuestion] = field(default_factory=list)
    answers: List[DNSAnswer] = field(default_factory=list)

    @property
    def qname(self) -> Optional[str]:
        return self.questions[0].qname if self.questions else None

    def to_bytes(self) -> bytes:
        flags = 0
        if self.is_response:
            flags |= 0x8000
        if self.authoritative:
            flags |= 0x0400
        if self.recursion_desired:
            flags |= 0x0100
        if self.recursion_available:
            flags |= 0x0080
        flags |= self.rcode & 0xF
        out = bytearray(
            _HEADER.pack(
                self.txid & 0xFFFF,
                flags,
                len(self.questions),
                len(self.answers),
                0,
                0,
            )
        )
        for question in self.questions:
            out.extend(encode_name(question.qname))
            out.extend(struct.pack("!HH", question.qtype, question.qclass))
        for answer in self.answers:
            out.extend(encode_name(answer.name))
            rdata = answer.rdata()
            out.extend(
                struct.pack(
                    "!HHIH", answer.rtype, QCLASS_IN, answer.ttl, len(rdata)
                )
            )
            out.extend(rdata)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "DNSMessage":
        if len(data) < 12:
            raise ValueError("truncated DNS header")
        txid, flags, qdcount, ancount, _ns, _ar = _HEADER.unpack(data[:12])
        message = cls(
            txid=txid,
            is_response=bool(flags & 0x8000),
            authoritative=bool(flags & 0x0400),
            recursion_desired=bool(flags & 0x0100),
            recursion_available=bool(flags & 0x0080),
            rcode=flags & 0xF,
        )
        offset = 12
        for _ in range(qdcount):
            qname, offset = decode_name(data, offset)
            qtype, qclass = struct.unpack("!HH", data[offset : offset + 4])
            offset += 4
            message.questions.append(DNSQuestion(qname, qtype, qclass))
        for _ in range(ancount):
            name, offset = decode_name(data, offset)
            rtype, _rclass, ttl, rdlength = struct.unpack(
                "!HHIH", data[offset : offset + 10]
            )
            offset += 10
            rdata = data[offset : offset + rdlength]
            offset += rdlength
            if rtype == QTYPE_A and rdlength == 4:
                address = ".".join(str(b) for b in rdata)
            else:
                address = rdata.decode("ascii", "replace")
            message.answers.append(DNSAnswer(name, rtype, ttl, address))
        return message


def query(domain: str, txid: int = 0x1234, qtype: int = QTYPE_A) -> DNSMessage:
    """Build a standard recursive query."""
    return DNSMessage(
        txid=txid, questions=[DNSQuestion(domain, qtype)]
    )


def looks_like_dns(data: bytes) -> bool:
    """Loose sniff: plausible DNS header with at least one question."""
    if len(data) < 12:
        return False
    qdcount = struct.unpack("!H", data[4:6])[0]
    return 1 <= qdcount <= 4


def extract_qname(data: bytes) -> Optional[str]:
    """The first question name of raw DNS bytes (None if unparseable)."""
    try:
        message = DNSMessage.from_bytes(data)
    except (ValueError, struct.error):
        return None
    return message.qname
