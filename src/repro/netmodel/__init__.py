"""Byte-accurate packet models: IPv4, TCP, ICMP, HTTP and TLS.

This is the lowest substrate of the reproduction: every probe CenTrace,
CenFuzz, or CenProbe sends -- and every response a router, endpoint or
censorship device produces -- is one of these packets.
"""

from .http import HTTPRequest, HTTPResponse, ParsedRequest, RawHeader, parse_request
from .icmp import (
    ICMPMessage,
    QuoteDelta,
    compare_quote,
    time_exceeded,
)
from .dns import DNSAnswer, DNSMessage, DNSQuestion, query as dns_query
from .ip import FlowKey, IPHeader, int_to_ip, ip_to_int
from .packet import Packet, icmp_packet, tcp_packet, udp_packet
from .tcp import TCPOption, TCPSegment
from .udp import UDPDatagram
from .tls import ClientHello, ParsedClientHello, ServerHello, parse_client_hello

__all__ = [
    "HTTPRequest",
    "HTTPResponse",
    "ParsedRequest",
    "RawHeader",
    "parse_request",
    "ICMPMessage",
    "QuoteDelta",
    "compare_quote",
    "time_exceeded",
    "FlowKey",
    "IPHeader",
    "int_to_ip",
    "ip_to_int",
    "Packet",
    "icmp_packet",
    "tcp_packet",
    "udp_packet",
    "UDPDatagram",
    "DNSAnswer",
    "DNSMessage",
    "DNSQuestion",
    "dns_query",
    "TCPOption",
    "TCPSegment",
    "ClientHello",
    "ParsedClientHello",
    "ServerHello",
    "parse_client_hello",
]
