"""ICMP messages and router packet-quoting behaviour.

CenTrace relies on ICMP Time Exceeded (type 11) responses from routers to
map paths (RFC 792), and — following Tracebox — on the *quoted* copy of
the expired packet inside the ICMP payload to detect in-flight header
modifications. Routers differ in how much they quote:

* RFC 792 routers quote the IP header plus the first 64 bits (8 bytes) of
  the transport payload — just enough for ports and sequence number.
* RFC 1812 routers quote as much of the original packet as fits in a
  576-byte ICMP datagram.

The paper (§4.3) measures 57.6% of quoting routers following RFC 792 and
the rest RFC 1812, with 32.06% of quotes showing an altered IP TOS field;
our router models reproduce both behaviours.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .ip import IPHeader, checksum16

TYPE_DEST_UNREACHABLE = 3
TYPE_TIME_EXCEEDED = 11

CODE_TTL_EXCEEDED = 0
CODE_PORT_UNREACHABLE = 3
CODE_HOST_UNREACHABLE = 1

# RFC 792: quote = IP header + 64 bits of original datagram's data.
RFC792_QUOTE_TRANSPORT_BYTES = 8
# RFC 1812 (§4.3.2.3): the ICMP datagram SHOULD contain as much of the
# original datagram as possible without exceeding 576 bytes.
RFC1812_MAX_DATAGRAM = 576

QUOTE_RFC792 = "rfc792"
QUOTE_RFC1812 = "rfc1812"


@dataclass
class ICMPMessage:
    """A structural ICMP error message carrying a quoted packet."""

    icmp_type: int
    code: int
    quote: bytes = b""

    def to_bytes(self) -> bytes:
        header = struct.pack("!BBHI", self.icmp_type, self.code, 0, 0)
        body = header + self.quote
        csum = checksum16(body)
        return body[:2] + struct.pack("!H", csum) + body[4:]

    @classmethod
    def from_bytes(cls, data: bytes) -> "ICMPMessage":
        if len(data) < 8:
            raise ValueError("truncated ICMP message")
        icmp_type, code, _csum, _unused = struct.unpack("!BBHI", data[:8])
        return cls(icmp_type=icmp_type, code=code, quote=data[8:])

    @property
    def is_time_exceeded(self) -> bool:
        return self.icmp_type == TYPE_TIME_EXCEEDED


def build_quote(original: bytes, policy: str) -> bytes:
    """Extract the quoted bytes of ``original`` per the router's policy.

    ``original`` is the full serialized IP packet (header + transport).
    """
    if policy == QUOTE_RFC792:
        return original[: IPHeader.HEADER_LEN + RFC792_QUOTE_TRANSPORT_BYTES]
    if policy == QUOTE_RFC1812:
        # Leave room for the outer IP (20) and ICMP (8) headers.
        budget = RFC1812_MAX_DATAGRAM - IPHeader.HEADER_LEN - 8
        return original[:budget]
    raise ValueError(f"unknown quoting policy: {policy!r}")


def time_exceeded(original: bytes, policy: str = QUOTE_RFC792) -> ICMPMessage:
    """Build a Time Exceeded (TTL) message quoting ``original``."""
    return ICMPMessage(
        icmp_type=TYPE_TIME_EXCEEDED,
        code=CODE_TTL_EXCEEDED,
        quote=build_quote(original, policy),
    )


@dataclass
class QuoteDelta:
    """Differences between a sent packet and a router's quoted copy.

    Used both by CenTrace's Tracebox-style analysis (§4.1) and as
    clustering features (§7.1, Table 3).
    """

    tos_changed: bool = False
    ip_flags_changed: bool = False
    ttl_delta: int = 0
    identification_changed: bool = False
    length_changed: bool = False
    transport_bytes_quoted: int = 0
    follows_rfc792: bool = False
    payload_modified: bool = False

    def any_header_change(self) -> bool:
        return (
            self.tos_changed
            or self.ip_flags_changed
            or self.identification_changed
            or self.length_changed
        )


def compare_quote(sent_packet: bytes, quote: bytes, sent_ttl: int) -> QuoteDelta:
    """Compare the packet we sent against the router-quoted copy.

    ``sent_ttl`` is the TTL we put on the wire; the quoted TTL will have
    been decremented along the way, so only *unexpected* deltas (beyond
    full decrement to 0/1) are interesting.
    """
    delta = QuoteDelta()
    if len(quote) < IPHeader.HEADER_LEN:
        return delta
    sent_ip, _ = IPHeader.from_bytes(sent_packet)
    quoted_ip, _ = IPHeader.from_bytes(quote)
    delta.tos_changed = quoted_ip.tos != sent_ip.tos
    delta.ip_flags_changed = quoted_ip.flags != sent_ip.flags
    delta.ttl_delta = sent_ttl - quoted_ip.ttl
    delta.identification_changed = (
        quoted_ip.identification != sent_ip.identification
    )
    delta.length_changed = quoted_ip.total_length != sent_ip.total_length
    transport_quoted = len(quote) - IPHeader.HEADER_LEN
    delta.transport_bytes_quoted = transport_quoted
    delta.follows_rfc792 = transport_quoted <= RFC792_QUOTE_TRANSPORT_BYTES
    sent_transport = sent_packet[IPHeader.HEADER_LEN :]
    quoted_transport = quote[IPHeader.HEADER_LEN :]
    # Compare only the overlapping prefix; skip the TCP checksum bytes
    # (offsets 16-17 in the TCP header) which legitimately differ when a
    # middlebox rewrites and re-checksums.
    overlap = min(len(sent_transport), len(quoted_transport))
    for i in range(overlap):
        if 16 <= i < 18:
            continue
        if sent_transport[i] != quoted_transport[i]:
            delta.payload_modified = True
            break
    return delta
