"""IPv4 header model with byte-accurate serialization.

The simulator mostly works with the structural :class:`IPHeader` objects,
but CenTrace's quoted-ICMP analysis (following Tracebox) compares the raw
bytes a router quoted against the bytes that were sent, so headers must
round-trip through ``to_bytes``/``from_bytes`` exactly, including the
checksum.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Tuple

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

# IP flag bits (in the 3-bit flags field).
FLAG_RESERVED = 0x4
FLAG_DF = 0x2
FLAG_MF = 0x1

_IP_STRUCT = struct.Struct("!BBHHHBBH4s4s")


@lru_cache(maxsize=4096)
def ip_to_int(address: str) -> int:
    """Convert dotted-quad ``address`` to a 32-bit integer.

    Cached: a simulated world reuses a handful of addresses across
    millions of serializations, and this sits under every checksum.
    (``lru_cache`` never caches the ``ValueError`` raised for malformed
    input, so validation behaviour is unchanged.)
    """
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 address: {address!r}")
        value = (value << 8) | octet
    return value


@lru_cache(maxsize=4096)
def _ip_to_packed(address: str) -> bytes:
    """``address`` as 4 network-order bytes (cached like ip_to_int)."""
    return ip_to_int(address).to_bytes(4, "big")


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to a dotted-quad string."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 integer out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def checksum16(data: bytes) -> int:
    """Compute the Internet checksum (RFC 1071) over ``data``.

    The sum of big-endian 16-bit words equals the sum of even-offset
    bytes shifted left by 8 plus the sum of odd-offset bytes, which
    keeps the whole accumulation in C-level slicing instead of a
    per-word Python loop.
    """
    total = (sum(data[::2]) << 8) + sum(data[1::2])
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass
class IPHeader:
    """A structural IPv4 header (no options).

    Field semantics follow RFC 791. ``total_length`` is filled in during
    serialization when left at 0.
    """

    src: str
    dst: str
    ttl: int = 64
    protocol: int = PROTO_TCP
    tos: int = 0
    identification: int = 0
    flags: int = FLAG_DF
    frag_offset: int = 0
    total_length: int = 0
    checksum: int = 0

    HEADER_LEN = 20

    def to_bytes(self, payload_len: int = 0) -> bytes:
        """Serialize to 20 header bytes, computing length and checksum.

        ``payload_len`` is used to fill ``total_length`` when the field is
        unset; a non-zero ``total_length`` is preserved verbatim so that
        deliberately-corrupt headers survive round-trips.
        """
        total_length = self.total_length or (self.HEADER_LEN + payload_len)
        version_ihl = (4 << 4) | 5
        flags_frag = ((self.flags & 0x7) << 13) | (self.frag_offset & 0x1FFF)
        raw = _IP_STRUCT.pack(
            version_ihl,
            self.tos & 0xFF,
            total_length & 0xFFFF,
            self.identification & 0xFFFF,
            flags_frag,
            self.ttl & 0xFF,
            self.protocol & 0xFF,
            0,
            _ip_to_packed(self.src),
            _ip_to_packed(self.dst),
        )
        csum = checksum16(raw)
        return raw[:10] + csum.to_bytes(2, "big") + raw[12:]

    @classmethod
    def from_bytes(cls, data: bytes) -> Tuple["IPHeader", int]:
        """Parse an IPv4 header; returns (header, header_length_bytes)."""
        if len(data) < cls.HEADER_LEN:
            raise ValueError("truncated IPv4 header")
        (
            version_ihl,
            tos,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            csum,
            src_raw,
            dst_raw,
        ) = _IP_STRUCT.unpack(data[: cls.HEADER_LEN])
        version = version_ihl >> 4
        ihl = (version_ihl & 0xF) * 4
        if version != 4:
            raise ValueError(f"not an IPv4 packet (version={version})")
        if ihl < cls.HEADER_LEN:
            raise ValueError(f"invalid IHL: {ihl}")
        header = cls(
            src=int_to_ip(int.from_bytes(src_raw, "big")),
            dst=int_to_ip(int.from_bytes(dst_raw, "big")),
            ttl=ttl,
            protocol=protocol,
            tos=tos,
            identification=identification,
            flags=(flags_frag >> 13) & 0x7,
            frag_offset=flags_frag & 0x1FFF,
            total_length=total_length,
            checksum=csum,
        )
        return header, ihl

    def copy(self, **changes) -> "IPHeader":
        """Return a copy with ``changes`` applied.

        Hand-rolled rather than :func:`dataclasses.replace`: headers are
        copied on every hop walk, making this one of the hottest
        allocation sites in the simulator.
        """
        new = IPHeader.__new__(IPHeader)
        new.src = self.src
        new.dst = self.dst
        new.ttl = self.ttl
        new.protocol = self.protocol
        new.tos = self.tos
        new.identification = self.identification
        new.flags = self.flags
        new.frag_offset = self.frag_offset
        new.total_length = self.total_length
        new.checksum = self.checksum
        if changes:
            for name, value in changes.items():
                if name not in _IP_HEADER_FIELDS:
                    raise TypeError(
                        f"IPHeader.copy() got an unexpected field {name!r}"
                    )
                setattr(new, name, value)
        return new

    def verify_checksum(self, raw: bytes) -> bool:
        """Check that the checksum in serialized ``raw`` header verifies."""
        return checksum16(raw[: self.HEADER_LEN]) == 0


_IP_HEADER_FIELDS = frozenset(
    (
        "src",
        "dst",
        "ttl",
        "protocol",
        "tos",
        "identification",
        "flags",
        "frag_offset",
        "total_length",
        "checksum",
    )
)


@dataclass
class FlowKey:
    """The classic 5-tuple identifying a flow (used for ECMP hashing and
    stateful device tracking)."""

    src: str
    dst: str
    sport: int
    dport: int
    protocol: int = PROTO_TCP

    def reversed(self) -> "FlowKey":
        """The key of the reverse direction of this flow."""
        return FlowKey(
            src=self.dst,
            dst=self.src,
            sport=self.dport,
            dport=self.sport,
            protocol=self.protocol,
        )

    def canonical(self) -> Tuple[str, str, int, int, int]:
        """A direction-independent tuple (for bidirectional state)."""
        forward = (self.src, self.dst, self.sport, self.dport, self.protocol)
        backward = (self.dst, self.src, self.dport, self.sport, self.protocol)
        return min(forward, backward)

    def as_tuple(self) -> Tuple[str, str, int, int, int]:
        return (self.src, self.dst, self.sport, self.dport, self.protocol)

    def __hash__(self) -> int:
        return hash(self.as_tuple())
