"""Composite packets flowing through the simulator.

A :class:`Packet` is an IPv4 header plus either a TCP segment or an ICMP
message. Packets serialize to real bytes (needed for ICMP quoting and
Tracebox-style delta analysis) and carry a little simulator-side
provenance (who actually emitted the packet) that real measurement code
is *not* allowed to read — it exists so tests can assert ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .icmp import ICMPMessage
from .ip import PROTO_ICMP, PROTO_TCP, PROTO_UDP, FlowKey, IPHeader
from .netctx import NetContext, default_context
from .tcp import ACK, FIN, PSH, RST, SYN, TCPSegment
from .udp import UDPDatagram


def next_ip_id(net: Optional[NetContext] = None) -> int:
    """A monotonically increasing IP identification value.

    Draws from ``net`` when given; otherwise from the process-wide
    default context. Simulated traffic must always pass the owning
    simulator's ``net_context`` so a run's identifiers replay
    bit-identically regardless of what else allocated in this process.
    """
    return (net if net is not None else default_context()).next_ip_id()


def reset_ip_ids(start: int = 1) -> None:
    """Deprecated shim: rewind the *default* context's IP-ID stream.

    Simulated traffic now draws from the owning simulator's
    :class:`~repro.netmodel.netctx.NetContext`; reset that instead
    (``sim.net_context.reset()``). This shim only affects packets built
    outside any simulator.
    """
    default_context().reset_ip_ids(start)


@dataclass
class Packet:
    """An IP packet with a TCP, UDP or ICMP payload."""

    ip: IPHeader
    tcp: Optional[TCPSegment] = None
    icmp: Optional[ICMPMessage] = None
    udp: Optional[UDPDatagram] = None
    # --- simulator ground truth, not visible to measurement tools ---
    emitted_by: Optional[str] = None  # node/device name that created this
    injected: bool = False  # True when a censorship device forged it

    def __post_init__(self) -> None:
        tcp, icmp, udp = self.tcp, self.icmp, self.udp
        if tcp is not None:
            if icmp is not None or udp is not None:
                raise ValueError(
                    "packet must carry exactly one of tcp/icmp/udp"
                )
            self.ip.protocol = PROTO_TCP
        elif udp is not None:
            if icmp is not None:
                raise ValueError(
                    "packet must carry exactly one of tcp/icmp/udp"
                )
            self.ip.protocol = PROTO_UDP
        elif icmp is not None:
            self.ip.protocol = PROTO_ICMP
        else:
            raise ValueError("packet must carry exactly one of tcp/icmp/udp")

    @property
    def is_tcp(self) -> bool:
        return self.tcp is not None

    @property
    def is_icmp(self) -> bool:
        return self.icmp is not None

    @property
    def is_udp(self) -> bool:
        return self.udp is not None

    def flow_key(self) -> FlowKey:
        if self.tcp is not None:
            return FlowKey(
                src=self.ip.src,
                dst=self.ip.dst,
                sport=self.tcp.sport,
                dport=self.tcp.dport,
                protocol=PROTO_TCP,
            )
        if self.udp is not None:
            return FlowKey(
                src=self.ip.src,
                dst=self.ip.dst,
                sport=self.udp.sport,
                dport=self.udp.dport,
                protocol=PROTO_UDP,
            )
        raise ValueError("ICMP packets have no flow key")

    def to_bytes(self) -> bytes:
        """Full serialized packet (IP header + transport)."""
        if self.tcp is not None:
            transport = self.tcp.to_bytes(self.ip.src, self.ip.dst)
        elif self.udp is not None:
            transport = self.udp.to_bytes(self.ip.src, self.ip.dst)
        else:
            transport = self.icmp.to_bytes()
        return self.ip.to_bytes(payload_len=len(transport)) + transport

    @classmethod
    def from_bytes(cls, data: bytes) -> "Packet":
        ip, header_len = IPHeader.from_bytes(data)
        rest = data[header_len:]
        if ip.protocol == PROTO_TCP:
            return cls(ip=ip, tcp=TCPSegment.from_bytes(rest))
        if ip.protocol == PROTO_UDP:
            return cls(ip=ip, udp=UDPDatagram.from_bytes(rest))
        if ip.protocol == PROTO_ICMP:
            return cls(ip=ip, icmp=ICMPMessage.from_bytes(rest))
        raise ValueError(f"unsupported protocol: {ip.protocol}")

    def brief(self) -> str:
        """One-line human-readable summary (for debugging and logs)."""
        if self.tcp is not None:
            return (
                f"{self.ip.src}:{self.tcp.sport} > {self.ip.dst}:{self.tcp.dport}"
                f" [{self.tcp.describe_flags()}] ttl={self.ip.ttl}"
                f" len={len(self.tcp.payload)}"
            )
        if self.udp is not None:
            return (
                f"{self.ip.src}:{self.udp.sport} > {self.ip.dst}:{self.udp.dport}"
                f" UDP ttl={self.ip.ttl} len={len(self.udp.payload)}"
            )
        return (
            f"{self.ip.src} > {self.ip.dst} ICMP type={self.icmp.icmp_type}"
            f" code={self.icmp.code} ttl={self.ip.ttl}"
        )


def tcp_packet(
    src: str,
    dst: str,
    sport: int,
    dport: int,
    *,
    flags: int = SYN,
    seq: int = 0,
    ack: int = 0,
    ttl: int = 64,
    payload: bytes = b"",
    tos: int = 0,
    ip_id: Optional[int] = None,
    window: int = 65535,
    net: Optional[NetContext] = None,
) -> Packet:
    """Convenience constructor for a TCP packet."""
    return Packet(
        ip=IPHeader(
            src=src,
            dst=dst,
            ttl=ttl,
            tos=tos,
            identification=(
                (net if net is not None else default_context()).next_ip_id()
                if ip_id is None
                else ip_id
            ),
        ),
        tcp=TCPSegment(
            sport=sport,
            dport=dport,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            payload=payload,
        ),
    )


def icmp_packet(
    src: str,
    dst: str,
    message: ICMPMessage,
    *,
    ttl: int = 64,
    net: Optional[NetContext] = None,
) -> Packet:
    """Convenience constructor for an ICMP packet."""
    return Packet(
        ip=IPHeader(
            src=src,
            dst=dst,
            ttl=ttl,
            identification=(
                net if net is not None else default_context()
            ).next_ip_id(),
        ),
        icmp=message,
    )


def udp_packet(
    src: str,
    dst: str,
    sport: int,
    dport: int,
    *,
    payload: bytes = b"",
    ttl: int = 64,
    tos: int = 0,
    ip_id: Optional[int] = None,
    net: Optional[NetContext] = None,
) -> Packet:
    """Convenience constructor for a UDP packet."""
    return Packet(
        ip=IPHeader(
            src=src,
            dst=dst,
            ttl=ttl,
            tos=tos,
            identification=(
                (net if net is not None else default_context()).next_ip_id()
                if ip_id is None
                else ip_id
            ),
        ),
        udp=UDPDatagram(sport=sport, dport=dport, payload=payload),
    )
