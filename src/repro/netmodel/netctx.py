"""Per-run network identifier allocation: the :class:`NetContext`.

Everything a measurement emits carries identifiers that must replay
bit-identically — IP identification values, client ephemeral ports (the
ECMP flow-hash input), the sequential IP-ID stream some injectors use,
and the rotating fake-DNS-answer cursor of GFW-style injectors. These
used to live in four module-level counters scattered over
``netmodel/packet.py``, ``netsim/tcpstack.py`` and
``devices/actions.py``, held together by a reset ritual in the campaign
executor. A :class:`NetContext` owns all four streams as one explicit
object: the simulator (and through it, the world) holds exactly one,
threads it through every allocation site, and the executor's per-unit
determinism guarantee reduces to ``world.net_context.reset()``.

A process-wide default context backs the deprecated module-level
helpers (``next_ip_id()`` with no context, ``reset_ip_ids()``, ...) so
code that builds packets outside any simulator — tests, examples —
keeps working during the migration. Measurement code must always draw
from the simulator's own context: mixing the two streams would make a
measurement's identifiers depend on unrelated allocations elsewhere in
the process, exactly the coupling this class removes.
"""

from __future__ import annotations


class NetContext:
    """All mutable network-identifier streams for one simulated run.

    One instance is owned by each :class:`~repro.netsim.simulator.Simulator`
    (``sim.net_context``) and shared by every allocation site in that
    world: packet constructors, the client TCP stack, endpoint stacks,
    DNS resolvers and device injection builders. ``reset()`` rewinds
    every stream to its canonical start — the whole per-unit
    determinism protocol in one call.
    """

    IP_ID_START = 1
    EPHEMERAL_BASE = 32768
    EPHEMERAL_SPAN = 28000
    SEQUENTIAL_IP_ID_START = 0x1000
    DNS_FAKE_CURSOR_START = 0

    __slots__ = ("_ip_id", "_ephemeral", "_sequential_ip_id", "_dns_fake_cursor")

    def __init__(self) -> None:
        self.reset()

    # -- the reset protocol -------------------------------------------

    def reset(self) -> None:
        """Rewind every identifier stream to its canonical start.

        Called once per campaign work unit (see
        ``repro.experiments.executor.prepare_unit``), making each
        measurement's identifiers a function of the unit alone — never
        of which measurements ran earlier or in which process.
        """
        self.reset_ip_ids()
        self.reset_ephemeral_ports()
        self.reset_sequential_ip_id()
        self.reset_dns_fake_cursor()

    def reset_ip_ids(self, start: int = IP_ID_START) -> None:
        self._ip_id = start

    def reset_ephemeral_ports(self, base: int = EPHEMERAL_BASE) -> None:
        self._ephemeral = base

    def reset_sequential_ip_id(self, start: int = SEQUENTIAL_IP_ID_START) -> None:
        self._sequential_ip_id = start

    def reset_dns_fake_cursor(self, start: int = DNS_FAKE_CURSOR_START) -> None:
        self._dns_fake_cursor = start

    # -- allocators ----------------------------------------------------

    def next_ip_id(self) -> int:
        """A monotonically increasing IP identification value."""
        value = self._ip_id
        self._ip_id = value + 1
        return value & 0xFFFF

    def next_ephemeral_port(self) -> int:
        """A fresh client source port (wraps within the ephemeral range)."""
        port = self._ephemeral
        self._ephemeral = port + 1
        return self.EPHEMERAL_BASE + (
            (port - self.EPHEMERAL_BASE) % self.EPHEMERAL_SPAN
        )

    # -- bulk allocation (the batched packet plane) --------------------

    def take_ip_ids(self, count: int) -> list:
        """``count`` sequential IP IDs, identical to ``count`` calls of
        :meth:`next_ip_id`.

        The batch engine allocates identifier blocks up front for probes
        it materializes lazily; bulk draws must stay bit-identical with
        the per-call stream so batched and scalar runs interleave
        allocations the same way.
        """
        start = self._ip_id
        self._ip_id = start + count
        return [(start + i) & 0xFFFF for i in range(count)]

    def take_ephemeral_ports(self, count: int) -> list:
        """``count`` sequential source ports, identical to ``count``
        calls of :meth:`next_ephemeral_port`."""
        base = self.EPHEMERAL_BASE
        span = self.EPHEMERAL_SPAN
        start = self._ephemeral
        self._ephemeral = start + count
        return [base + ((start + i - base) % span) for i in range(count)]

    def next_sequential_ip_id(self) -> int:
        """The shared IPID_SEQUENTIAL stream of injecting devices."""
        self._sequential_ip_id = (self._sequential_ip_id + 1) & 0xFFFF
        return self._sequential_ip_id

    def next_dns_fake_index(self) -> int:
        """Advance the rotating fake-DNS-answer cursor by one."""
        cursor = self._dns_fake_cursor
        self._dns_fake_cursor = cursor + 1
        return cursor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NetContext ip_id={self._ip_id} ephemeral={self._ephemeral}"
            f" seq_ip_id={self._sequential_ip_id:#x}"
            f" dns_cursor={self._dns_fake_cursor}>"
        )


# The process-wide fallback stream behind the deprecated module-level
# helpers. Simulators never touch it — each owns a private context — so
# it only serves packets built outside any simulated world.
_DEFAULT_CONTEXT = NetContext()


def default_context() -> NetContext:
    """The fallback context used when no explicit one is supplied."""
    return _DEFAULT_CONTEXT
