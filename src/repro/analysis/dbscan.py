"""DBSCAN clustering with k-NN epsilon estimation, from scratch (§7.3).

The paper uses DBSCAN because the number of device types is unknown a
priori, with ε=1.2 chosen via the average-k-nearest-neighbor-distance
technique of Rahmah & Sitanggang. Both pieces are implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

NOISE = -1
UNVISITED = -2


@dataclass
class DBSCANResult:
    """Cluster labels (−1 = noise) plus run metadata."""

    labels: np.ndarray
    eps: float
    min_samples: int

    @property
    def n_clusters(self) -> int:
        unique = set(self.labels.tolist())
        unique.discard(NOISE)
        return len(unique)

    def cluster_indices(self, cluster: int) -> np.ndarray:
        return np.flatnonzero(self.labels == cluster)

    def noise_indices(self) -> np.ndarray:
        return np.flatnonzero(self.labels == NOISE)


def _pairwise_distances(X: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix (fine at measurement scale)."""
    squared = np.sum(X**2, axis=1)
    gram = X @ X.T
    d2 = squared[:, None] + squared[None, :] - 2.0 * gram
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)


def dbscan(
    X: np.ndarray,
    eps: float,
    min_samples: int = 3,
    *,
    distances: Optional[np.ndarray] = None,
) -> DBSCANResult:
    """Standard DBSCAN over Euclidean distance."""
    X = np.asarray(X, dtype=float)
    n = X.shape[0]
    if distances is None:
        distances = _pairwise_distances(X)
    labels = np.full(n, UNVISITED, dtype=int)
    neighborhoods = [np.flatnonzero(distances[i] <= eps) for i in range(n)]
    cluster = 0
    for i in range(n):
        if labels[i] != UNVISITED:
            continue
        if neighborhoods[i].size < min_samples:
            labels[i] = NOISE
            continue
        labels[i] = cluster
        frontier = list(neighborhoods[i])
        while frontier:
            j = frontier.pop()
            if labels[j] == NOISE:
                labels[j] = cluster  # border point
            if labels[j] != UNVISITED:
                continue
            labels[j] = cluster
            if neighborhoods[j].size >= min_samples:
                frontier.extend(neighborhoods[j])
        cluster += 1
    return DBSCANResult(labels=labels, eps=eps, min_samples=min_samples)


def k_distance_curve(X: np.ndarray, k: int) -> np.ndarray:
    """Sorted distance of every point to its k-th nearest neighbor.

    Raises ``ValueError`` when the dataset has no k-th neighbor
    (``n <= k``) — silently clamping k would return a curve for a
    different, smaller k and mislead the knee inspection.
    """
    X = np.asarray(X, dtype=float)
    n = X.shape[0]
    if n <= k:
        raise ValueError(
            f"k-distance curve needs more than k={k} points, got {n}"
        )
    distances = _pairwise_distances(X)
    kth = np.sort(distances, axis=1)[:, k]
    return np.sort(kth)


def estimate_eps(X: np.ndarray, k: int = 3) -> float:
    """ε estimate: the average distance of points to their k nearest
    neighbors (Rahmah & Sitanggang's technique, cited in §7.3).

    ``k`` should be the minimum number of points expected to form a
    cluster (the paper's min_samples analog). Datasets with ``n <= k``
    points have no k-th neighbor, so no estimate exists — that raises
    ``ValueError`` rather than returning an arbitrary constant (callers
    that want a recorded fallback use :func:`estimate_eps_info`).
    """
    eps, info = estimate_eps_info(X, k=k)
    if info["fallback"] is not None:
        raise ValueError(
            f"cannot estimate eps with k={k} from {info['n_points']} "
            f"point(s): need at least k+1 points"
        )
    return eps


def estimate_eps_info(X: np.ndarray, k: int = 3) -> Tuple[float, Dict]:
    """Like :func:`estimate_eps`, but degrades explicitly on degenerate
    inputs instead of raising, returning ``(eps, info)``.

    ``info`` records how the estimate was produced: ``n_points``, ``k``,
    and ``fallback`` — ``None`` for a genuine k-NN estimate,
    ``"too_few_points"`` when ``n <= k`` (eps falls back to 1.0), or
    ``"duplicate_points"`` when every k-NN distance is zero (eps is
    clamped to a strictly positive floor so DBSCAN stays well-defined).
    """
    X = np.asarray(X, dtype=float)
    n = X.shape[0]
    info: Dict = {"n_points": int(n), "k": int(k), "fallback": None}
    if n <= k:
        info["fallback"] = "too_few_points"
        return 1.0, info
    distances = _pairwise_distances(X)
    sorted_d = np.sort(distances, axis=1)
    # Columns 1..k: the k nearest neighbors (column 0 is self).
    knn = sorted_d[:, 1 : k + 1]
    mean = float(knn.mean())
    if mean <= 0.0:
        # All points coincide: a zero ε would make DBSCAN degenerate.
        info["fallback"] = "duplicate_points"
        return 1e-9, info
    return mean, info
