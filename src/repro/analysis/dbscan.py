"""DBSCAN clustering with k-NN epsilon estimation, from scratch (§7.3).

The paper uses DBSCAN because the number of device types is unknown a
priori, with ε=1.2 chosen via the average-k-nearest-neighbor-distance
technique of Rahmah & Sitanggang. Both pieces are implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

NOISE = -1
UNVISITED = -2


@dataclass
class DBSCANResult:
    """Cluster labels (−1 = noise) plus run metadata."""

    labels: np.ndarray
    eps: float
    min_samples: int

    @property
    def n_clusters(self) -> int:
        unique = set(self.labels.tolist())
        unique.discard(NOISE)
        return len(unique)

    def cluster_indices(self, cluster: int) -> np.ndarray:
        return np.flatnonzero(self.labels == cluster)

    def noise_indices(self) -> np.ndarray:
        return np.flatnonzero(self.labels == NOISE)


def _pairwise_distances(X: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix (fine at measurement scale)."""
    squared = np.sum(X**2, axis=1)
    gram = X @ X.T
    d2 = squared[:, None] + squared[None, :] - 2.0 * gram
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)


def dbscan(
    X: np.ndarray,
    eps: float,
    min_samples: int = 3,
    *,
    distances: Optional[np.ndarray] = None,
) -> DBSCANResult:
    """Standard DBSCAN over Euclidean distance."""
    X = np.asarray(X, dtype=float)
    n = X.shape[0]
    if distances is None:
        distances = _pairwise_distances(X)
    labels = np.full(n, UNVISITED, dtype=int)
    neighborhoods = [np.flatnonzero(distances[i] <= eps) for i in range(n)]
    cluster = 0
    for i in range(n):
        if labels[i] != UNVISITED:
            continue
        if neighborhoods[i].size < min_samples:
            labels[i] = NOISE
            continue
        labels[i] = cluster
        frontier = list(neighborhoods[i])
        while frontier:
            j = frontier.pop()
            if labels[j] == NOISE:
                labels[j] = cluster  # border point
            if labels[j] != UNVISITED:
                continue
            labels[j] = cluster
            if neighborhoods[j].size >= min_samples:
                frontier.extend(neighborhoods[j])
        cluster += 1
    return DBSCANResult(labels=labels, eps=eps, min_samples=min_samples)


def k_distance_curve(X: np.ndarray, k: int) -> np.ndarray:
    """Sorted distance of every point to its k-th nearest neighbor."""
    X = np.asarray(X, dtype=float)
    distances = _pairwise_distances(X)
    kth = np.sort(distances, axis=1)[:, min(k, X.shape[0] - 1)]
    return np.sort(kth)


def estimate_eps(X: np.ndarray, k: int = 3) -> float:
    """ε estimate: the average distance of points to their k nearest
    neighbors (Rahmah & Sitanggang's technique, cited in §7.3).

    ``k`` should be the minimum number of points expected to form a
    cluster (the paper's min_samples analog).
    """
    X = np.asarray(X, dtype=float)
    if X.shape[0] <= k:
        return 1.0
    distances = _pairwise_distances(X)
    sorted_d = np.sort(distances, axis=1)
    # Columns 1..k: the k nearest neighbors (column 0 is self).
    knn = sorted_d[:, 1 : k + 1]
    # A zero estimate (duplicated points) would make DBSCAN degenerate;
    # keep ε strictly positive.
    return float(max(knn.mean(), 1e-9))
