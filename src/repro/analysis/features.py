"""Feature extraction for clustering censorship deployments (§7.1).

Each endpoint that encountered blocking contributes one feature vector
built from its CenTrace, CenFuzz and banner-grab measurements —
Table 3's feature set. Feature names follow Figure 9's labels so the
importance plot reads like the paper's.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.cenfuzz.runner import EndpointFuzzReport
from ..core.cenfuzz.strategies import all_strategies
from ..core.cenprobe.scanner import ProbeReport
from ..core.centrace.results import (
    CenTraceResult,
    TYPE_FIN,
    TYPE_HTTP,
    TYPE_RST,
    TYPE_TIMEOUT,
)

_RESPONSE_CODES = {TYPE_TIMEOUT: 0.0, TYPE_RST: 1.0, TYPE_FIN: 2.0, TYPE_HTTP: 3.0}

# Ports whose presence is individually informative (management planes).
_SIGNATURE_PORTS = (22, 23, 80, 443, 8080, 8443, 161, 21)


def strategy_feature_names() -> List[str]:
    """The CenFuzz-derived feature names (one per strategy) + Normal."""
    return sorted(all_strategies().keys()) + ["Normal"]


def base_feature_names() -> List[str]:
    names = [
        "CensorResponse",
        "OnPath",
        "InjectedIPTTL",
        "InjectedIPID",
        "InjectedIPFlags",
        "InjectedTCPFlags",
        "InjectedTCPWindow",
        "InjectedTCPOptionCount",
        "IPTOSChanged",
        "IPFlagsChanged",
        "QuoteRFC792",
        "OpenPortCount",
    ]
    names.extend(f"Port{p}Open" for p in _SIGNATURE_PORTS)
    # Nmap-style crafted-probe features (§5.1 / os_probes).
    from ..core.cenprobe.os_probes import OS_FEATURE_NAMES

    names.extend(OS_FEATURE_NAMES)
    return names


def all_feature_names() -> List[str]:
    return base_feature_names() + strategy_feature_names()


@dataclass
class EndpointFeatures:
    """One endpoint's feature vector plus metadata."""

    endpoint_ip: str
    country: Optional[str] = None
    asn: Optional[int] = None
    values: Dict[str, float] = field(default_factory=dict)  # NaN = missing
    label: Optional[str] = None  # vendor label (blockpage or banner)
    label_source: Optional[str] = None  # "blockpage" | "banner"

    def vector(self, names: Sequence[str]) -> np.ndarray:
        return np.array(
            [self.values.get(name, float("nan")) for name in names], dtype=float
        )


def extract_features(
    endpoint_ip: str,
    trace_results: Sequence[CenTraceResult],
    fuzz_reports: Sequence[EndpointFuzzReport] = (),
    probe_report: Optional[ProbeReport] = None,
    *,
    country: Optional[str] = None,
    asn: Optional[int] = None,
    blockpage_vendor: Optional[str] = None,
) -> EndpointFeatures:
    """Build the Table-3 feature vector for one endpoint."""
    features = EndpointFeatures(endpoint_ip=endpoint_ip, country=country, asn=asn)
    nan = float("nan")
    values = {name: nan for name in all_feature_names()}

    blocked = [r for r in trace_results if r.blocked and r.valid]
    if blocked:
        # The censorship response type, encoded per protocol: devices
        # frequently blockpage HTTP but RST or drop TLS, and that
        # *combination* is what distinguishes vendors (Figure 9's
        # top-ranked "CensorResponse" feature).
        def _proto_code(protocol: str) -> Optional[float]:
            votes = Counter(
                r.blocking_type for r in blocked if r.protocol == protocol
            )
            if not votes:
                return None
            return _RESPONSE_CODES.get(votes.most_common(1)[0][0])

        http_code = _proto_code("http")
        tls_code = _proto_code("tls")
        if http_code is None:
            http_code = tls_code
        if tls_code is None:
            tls_code = http_code
        if http_code is not None:
            values["CensorResponse"] = 4.0 * http_code + tls_code
        in_path_votes = [r.in_path for r in blocked if r.in_path is not None]
        if in_path_votes:
            values["OnPath"] = 1.0 - float(
                sum(in_path_votes) / len(in_path_votes) >= 0.5
            )
        injected = [r for r in blocked if r.injected_tcp_flags is not None]
        if injected:
            first = injected[0]

            # A field the injection never exposed is *missing* (NaN, so
            # imputation fills it), not 0 — IP-ID 0 and window 0 are
            # legitimate observed values that distinguish injectors.
            def _observed(value: Optional[float]) -> float:
                return nan if value is None else float(value)

            values["InjectedIPTTL"] = _observed(
                first.injected_initial_ttl
                if first.injected_initial_ttl is not None
                else first.injected_ttl
            )
            values["InjectedIPID"] = _observed(first.injected_ip_id)
            values["InjectedIPFlags"] = _observed(first.injected_ip_flags)
            values["InjectedTCPFlags"] = _observed(first.injected_tcp_flags)
            values["InjectedTCPWindow"] = _observed(first.injected_tcp_window)
            values["InjectedTCPOptionCount"] = float(
                len(first.injected_tcp_options)
            )
        quotes = [r.quote_delta for r in blocked if r.quote_delta is not None]
        if quotes:
            delta = quotes[0]
            values["IPTOSChanged"] = float(delta.tos_changed)
            values["IPFlagsChanged"] = float(delta.ip_flags_changed)
            values["QuoteRFC792"] = float(delta.follows_rfc792)

    if probe_report is not None and probe_report.reachable:
        values["OpenPortCount"] = float(len(probe_report.open_ports))
        for port in _SIGNATURE_PORTS:
            values[f"Port{port}Open"] = float(port in probe_report.open_ports)
        for name, value in getattr(probe_report, "os_features", {}).items():
            if name in values:
                values[name] = float(value)

    if fuzz_reports:
        per_strategy: Dict[str, List[Tuple[int, int]]] = {}
        normal_blocked_flags = []
        for report in fuzz_reports:
            normal_blocked_flags.append(float(report.normal_blocked))
            for strategy, (ok, evaluated) in report.success_by_strategy().items():
                per_strategy.setdefault(strategy, []).append((ok, evaluated))
        for strategy, counts in per_strategy.items():
            if strategy not in values:
                # Reports can carry strategy names this build doesn't
                # know (older saved data, renamed strategies); writing
                # them through would silently widen the feature vector
                # beyond all_feature_names() and break column alignment.
                continue
            ok = sum(c[0] for c in counts)
            evaluated = sum(c[1] for c in counts)
            if evaluated:
                values[strategy] = ok / evaluated
        if normal_blocked_flags:
            values["Normal"] = float(np.mean(normal_blocked_flags))

    features.values = values

    # Labels (§7.1): prefer the blockpage fingerprint; fall back to the
    # banner-grab vendor.
    if blockpage_vendor:
        features.label = blockpage_vendor
        features.label_source = "blockpage"
    elif probe_report is not None and probe_report.vendor:
        features.label = probe_report.vendor
        features.label_source = "banner"
    return features


def feature_matrix(
    features: Sequence[EndpointFeatures],
    names: Optional[Sequence[str]] = None,
) -> Tuple[List[str], np.ndarray, List[Optional[str]]]:
    """Stack features into (names, X, labels); NaN marks missing."""
    names = list(names or all_feature_names())
    X = np.stack([f.vector(names) for f in features]) if features else np.zeros((0, len(names)))
    labels = [f.label for f in features]
    return names, X, labels


def drop_empty_columns(
    names: List[str], X: np.ndarray
) -> Tuple[List[str], np.ndarray]:
    """Remove all-NaN columns (features never measured in this run)."""
    if X.size == 0:
        return names, X
    keep = [i for i in range(X.shape[1]) if not np.all(np.isnan(X[:, i]))]
    return [names[i] for i in keep], X[:, keep]
