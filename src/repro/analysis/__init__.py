"""Clustering pipeline: features, random forest (MDI), DBSCAN, stats."""

from .cluster import (
    ClusterReport,
    DEFAULT_EPS,
    DEFAULT_TOP_FEATURES,
    FeatureImportanceReport,
    cluster_endpoints,
    rank_features,
    vendor_correlations,
)
from .dbscan import (
    DBSCANResult,
    dbscan,
    estimate_eps,
    estimate_eps_info,
    k_distance_curve,
)
from .features import (
    EndpointFeatures,
    all_feature_names,
    base_feature_names,
    drop_empty_columns,
    extract_features,
    feature_matrix,
    strategy_feature_names,
)
from .forest import (
    CrossValidationResult,
    DecisionTreeClassifier,
    RandomForestClassifier,
    cross_validate_forest,
    gini,
)
from .rule_inference import (
    InferredRuleModel,
    infer_http_rules,
    infer_rules,
    infer_tls_rules,
)
from .stats import impute_median, pairwise_group_correlation, spearman_pair, zscore
from .vendor_classifier import (
    VendorClassifier,
    VendorClassifierReport,
    VendorPrediction,
    classify_unlabeled,
)

__all__ = [
    "ClusterReport",
    "DEFAULT_EPS",
    "DEFAULT_TOP_FEATURES",
    "FeatureImportanceReport",
    "cluster_endpoints",
    "rank_features",
    "vendor_correlations",
    "DBSCANResult",
    "dbscan",
    "estimate_eps",
    "estimate_eps_info",
    "k_distance_curve",
    "EndpointFeatures",
    "all_feature_names",
    "base_feature_names",
    "drop_empty_columns",
    "extract_features",
    "feature_matrix",
    "strategy_feature_names",
    "CrossValidationResult",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "cross_validate_forest",
    "gini",
    "impute_median",
    "pairwise_group_correlation",
    "spearman_pair",
    "zscore",
    "InferredRuleModel",
    "infer_http_rules",
    "infer_rules",
    "infer_tls_rules",
    "VendorClassifier",
    "VendorClassifierReport",
    "VendorPrediction",
    "classify_unlabeled",
]
