"""The end-to-end clustering pipeline of §7.

1. Build feature vectors from CenTrace + CenFuzz + banner measurements.
2. On the labeled subset, rank features by random-forest MDI with
   3×5-fold cross-validation (§7.2).
3. Keep the top-k features, impute + standardize, and run DBSCAN with
   ε=1.2 (§7.3) — or a k-NN-estimated ε.
4. Report per-cluster composition and vendor-similarity correlations
   (§7.4).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .dbscan import DBSCANResult, dbscan, estimate_eps_info
from .features import (
    EndpointFeatures,
    all_feature_names,
    drop_empty_columns,
    feature_matrix,
)
from .forest import CrossValidationResult, cross_validate_forest
from .stats import impute_median, pairwise_group_correlation, zscore

DEFAULT_EPS = 1.2  # §7.3
DEFAULT_TOP_FEATURES = 10  # §7.3: "we pick the top 10 features"


@dataclass
class FeatureImportanceReport:
    """Ranked MDI importances from the labeled subset."""

    names: List[str]
    importances: np.ndarray
    cv: CrossValidationResult

    def ranked(self) -> List[Tuple[str, float]]:
        order = np.argsort(self.importances)[::-1]
        return [(self.names[i], float(self.importances[i])) for i in order]

    def top(self, k: int) -> List[str]:
        return [name for name, _ in self.ranked()[:k]]


@dataclass
class ClusterReport:
    """The outcome of the full pipeline."""

    features: List[EndpointFeatures]
    used_feature_names: List[str]
    result: DBSCANResult
    importance: Optional[FeatureImportanceReport] = None
    # How ε was chosen when it was k-NN-estimated (eps=None): records
    # degenerate-input fallbacks (see dbscan.estimate_eps_info); None
    # when a fixed ε was supplied.
    eps_info: Optional[Dict] = None

    def clusters(self) -> Dict[int, List[EndpointFeatures]]:
        groups: Dict[int, List[EndpointFeatures]] = {}
        for feature, label in zip(self.features, self.result.labels):
            groups.setdefault(int(label), []).append(feature)
        return groups

    def composition(self) -> List[Tuple[int, Counter]]:
        """Per-cluster country composition (Figure 6's stacked bars)."""
        rows = []
        for cluster, members in sorted(self.clusters().items()):
            rows.append(
                (cluster, Counter(m.country or "??" for m in members))
            )
        return rows

    def vendor_purity(self) -> Dict[str, bool]:
        """Is every labeled vendor confined to a single cluster? (§7.4:
        same-vendor devices 'are always in the same clusters').

        DBSCAN noise points are unclustered, not mis-clustered, so they
        do not count against purity.
        """
        by_vendor: Dict[str, set] = {}
        for feature, label in zip(self.features, self.result.labels):
            if feature.label and int(label) != -1:
                by_vendor.setdefault(feature.label, set()).add(int(label))
        return {
            vendor: len(clusters) <= 1
            for vendor, clusters in by_vendor.items()
        }


def rank_features(
    features: Sequence[EndpointFeatures],
    *,
    names: Optional[Sequence[str]] = None,
    folds: int = 5,
    repeats: int = 3,
    n_estimators: int = 50,
    seed: int = 0,
) -> FeatureImportanceReport:
    """§7.2: train a random forest on the labeled devices and compute
    MDI feature importances with repeated cross-validation."""
    labeled = [f for f in features if f.label]
    if len(labeled) < folds:
        raise ValueError(
            f"need at least {folds} labeled devices, got {len(labeled)}"
        )
    names, X, labels = feature_matrix(labeled, names)
    names, X = drop_empty_columns(list(names), X)
    X = impute_median(X)
    vendor_index = {v: i for i, v in enumerate(sorted({l for l in labels if l}))}
    y = np.array([vendor_index[l] for l in labels], dtype=int)
    cv = cross_validate_forest(
        X, y, folds=folds, repeats=repeats, n_estimators=n_estimators, seed=seed
    )
    return FeatureImportanceReport(
        names=names, importances=cv.mean_importances(), cv=cv
    )


def cluster_endpoints(
    features: Sequence[EndpointFeatures],
    *,
    eps: Optional[float] = DEFAULT_EPS,
    min_samples: int = 3,
    top_features: Optional[int] = DEFAULT_TOP_FEATURES,
    importance: Optional[FeatureImportanceReport] = None,
    seed: int = 0,
) -> ClusterReport:
    """§7.3: cluster endpoints on the most informative features.

    When an ``importance`` report is supplied (or computable from the
    labeled subset), only its top ``top_features`` features are used;
    otherwise the full feature set is. ``eps=None`` estimates ε via the
    k-NN-distance technique.
    """
    feature_list = list(features)
    if not feature_list:
        raise ValueError("no endpoints to cluster")
    if importance is None and top_features is not None:
        labeled = [f for f in feature_list if f.label]
        if len(labeled) >= 5:
            importance = rank_features(feature_list, seed=seed)
    if importance is not None and top_features is not None:
        names = importance.top(top_features)
    else:
        names = all_feature_names()
    names, X, _ = feature_matrix(feature_list, names)
    names, X = drop_empty_columns(list(names), X)
    X = zscore(impute_median(X))
    eps_info = None
    if eps is None:
        eps, eps_info = estimate_eps_info(X, k=min_samples)
    result = dbscan(X, eps=eps, min_samples=min_samples)
    return ClusterReport(
        features=feature_list,
        used_feature_names=names,
        result=result,
        importance=importance,
        eps_info=eps_info,
    )


def vendor_correlations(
    features: Sequence[EndpointFeatures],
    *,
    names: Optional[Sequence[str]] = None,
) -> Dict[Tuple[str, str], Tuple[float, float]]:
    """§7.4: average pairwise Spearman correlations within and between
    vendors over the (imputed) feature matrix."""
    labeled = [f for f in features if f.label]
    names, X, labels = feature_matrix(labeled, names)
    names, X = drop_empty_columns(list(names), X)
    X = impute_median(X)
    vendors = sorted({l for l in labels if l})
    by_vendor = {
        vendor: [i for i, l in enumerate(labels) if l == vendor]
        for vendor in vendors
    }
    correlations: Dict[Tuple[str, str], Tuple[float, float]] = {}
    for i, vendor_a in enumerate(vendors):
        for vendor_b in vendors[i:]:
            if vendor_a == vendor_b:
                if len(by_vendor[vendor_a]) < 2:
                    continue
                correlations[(vendor_a, vendor_b)] = pairwise_group_correlation(
                    X, by_vendor[vendor_a]
                )
            else:
                correlations[(vendor_a, vendor_b)] = pairwise_group_correlation(
                    X, by_vendor[vendor_a], by_vendor[vendor_b]
                )
    return correlations
