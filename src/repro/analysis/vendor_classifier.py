"""Vendor classification for unlabeled devices (§7.1's payoff).

"Using these other network-layer and censorship features, we can then
classify the vendors [of] devices that do not inject blockpages, or do
not explicitly display its vendor in banner responses."

The classifier trains a random forest on the labeled deployments
(blockpage/banner labels) and predicts the vendor of every unlabeled
blocked endpoint, reporting a confidence (the forest's vote share) so
callers can threshold away weak guesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .features import EndpointFeatures, drop_empty_columns, feature_matrix
from .forest import RandomForestClassifier
from .stats import impute_median


@dataclass
class VendorPrediction:
    """One unlabeled endpoint's predicted vendor."""

    endpoint_ip: str
    vendor: str
    confidence: float  # forest vote share, 0..1
    country: Optional[str] = None


@dataclass
class VendorClassifierReport:
    """Trained model + predictions over the unlabeled population."""

    vendors: List[str]
    training_size: int
    predictions: List[VendorPrediction] = field(default_factory=list)
    feature_names: List[str] = field(default_factory=list)

    def confident(self, threshold: float = 0.6) -> List[VendorPrediction]:
        return [p for p in self.predictions if p.confidence >= threshold]

    def by_vendor(self, threshold: float = 0.0) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for prediction in self.predictions:
            if prediction.confidence >= threshold:
                counts[prediction.vendor] = counts.get(prediction.vendor, 0) + 1
        return counts


class VendorClassifier:
    """Random-forest vendor classifier over Table-3 features."""

    def __init__(
        self,
        *,
        n_estimators: int = 50,
        seed: int = 0,
        feature_names: Optional[Sequence[str]] = None,
    ) -> None:
        self.n_estimators = n_estimators
        self.seed = seed
        self._requested_names = list(feature_names) if feature_names else None
        self.forest: Optional[RandomForestClassifier] = None
        self.vendors: List[str] = []
        self.feature_names: List[str] = []
        self._medians: Optional[np.ndarray] = None

    # -- training -----------------------------------------------------------

    def fit(self, labeled: Sequence[EndpointFeatures]) -> "VendorClassifier":
        labeled = [f for f in labeled if f.label]
        if len(labeled) < 4:
            raise ValueError("need at least 4 labeled devices to train")
        names, X, labels = feature_matrix(labeled, self._requested_names)
        names, X = drop_empty_columns(list(names), X)
        X = impute_median(X)
        self.feature_names = names
        # Store training medians so prediction-time imputation matches.
        self._medians = np.median(X, axis=0)
        self.vendors = sorted({label for label in labels if label})
        index = {vendor: i for i, vendor in enumerate(self.vendors)}
        y = np.array([index[label] for label in labels], dtype=int)
        self.forest = RandomForestClassifier(
            n_estimators=self.n_estimators, seed=self.seed
        )
        self.forest.fit(X, y)
        return self

    # -- prediction -----------------------------------------------------------

    def _vectorize(self, features: Sequence[EndpointFeatures]) -> np.ndarray:
        X = np.stack([f.vector(self.feature_names) for f in features])
        for column in range(X.shape[1]):
            mask = np.isnan(X[:, column])
            X[mask, column] = self._medians[column]
        return X

    def predict(
        self, unlabeled: Sequence[EndpointFeatures]
    ) -> List[VendorPrediction]:
        if self.forest is None:
            raise RuntimeError("classifier not fitted")
        if not unlabeled:
            return []
        X = self._vectorize(unlabeled)
        votes = np.stack([tree.predict(X) for tree in self.forest.trees])
        predictions = []
        for i, features in enumerate(unlabeled):
            counts = np.bincount(votes[:, i], minlength=len(self.vendors))
            winner = int(counts.argmax())
            predictions.append(
                VendorPrediction(
                    endpoint_ip=features.endpoint_ip,
                    vendor=self.vendors[winner],
                    confidence=float(counts[winner] / counts.sum()),
                    country=features.country,
                )
            )
        return predictions


def classify_unlabeled(
    features: Sequence[EndpointFeatures],
    *,
    training: Optional[Sequence[EndpointFeatures]] = None,
    n_estimators: int = 50,
    seed: int = 0,
) -> VendorClassifierReport:
    """Train on the labeled subset (or ``training``) and predict every
    unlabeled endpoint's vendor."""
    training_set = [f for f in (training or features) if f.label]
    classifier = VendorClassifier(n_estimators=n_estimators, seed=seed).fit(
        training_set
    )
    unlabeled = [f for f in features if not f.label]
    report = VendorClassifierReport(
        vendors=classifier.vendors,
        training_size=len(training_set),
        feature_names=classifier.feature_names,
    )
    report.predictions = classifier.predict(unlabeled)
    return report
