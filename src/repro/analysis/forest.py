"""Random-forest classifier with MDI feature importances, from scratch.

§7.2 trains a random forest over labeled devices and ranks features by
mean decrease in impurity (MDI) with 3×5-fold cross-validation.
scikit-learn is not available offline, so this is a compact CART
implementation: Gini impurity, bootstrap bagging, sqrt-feature
subsampling, and per-tree impurity-decrease accounting.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


def gini(labels: np.ndarray) -> float:
    """Gini impurity of an integer label array."""
    if labels.size == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    proportions = counts / labels.size
    return float(1.0 - np.sum(proportions**2))


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    prediction: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeClassifier:
    """A CART decision tree (Gini split criterion)."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        max_features: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.rng = rng or random.Random(0)
        self.root: Optional[_Node] = None
        self.n_features_: int = 0
        self.feature_importances_: np.ndarray = np.zeros(0)

    # -- fitting ----------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        self.n_features_ = X.shape[1]
        self._importance = np.zeros(self.n_features_)
        self._total_samples = X.shape[0]
        self.root = self._grow(X, y, depth=0)
        total = self._importance.sum()
        self.feature_importances_ = (
            self._importance / total if total > 0 else self._importance
        )
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=int(np.bincount(y).argmax()) if y.size else 0)
        if (
            y.size < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.unique(y).size <= 1
        ):
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold, decrease, left_mask = split
        self._importance[feature] += decrease * y.size / self._total_samples
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[left_mask], y[left_mask], depth + 1)
        node.right = self._grow(X[~left_mask], y[~left_mask], depth + 1)
        return node

    def _candidate_features(self) -> List[int]:
        features = list(range(self.n_features_))
        if self.max_features is not None and self.max_features < len(features):
            features = self.rng.sample(features, self.max_features)
        return features

    def _best_split(
        self, X: np.ndarray, y: np.ndarray
    ) -> Optional[Tuple[int, float, float, np.ndarray]]:
        parent_impurity = gini(y)
        if parent_impurity == 0.0:
            return None
        best: Optional[Tuple[int, float, float, np.ndarray]] = None
        best_decrease = 1e-12
        n = y.size
        for feature in self._candidate_features():
            column = X[:, feature]
            values = np.unique(column)
            if values.size <= 1:
                continue
            # Candidate thresholds: midpoints between consecutive values.
            thresholds = (values[:-1] + values[1:]) / 2.0
            for threshold in thresholds:
                left_mask = column <= threshold
                n_left = int(left_mask.sum())
                if n_left == 0 or n_left == n:
                    continue
                impurity_left = gini(y[left_mask])
                impurity_right = gini(y[~left_mask])
                weighted = (
                    n_left / n * impurity_left
                    + (n - n_left) / n * impurity_right
                )
                decrease = parent_impurity - weighted
                if decrease > best_decrease:
                    best_decrease = decrease
                    best = (feature, float(threshold), decrease, left_mask)
        return best

    # -- prediction ---------------------------------------------------------

    def predict_one(self, row: np.ndarray) -> int:
        node = self.root
        if node is None:
            raise RuntimeError("tree not fitted")
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.prediction

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        return np.array([self.predict_one(row) for row in X], dtype=int)


class RandomForestClassifier:
    """Bagged CART trees with sqrt-feature subsampling and MDI."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        max_features: str = "sqrt",
        seed: int = 0,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self.trees: List[DecisionTreeClassifier] = []
        self.feature_importances_: np.ndarray = np.zeros(0)

    def _resolve_max_features(self, n_features: int) -> Optional[int]:
        if self.max_features == "sqrt":
            return max(1, int(math.sqrt(n_features)))
        if self.max_features == "all" or self.max_features is None:
            return None
        return int(self.max_features)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        n_samples, n_features = X.shape
        rng = random.Random(self.seed)
        max_features = self._resolve_max_features(n_features)
        self.trees = []
        importances = np.zeros(n_features)
        for i in range(self.n_estimators):
            tree_rng = random.Random(rng.random())
            indices = np.array(
                [tree_rng.randrange(n_samples) for _ in range(n_samples)]
            )
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=max_features,
                rng=tree_rng,
            )
            tree.fit(X[indices], y[indices])
            self.trees.append(tree)
            importances += tree.feature_importances_
        self.feature_importances_ = importances / max(1, len(self.trees))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        votes = np.stack([tree.predict(X) for tree in self.trees])
        return np.array(
            [np.bincount(votes[:, i]).argmax() for i in range(X.shape[0])],
            dtype=int,
        )

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        predictions = self.predict(X)
        y = np.asarray(y, dtype=int)
        return float((predictions == y).mean())


@dataclass
class CrossValidationResult:
    """Accuracy and MDI importances aggregated over repeated k-fold CV."""

    accuracies: List[float] = field(default_factory=list)
    importances: Optional[np.ndarray] = None  # (runs, n_features)

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.accuracies)) if self.accuracies else 0.0

    def mean_importances(self) -> np.ndarray:
        if self.importances is None:
            return np.zeros(0)
        return self.importances.mean(axis=0)


def cross_validate_forest(
    X: np.ndarray,
    y: np.ndarray,
    *,
    folds: int = 5,
    repeats: int = 3,
    n_estimators: int = 50,
    seed: int = 0,
) -> CrossValidationResult:
    """Repeated k-fold CV, collecting accuracy and MDI per fit (§7.2:
    "we train the classifier three times using 5-fold cross-validation
    (for a total of 15 repetitions)")."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    n = X.shape[0]
    result = CrossValidationResult()
    importance_rows = []
    rng = random.Random(seed)
    for repeat in range(repeats):
        order = list(range(n))
        rng.shuffle(order)
        fold_sizes = [n // folds + (1 if i < n % folds else 0) for i in range(folds)]
        start = 0
        for fold, size in enumerate(fold_sizes):
            test_idx = np.array(order[start : start + size])
            train_idx = np.array(order[:start] + order[start + size :])
            start += size
            if test_idx.size == 0 or train_idx.size == 0:
                continue
            forest = RandomForestClassifier(
                n_estimators=n_estimators, seed=seed * 1000 + repeat * folds + fold
            )
            forest.fit(X[train_idx], y[train_idx])
            result.accuracies.append(forest.score(X[test_idx], y[test_idx]))
            importance_rows.append(forest.feature_importances_)
    if importance_rows:
        result.importances = np.stack(importance_rows)
    return result
