"""Autosonda-style decision-model inference from CenFuzz results.

CenFuzz extends Jermyn & Weaver's Autosonda, whose goal was "to
discover and study the decision models of censorship devices" (§3.4).
This module closes that loop: given one device's
:class:`~repro.core.cenfuzz.runner.EndpointFuzzReport`, it infers the
parsing/matching rules the engine must be applying —

* which HTTP methods trigger inspection,
* whether the request-line version token is validated (and how),
* whether the Host header is located structurally or by keyword scan,
* the hostname rule style (exact / leading-wildcard / keyword),
* whether rules are URL-scoped (only specific paths trigger),
* which TLS offers (versions/ciphers) crash the parser.

Inference is purely behavioural — it reads only which permutations
evaded — so it works identically against real devices. The tests
validate every inferred model against the simulator's ground-truth
quirks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.cenfuzz.runner import EndpointFuzzReport, PermutationResult

# Rule-style verdicts (mirror repro.devices.rules kinds).
STYLE_EXACT = "exact"
STYLE_SUFFIX = "suffix"  # leading wildcard *.domain.tld
STYLE_KEYWORD = "keyword"
STYLE_UNKNOWN = "unknown"

VERSION_NOT_CHECKED = "not-checked"
VERSION_NEEDS_SLASH = "needs-slash"
VERSION_STRICT = "strict"

HOST_STRUCTURAL = "structural-header"
HOST_KEYWORD_SCAN = "keyword-scan"


@dataclass
class InferredRuleModel:
    """The decision model inferred for one device deployment."""

    protocol: str
    trigger_methods: FrozenSet[str] = frozenset()
    inspects_unknown_methods: bool = False
    version_validation: str = VERSION_NOT_CHECKED
    host_extraction: str = HOST_STRUCTURAL
    rule_style: str = STYLE_UNKNOWN
    url_scoped: bool = False
    fragile_tls_versions: FrozenSet[str] = frozenset()
    fragile_ciphers: FrozenSet[str] = frozenset()
    evidence: Dict[str, str] = field(default_factory=dict)

    def summary(self) -> str:
        if self.protocol == "http":
            methods = ",".join(sorted(self.trigger_methods)) or "?"
            return (
                f"methods={{{methods}}} version={self.version_validation}"
                f" host={self.host_extraction} rule={self.rule_style}"
                f" url_scoped={self.url_scoped}"
            )
        fragile = []
        if self.fragile_tls_versions:
            fragile.append("versions:" + ",".join(sorted(self.fragile_tls_versions)))
        if self.fragile_ciphers:
            fragile.append(f"{len(self.fragile_ciphers)} ciphers")
        return (
            f"rule={self.rule_style}"
            + (f" fragile[{'; '.join(fragile)}]" if fragile else " robust-parser")
        )


def _by_strategy(report: EndpointFuzzReport) -> Dict[str, List[PermutationResult]]:
    grouped: Dict[str, List[PermutationResult]] = {}
    for result in report.results:
        if result.successful or result.unsuccessful:
            grouped.setdefault(result.strategy, []).append(result)
    return grouped


def _evaded(results: Sequence[PermutationResult], label: str) -> Optional[bool]:
    for result in results:
        if result.label == label:
            return result.successful
    return None


def infer_http_rules(report: EndpointFuzzReport) -> InferredRuleModel:
    """Infer the HTTP decision model from one device's fuzz report."""
    model = InferredRuleModel(protocol="http")
    if not report.normal_blocked:
        model.evidence["normal"] = "not blocked; nothing to infer"
        return model
    grouped = _by_strategy(report)

    # --- methods -----------------------------------------------------------
    methods: Set[str] = {"GET"}  # the Normal request used GET and was blocked
    alt = grouped.get("Get Word Alt.", [])
    for result in alt:
        label = result.label
        if label == "<empty>":
            if not result.successful:
                model.inspects_unknown_methods = True
            continue
        if label == "XXXX":
            if not result.successful:
                model.inspects_unknown_methods = True
            continue
        if not result.successful:
            methods.add(label)
    if model.inspects_unknown_methods:
        model.evidence["methods"] = "blocks even invalid methods (keyword engine?)"
        methods.update({"PUT", "POST", "PATCH", "DELETE"})
    model.trigger_methods = frozenset(methods)

    # --- version validation --------------------------------------------------
    # Multi-token variants ("HTTP/ 1.1") exercise the tokenizer, not
    # the version check, so only single-token variants are probative:
    # slashed-but-invalid ones separate strict validators, unslashed
    # ones separate needs-a-slash engines from don't-care engines.
    alt_versions = grouped.get("Http Word Alt.", [])
    single = [r for r in alt_versions if " " not in r.label]
    slashed_invalid = [
        r for r in single if "/" in r.label and r.label != "HTTP/1.0"
    ]
    unslashed = [
        r for r in single if "/" not in r.label and "\\" not in r.label
        and "|" not in r.label
    ]
    if slashed_invalid and all(r.successful for r in slashed_invalid):
        model.version_validation = VERSION_STRICT
    elif unslashed and all(r.successful for r in unslashed):
        model.version_validation = VERSION_NEEDS_SLASH
    else:
        model.version_validation = VERSION_NOT_CHECKED

    # --- host extraction ------------------------------------------------------
    host_word_alt = grouped.get("Host Word Alt.", [])
    if host_word_alt and all(not r.successful for r in host_word_alt):
        # Renaming the Host header never helps: the engine scans for the
        # domain keyword anywhere in the payload.
        model.host_extraction = HOST_KEYWORD_SCAN
    else:
        model.host_extraction = HOST_STRUCTURAL

    # --- rule style ----------------------------------------------------------
    model.rule_style = _infer_rule_style(
        grouped.get("Host. Subdomain Alt.", []),
        grouped.get("Hostname Pad.", []),
        grouped.get("Hostname TLD Alt.", []),
    )

    # --- URL scope -------------------------------------------------------------
    paths = grouped.get("Path Alt.", [])
    model.url_scoped = bool(paths) and all(r.successful for r in paths)
    if model.host_extraction == HOST_KEYWORD_SCAN:
        model.url_scoped = False  # keyword engines ignore the path
    return model


def infer_tls_rules(report: EndpointFuzzReport) -> InferredRuleModel:
    """Infer the TLS decision model from one device's fuzz report."""
    model = InferredRuleModel(protocol="tls")
    if not report.normal_blocked:
        model.evidence["normal"] = "not blocked; nothing to infer"
        return model
    grouped = _by_strategy(report)
    model.rule_style = _infer_rule_style(
        grouped.get("SNI Subdomain Alt.", []),
        grouped.get("SNI Pad.", []),
        grouped.get("SNI TLD Alt.", []),
    )
    fragile_versions = set()
    for strategy in ("Min Version Alt.", "Max Version Alt."):
        for result in grouped.get(strategy, []):
            if result.successful:
                fragile_versions.add(result.label)
    model.fragile_tls_versions = frozenset(fragile_versions)
    model.fragile_ciphers = frozenset(
        r.label for r in grouped.get("CipherSuite Alt.", []) if r.successful
    )
    return model


def _infer_rule_style(
    subdomain: Sequence[PermutationResult],
    padding: Sequence[PermutationResult],
    tld: Sequence[PermutationResult],
) -> str:
    """Distinguish exact / leading-wildcard / keyword rules.

    * keyword rules survive TLD changes (nothing evades);
    * suffix rules block subdomain changes but let trailing pads evade;
    * exact rules let subdomain changes AND leading pads evade.
    """
    if tld and all(not r.successful for r in tld):
        return STYLE_KEYWORD
    subdomain_evades = bool(subdomain) and all(r.successful for r in subdomain)
    leading = [r for r in padding if r.label.startswith("lead") and r.label.endswith("trail0")]
    leading_evades = bool(leading) and all(r.successful for r in leading)
    if subdomain_evades and leading_evades:
        return STYLE_EXACT
    if subdomain or padding:
        if not subdomain_evades:
            return STYLE_SUFFIX
        return STYLE_EXACT if leading_evades else STYLE_SUFFIX
    return STYLE_UNKNOWN


def infer_rules(report: EndpointFuzzReport) -> InferredRuleModel:
    """Dispatch on the report's protocol."""
    if report.protocol == "tls":
        return infer_tls_rules(report)
    return infer_http_rules(report)
