"""Statistical helpers: imputation, scaling, Spearman correlations."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats


def impute_median(X: np.ndarray) -> np.ndarray:
    """Replace NaNs column-wise with the column median (§7.2)."""
    X = np.array(X, dtype=float, copy=True)
    for column in range(X.shape[1]):
        col = X[:, column]
        mask = np.isnan(col)
        if mask.any():
            valid = col[~mask]
            fill = float(np.median(valid)) if valid.size else 0.0
            col[mask] = fill
    return X


def zscore(X: np.ndarray) -> np.ndarray:
    """Column-wise standardization; constant columns become zeros."""
    X = np.asarray(X, dtype=float)
    mean = X.mean(axis=0)
    std = X.std(axis=0)
    std_safe = np.where(std == 0, 1.0, std)
    return (X - mean) / std_safe


def spearman_pair(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Spearman's rank correlation (r_s, p) between two feature vectors.

    Identical vectors have zero variance, where scipy returns NaN; the
    paper reports r_s = 1.00 for devices with exactly equal features, so
    that convention is applied here.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if np.allclose(a, b):
        return 1.0, 0.0
    if np.all(a == a[0]) or np.all(b == b[0]):
        return 0.0, 1.0
    r, p = scipy_stats.spearmanr(a, b)
    if np.isnan(r):
        return 0.0, 1.0
    return float(r), float(p)


def pairwise_group_correlation(
    X: np.ndarray, indices_a: Sequence[int], indices_b: Optional[Sequence[int]] = None
) -> Tuple[float, float]:
    """Average pairwise Spearman correlation within a group (or between
    two groups), as §7.4 reports per vendor.

    Only *distinct* row pairs count: a row is never correlated with
    itself (the trivial r_s = 1.0 would inflate between-group averages
    whenever the groups overlap), and each unordered pair contributes
    once even if it is reachable from both directions. A group with no
    valid pairs — a singleton within-group call, or between-groups whose
    overlap leaves no distinct pair — has no defined average and returns
    ``(nan, nan)``.
    """
    rows_a = list(indices_a)
    rows_b = list(indices_b) if indices_b is not None else rows_a
    correlations: List[float] = []
    p_values: List[float] = []
    seen_pairs = set()
    for i in rows_a:
        for j in rows_b:
            if i == j:
                continue
            pair = (i, j) if i < j else (j, i)
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            r, p = spearman_pair(X[i], X[j])
            correlations.append(r)
            p_values.append(p)
    if not correlations:
        return float("nan"), float("nan")
    return float(np.mean(correlations)), float(np.mean(p_values))
