"""Endpoint application behaviour: HTTP and TLS serving with profiles.

CenFuzz distinguishes *evasion* (the censor did not block) from
*circumvention* (the censor did not block AND the endpoint served the
intended resource, §6.1). That second half depends entirely on how
strictly real web servers parse, and §6.3 reports exactly the error
codes we produce here: 400 Bad Request, 403 Forbidden, 301 Moved
Permanently and 505 HTTP Version Not Supported.

A :class:`WebServer` handles both HTTP (port 80) payloads and TLS
ClientHellos (port 443). Because the simulator does not run a full TLS
handshake, a successful TLS exchange is represented by the ServerHello
followed by a ``SIMTLS-SERVED:<vhost>`` marker — the stand-in for "the
handshake completed and the intended resource loaded" (documented as a
substitution in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from ..netmodel.http import HTTPResponse, parse_request
from ..netmodel.tls import (
    ServerHello,
    looks_like_client_hello,
    parse_client_hello,
    tls_alert,
)
from ..netsim.interfaces import ApplicationServer, AppReply

TLS_SERVED_MARKER = b"SIMTLS-SERVED:"


@dataclass(frozen=True)
class ServerProfile:
    """How strictly this endpoint's web server parses requests."""

    requires_valid_version: bool = True  # else 505 on weird versions
    requires_crlf: bool = False  # reject bare-LF requests with 400
    tolerates_malformed_request_line: bool = False  # else 400
    allowed_methods: Tuple[str, ...] = ("GET", "HEAD", "POST")
    strict_host: bool = True  # unknown Host -> 404 (else default vhost)
    default_vhost: Optional[str] = None  # served when Host is unknown
    wildcard_subdomains: bool = False  # serve *.domain for its domains
    redirect_unknown_paths: bool = False  # 301 instead of 200 on odd paths
    trim_host_padding: bool = False  # strip non-hostname chars from Host
    tls_requires_known_sni: bool = False  # alert on unknown SNI (else default cert)

    @classmethod
    def lenient(cls, default_vhost: str) -> "ServerProfile":
        """A forgiving server: default vhost, wildcard subdomains,
        padding-tolerant — the kind that makes circumvention work."""
        return cls(
            requires_valid_version=False,
            tolerates_malformed_request_line=True,
            strict_host=False,
            default_vhost=default_vhost,
            wildcard_subdomains=True,
            trim_host_padding=True,
        )


def _page(domain: str, path: str) -> str:
    return (
        f"<html><head><title>{domain}</title></head>"
        f"<body><h1>Welcome to {domain}</h1><p>resource {path}</p></body></html>"
    )


_HOST_PAD_CHARS = "*-_~!@#$%^&()+= "


class WebServer(ApplicationServer):
    """The application server for one endpoint."""

    def __init__(
        self,
        domains: Sequence[str],
        profile: ServerProfile = ServerProfile(),
    ) -> None:
        self.domains = tuple(d.lower() for d in domains)
        self.profile = profile

    # -- helpers --------------------------------------------------------

    def _resolve_vhost(self, host: Optional[str]) -> Optional[str]:
        """Map a request Host/SNI to one of our vhosts (or None)."""
        if host is None:
            return None if self.profile.strict_host else self.profile.default_vhost
        candidate = host.strip().lower().rstrip(".")
        if ":" in candidate:
            head, _, tail = candidate.rpartition(":")
            if tail.isdigit():
                candidate = head
        if self.profile.trim_host_padding:
            candidate = candidate.strip(_HOST_PAD_CHARS)
        if candidate in self.domains:
            return candidate
        if self.profile.wildcard_subdomains:
            for domain in self.domains:
                base = domain.split(".", 1)[-1] if domain.startswith("www.") else domain
                if candidate == base or candidate.endswith("." + base):
                    return domain
        if not self.profile.strict_host:
            return self.profile.default_vhost or (
                self.domains[0] if self.domains else None
            )
        return None

    # -- ApplicationServer ----------------------------------------------

    def handle_payload(self, payload: bytes, client_ip: str) -> AppReply:
        if looks_like_client_hello(payload):
            return self._handle_tls(payload)
        return self._handle_http(payload)

    def _handle_http(self, payload: bytes) -> AppReply:
        profile = self.profile
        request = parse_request(payload, accept_bare_lf=not profile.requires_crlf)
        if not request.ok:
            return AppReply.respond(
                HTTPResponse(400, body="Bad Request").build(), close=True
            )
        if request.used_bare_lf and profile.requires_crlf:
            return AppReply.respond(
                HTTPResponse(400, body="Bad Request").build(), close=True
            )
        if request.malformed_request_line and not profile.tolerates_malformed_request_line:
            return AppReply.respond(
                HTTPResponse(400, body="Bad Request").build(), close=True
            )
        if profile.requires_valid_version and not request.version_valid:
            return AppReply.respond(
                HTTPResponse(505, body="HTTP Version Not Supported").build(),
                close=True,
            )
        method = request.method.upper()
        if method not in profile.allowed_methods:
            return AppReply.respond(
                HTTPResponse(405, body="Method Not Allowed").build(), close=True
            )
        vhost = self._resolve_vhost(request.host)
        if vhost is None:
            code = 403 if request.host else 400
            return AppReply.respond(
                HTTPResponse(code, body="Forbidden").build(), close=True
            )
        path = request.path or "/"
        if profile.redirect_unknown_paths and path != "/":
            return AppReply.respond(
                HTTPResponse(
                    301, headers=[("Location", f"http://{vhost}/")], body=""
                ).build(),
                close=True,
            )
        return AppReply.respond(
            HTTPResponse(200, body=_page(vhost, path)).build(), close=True
        )

    def _handle_tls(self, payload: bytes) -> AppReply:
        hello = parse_client_hello(payload)
        if not hello.ok:
            return AppReply.respond(tls_alert(50), close=True)  # decode_error
        vhost = self._resolve_vhost(hello.sni)
        if vhost is None:
            if self.profile.tls_requires_known_sni:
                return AppReply.respond(tls_alert(112), close=True)  # unrecognized_name
            vhost = self.profile.default_vhost or (
                self.domains[0] if self.domains else "default"
            )
            return AppReply.respond(
                ServerHello().build(),
                TLS_SERVED_MARKER + vhost.encode() + b":default-cert",
                close=True,
            )
        return AppReply.respond(
            ServerHello().build(),
            TLS_SERVED_MARKER + vhost.encode(),
            close=True,
        )


class FilteringWebServer(WebServer):
    """An endpoint that *itself* filters certain hostnames.

    Models the paper's "At E" cases (16.19% of blocked CenTraces):
    the endpoint, or a NAT/firewall in front of it, responds
    differently (or not at all) to the Test Domain — visible as
    blocking at the endpoint IP but not ISP censorship (§4.3).
    """

    def __init__(
        self,
        domains: Sequence[str],
        blocked_hosts: Sequence[str],
        *,
        mode: str = "drop",  # "drop" | "reset"
        profile: ServerProfile = ServerProfile(),
    ) -> None:
        super().__init__(domains, profile)
        self.blocked_hosts = tuple(h.lower() for h in blocked_hosts)
        if mode not in ("drop", "reset"):
            raise ValueError(f"unknown filtering mode: {mode}")
        self.mode = mode

    def _is_locally_blocked(self, host: Optional[str]) -> bool:
        if not host:
            return False
        candidate = host.strip().lower()
        return any(
            candidate == blocked or candidate.endswith("." + blocked)
            for blocked in self.blocked_hosts
        )

    def handle_payload(self, payload: bytes, client_ip: str) -> AppReply:
        host: Optional[str] = None
        if looks_like_client_hello(payload):
            parsed = parse_client_hello(payload)
            host = parsed.sni if parsed.ok else None
        else:
            request = parse_request(payload)
            host = request.host if request.ok else None
        if self._is_locally_blocked(host):
            if self.mode == "drop":
                return AppReply(drop=True)
            return AppReply(reset=True)
        return super().handle_payload(payload, client_ip)
