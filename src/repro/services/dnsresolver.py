"""DNS resolver endpoints (the substrate for the DNS extension).

A :class:`DNSResolver` answers UDP queries arriving at an endpoint:
zone entries resolve to configured addresses, anything else either gets
a deterministic synthetic address (open recursive resolver) or
NXDOMAIN. Responses echo the query ID and question, set QR/RA, and come
from the endpoint's real address — a forged injection upstream can only
beat it by arriving first.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..netmodel.dns import (
    DNSAnswer,
    DNSMessage,
    QTYPE_A,
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
    RCODE_SERVFAIL,
)
from ..netmodel.netctx import NetContext
from ..netmodel.packet import Packet, udp_packet

DNS_PORT = 53


def synthetic_address(domain: str) -> str:
    """A deterministic public-looking address for ``domain``."""
    digest = hashlib.sha256(domain.lower().encode()).digest()
    return f"93.{digest[0]}.{digest[1]}.{digest[2] or 1}"


@dataclass
class DNSResolver:
    """An open recursive resolver living at one endpoint."""

    zone: Dict[str, str] = field(default_factory=dict)  # domain -> A record
    recursive: bool = True
    answer_ttl: int = 300
    queries_seen: int = 0  # ground truth for tests

    def resolve(self, qname: Optional[str]) -> Optional[str]:
        """The address this resolver returns for ``qname`` (None = NX)."""
        if not qname:
            return None
        name = qname.strip().lower().rstrip(".")
        if name in self.zone:
            return self.zone[name]
        if self.recursive and "." in name:
            return synthetic_address(name)
        return None

    def handle_query(
        self,
        packet: Packet,
        endpoint_ip: str,
        net: Optional[NetContext] = None,
    ) -> List[Packet]:
        """Answer a UDP DNS query addressed to this resolver.

        ``net`` is the owning simulator's identifier context; reply IP
        IDs draw from it so responses replay bit-identically under the
        per-unit reset protocol.
        """
        if packet.udp is None or packet.udp.dport != DNS_PORT:
            return []
        self.queries_seen += 1
        try:
            message = DNSMessage.from_bytes(packet.udp.payload)
        except (ValueError, Exception):
            return [
                self._reply(
                    packet, endpoint_ip, DNSMessage(rcode=RCODE_SERVFAIL), net
                )
            ]
        if message.is_response or not message.questions:
            return []
        question = message.questions[0]
        response = DNSMessage(
            txid=message.txid,
            is_response=True,
            recursion_desired=message.recursion_desired,
            recursion_available=self.recursive,
            questions=[question],
        )
        address = self.resolve(question.qname) if question.qtype == QTYPE_A else None
        if question.qtype != QTYPE_A:
            # Non-A questions: answer empty NOERROR (enough for probes).
            response.rcode = RCODE_NOERROR
        elif address is None:
            response.rcode = RCODE_NXDOMAIN
        else:
            response.answers.append(
                DNSAnswer(question.qname, QTYPE_A, self.answer_ttl, address)
            )
        return [self._reply(packet, endpoint_ip, response, net)]

    @staticmethod
    def _reply(
        packet: Packet,
        endpoint_ip: str,
        message: DNSMessage,
        net: Optional[NetContext] = None,
    ) -> Packet:
        reply = udp_packet(
            endpoint_ip,
            packet.ip.src,
            sport=DNS_PORT,
            dport=packet.udp.sport,
            payload=message.to_bytes(),
            ttl=64,
            net=net,
        )
        reply.emitted_by = endpoint_ip
        return reply
