"""Application-layer services: endpoint web servers and banner services."""

from .banners import (
    BANNER_PROTOCOLS,
    ftp_service,
    generic_linux_services,
    http_admin_service,
    smtp_service,
    snmp_service,
    ssh_service,
    telnet_service,
)
from .webserver import (
    FilteringWebServer,
    ServerProfile,
    TLS_SERVED_MARKER,
    WebServer,
)

__all__ = [
    "BANNER_PROTOCOLS",
    "ftp_service",
    "generic_linux_services",
    "http_admin_service",
    "smtp_service",
    "snmp_service",
    "ssh_service",
    "telnet_service",
    "FilteringWebServer",
    "ServerProfile",
    "TLS_SERVED_MARKER",
    "WebServer",
]
