"""Banner services for the management plane of network devices.

CenProbe (§5) identifies device vendors from the banners their
management services present on SSH, Telnet, FTP, SMTP, SNMP and
HTTP(S). These builders produce :class:`~repro.netsim.topology.Service`
objects with realistic banner strings; the fingerprint repository in
``repro.core.cenprobe.fingerprints`` matches against them, Recog-style.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..netsim.topology import Service

PORT_FTP = 21
PORT_SSH = 22
PORT_TELNET = 23
PORT_SMTP = 25
PORT_HTTP = 80
PORT_SNMP = 161
PORT_HTTPS = 443
PORT_HTTP_ALT = 8080
PORT_HTTPS_ALT = 8443

BANNER_PROTOCOLS = ("http", "https", "ssh", "telnet", "ftp", "smtp", "snmp")


def ssh_service(banner: str, port: int = PORT_SSH) -> Service:
    """An SSH service: the version banner is sent on connect."""
    return Service(port=port, protocol="ssh", banner=(banner + "\r\n").encode())


def telnet_service(greeting: str, port: int = PORT_TELNET) -> Service:
    return Service(port=port, protocol="telnet", banner=(greeting + "\r\n").encode())


def ftp_service(greeting: str, port: int = PORT_FTP) -> Service:
    return Service(port=port, protocol="ftp", banner=(f"220 {greeting}\r\n").encode())


def smtp_service(greeting: str, port: int = PORT_SMTP) -> Service:
    return Service(port=port, protocol="smtp", banner=(f"220 {greeting}\r\n").encode())


def snmp_service(sys_descr: str, port: int = PORT_SNMP) -> Service:
    """SNMP: no connect banner; responds to a (stylized) GET of sysDescr."""
    return Service(
        port=port,
        protocol="snmp",
        banner=b"",
        probe_responses={b"SNMP-GET sysDescr": sys_descr.encode()},
    )


def http_admin_service(
    *,
    server_header: str = "",
    title: str = "",
    body: str = "",
    port: int = PORT_HTTP,
    protocol: str = "http",
    realm: Optional[str] = None,
) -> Service:
    """An HTTP(S) administration page.

    The service answers any request that starts like an HTTP GET with a
    canned response whose Server header / <title> / auth realm carry the
    vendor fingerprint.
    """
    status = "401 Unauthorized" if realm else "200 OK"
    headers = [f"HTTP/1.1 {status}"]
    if server_header:
        headers.append(f"Server: {server_header}")
    if realm:
        headers.append(f'WWW-Authenticate: Basic realm="{realm}"')
    headers.append("Content-Type: text/html")
    html = body or f"<html><head><title>{title}</title></head><body>{title}</body></html>"
    headers.append(f"Content-Length: {len(html.encode())}")
    response = ("\r\n".join(headers) + "\r\n\r\n" + html).encode()
    return Service(
        port=port,
        protocol=protocol,
        banner=b"",
        probe_responses={b"GET ": response, b"HEAD ": response},
    )


def generic_linux_services() -> List[Service]:
    """Unremarkable services for nodes that are *not* filtering devices
    (decoys for CenProbe's precision tests)."""
    return [
        ssh_service("SSH-2.0-OpenSSH_8.2p1 Ubuntu-4ubuntu0.5"),
        http_admin_service(server_header="nginx/1.18.0", title="Welcome to nginx!"),
    ]
