"""The method-agnostic evidence record and its producers.

A :class:`PathEvidence` is one observation: this flow, from this
client to this endpoint, traversed these links (resolved from the
route's ECMP path set and the simulator's current churn seed) and saw
this censorship outcome. TTL localization, churn tomography and
inconsistency reporting all consume the same records — which is what
lets the cross-validation harness replay one campaign's evidence
through every method.

Two producers:

* :func:`collect_outcome_evidence` — CenProbe-style full-TTL outcome
  probes, no TTL ladder: open a connection, send the request, classify
  what came back, and recompute the traversed link set from the flow
  key and the simulator's current ECMP seed (churn epochs advance the
  seed mid-collection, which is the tomography signal).
* :func:`evidence_from_trace` — wrap a classified CenTrace result so
  the TTL localizer can plug into the same protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.blockpages import BlockpageMatcher, DEFAULT_MATCHER
from ..core.centrace.results import (
    BLOCK_TYPES,
    CenTraceResult,
    TYPE_FIN,
    TYPE_HTTP,
    TYPE_NORMAL,
    TYPE_RST,
    TYPE_TIMEOUT,
)
from ..core.centrace.tracer import build_probe_payload
from ..netmodel import tcp as tcpmod
from ..netmodel.ip import FlowKey
from ..netsim.routing import Route
from ..netsim.tcpstack import Connection

#: One directed link, as (from-node, to-node) names — the same pairs
#: ``netsim.routing.Path.links()`` produces.
Link = Tuple[str, str]

SOURCE_OUTCOME = "outcome"
SOURCE_CENTRACE = "centrace"


@dataclass
class PathEvidence:
    """One (flow, traversed links, outcome) observation."""

    client_ip: str
    endpoint_ip: str
    domain: str
    protocol: str
    sport: int
    dport: int
    outcome: str  # TYPE_* from core.centrace.results
    blocked: bool
    links: Tuple[Link, ...]  # traversed links, client-outward
    epoch: int = 0  # ECMP churn round the probe ran in
    source: str = SOURCE_OUTCOME
    # CenTrace-derived evidence only: the attributed device TTL (after
    # TTL-copy correction), the hop IP it voted for, and the measured
    # endpoint distance. None for plain outcome probes.
    terminating_ttl: Optional[int] = None
    blocking_hop_ip: Optional[str] = None
    endpoint_distance: Optional[int] = None

    def link_set(self) -> frozenset:
        return frozenset(self.links)


def classify_outcome(received, matcher: BlockpageMatcher) -> str:
    """Classify a full-TTL probe's responses in arrival order.

    Mirrors CenFuzz's race-sensitive ordering: an on-path injector's
    RST beats the endpoint's content because the device sits closer, so
    the first decisive packet wins. A payload is checked against the
    blockpage corpus — an injected blockpage is blocking, real content
    is not.
    """
    if not received:
        return TYPE_TIMEOUT
    for packet in received:
        if not packet.is_tcp:
            continue
        if packet.tcp.payload:
            if matcher.match_payload(packet.tcp.payload) is not None:
                return TYPE_HTTP
            return TYPE_NORMAL
        if packet.tcp.flags & tcpmod.RST:
            return TYPE_RST
    for packet in received:
        if packet.is_tcp and packet.tcp.flags & tcpmod.FIN:
            return TYPE_FIN
    return TYPE_TIMEOUT


def collect_outcome_evidence(
    world,
    *,
    domains: Optional[Sequence[str]] = None,
    endpoints: Optional[Sequence] = None,
    rounds: int = 3,
    probes_per_round: int = 4,
    protocol: str = "http",
    matcher: Optional[BlockpageMatcher] = None,
    inter_probe_wait: float = 0.5,
) -> List[PathEvidence]:
    """Plain outcome measurements across ECMP churn rounds.

    Every probe is a fresh connection (fresh ephemeral source port, so
    a fresh ECMP hash) and the world's churn plan re-hashes the seed as
    packets accumulate — between the two, repeated probes sample the
    route's candidate paths. The traversed link set is recomputed from
    the flow key and the seed in effect when the probe was sent
    (``Simulator.current_path_seed``), never guessed from responses.
    """
    sim = world.sim
    client = world.remote_client
    matcher = matcher if matcher is not None else DEFAULT_MATCHER
    domains = list(domains) if domains is not None else list(world.test_domains)
    targets = list(endpoints) if endpoints is not None else list(world.endpoints)
    port = 443 if protocol == "tls" else 80
    tel = sim.telemetry
    evidence: List[PathEvidence] = []
    with tel.span("localize.collect", sim=sim):
        for _ in range(rounds):
            for endpoint in targets:
                for domain in domains:
                    if domain not in endpoint.domains:
                        continue
                    for _ in range(probes_per_round):
                        evidence.append(
                            _probe_once(
                                sim, client, endpoint.ip, domain,
                                protocol, port, matcher,
                            )
                        )
                        sim.advance(inter_probe_wait)
    if tel.enabled:
        tel.count("localize.evidence_records", len(evidence))
        blocked = sum(1 for e in evidence if e.blocked)
        if blocked:
            tel.count("localize.blocked_evidence", blocked)
    return evidence


def _probe_once(
    sim, client, endpoint_ip, domain, protocol, port, matcher
) -> PathEvidence:
    """One outcome probe -> one evidence record."""
    tel = sim.telemetry
    if tel.enabled:
        tel.count("localize.probes")
    conn = Connection(sim, client, endpoint_ip, port)
    established = conn.connect(retries=2)
    if established:
        payload = build_probe_payload(domain, protocol)
        result = conn.send_payload(payload, retries=1)
        outcome = classify_outcome(result.received, matcher)
    else:
        # The handshake itself died: either an RST-on-SYN device or a
        # black-holed path. Either way the flow's path is what matters.
        outcome = TYPE_TIMEOUT
    # Resolve the traversed links *before* the FIN goes out: the seed
    # must be the one the decisive (payload) packet was hashed with,
    # and close()'s FIN could tip the churn counter into a new epoch.
    flow = FlowKey(client.ip, endpoint_ip, conn.sport, port)
    route = sim.topology.route_between(client.ip, endpoint_ip)
    links = route.traversed_links(
        flow, client.name, seed=sim.current_path_seed()
    )
    epoch = sim.churn_epoch
    if established:
        conn.close()
    return PathEvidence(
        client_ip=client.ip,
        endpoint_ip=endpoint_ip,
        domain=domain,
        protocol=protocol,
        sport=conn.sport,
        dport=port,
        outcome=outcome,
        blocked=outcome in BLOCK_TYPES,
        links=links,
        epoch=epoch,
        source=SOURCE_OUTCOME,
    )


def evidence_from_trace(
    result: CenTraceResult, *, route: Route, origin: str, client_ip: str
) -> PathEvidence:
    """Wrap a classified CenTrace result as evidence.

    CenTrace sweeps hash every probe onto its own path, so no single
    traversed set exists; the heaviest-weight candidate path stands in
    as the nominal one (ties: registration order), which is exactly the
    path the hop-distribution vote converges on in these worlds.
    ``terminating_ttl`` carries the *attributed* device TTL — i.e. the
    blocking hop's TTL after the §4.3 TTL-copy correction — so the TTL
    localizer needs no re-derivation.
    """
    nominal = max(route.enumerate_paths(), key=lambda pair: pair[1])[0]
    hop = result.blocking_hop
    return PathEvidence(
        client_ip=client_ip,
        endpoint_ip=result.endpoint_ip,
        domain=result.test_domain,
        protocol=result.protocol,
        sport=0,
        dport=0,
        outcome=result.blocking_type,
        blocked=result.blocked,
        links=nominal.links(origin),
        epoch=0,
        source=SOURCE_CENTRACE,
        terminating_ttl=hop.ttl if hop is not None else result.terminating_ttl,
        blocking_hop_ip=hop.ip if hop is not None else None,
        endpoint_distance=result.endpoint_distance,
    )
