"""Pluggable device localization built on a method-agnostic evidence model.

The paper localizes censorship devices exclusively by TTL-limited
probing (CenTrace, §4). "A Churn for the Better" and "Pathfinder"
(PAPERS.md) show that *path diversity itself* is a localization signal:
when ECMP churn re-hashes a flow onto different candidate paths and the
censorship outcome changes, the device must sit on some link the
blocked paths share and the clean paths avoid — no TTL ladder needed.

This layer makes that pluggable:

* :mod:`.evidence` — :class:`PathEvidence`, one record per observation:
  (client, endpoint, flow key, resolved traversed link set, outcome,
  churn epoch). Producible from plain outcome probes
  (:func:`collect_outcome_evidence`) and from CenTrace results
  (:func:`evidence_from_trace`).
* :mod:`.verdicts` — the :class:`Localizer` protocol and the
  :class:`LocalizationVerdict` every method returns (claimed link set,
  hop interval, confidence, method tag).
* :mod:`.ttl` — :class:`TtlLocalizer`, the CenTrace attribution logic
  behind the shared :mod:`repro.core.centrace.attribution` seam.
* :mod:`.tomography` — :class:`TomographyLocalizer`, boolean network
  tomography over churn rounds (intersection of blocked link sets,
  elimination by clean ones).
* :mod:`.inconsistency` — Pathfinder-style same-endpoint,
  different-path outcome disagreement reporting.

Layering: ``localize`` may import core/netsim/netmodel/geo/telemetry;
only ``cli`` and ``experiments`` may import ``localize`` (declared in
tools/lintkit's layer DAG).
"""

from .evidence import (
    PathEvidence,
    SOURCE_CENTRACE,
    SOURCE_OUTCOME,
    collect_outcome_evidence,
    evidence_from_trace,
)
from .inconsistency import (
    InconsistencyFinding,
    InconsistencyLocalizer,
    find_inconsistencies,
)
from .tomography import TomographyLocalizer
from .ttl import TtlLocalizer
from .verdicts import (
    LocalizationVerdict,
    Localizer,
    METHOD_INCONSISTENCY,
    METHOD_TOMOGRAPHY,
    METHOD_TTL,
)

__all__ = [
    "PathEvidence",
    "SOURCE_CENTRACE",
    "SOURCE_OUTCOME",
    "collect_outcome_evidence",
    "evidence_from_trace",
    "InconsistencyFinding",
    "InconsistencyLocalizer",
    "find_inconsistencies",
    "TomographyLocalizer",
    "TtlLocalizer",
    "LocalizationVerdict",
    "Localizer",
    "METHOD_INCONSISTENCY",
    "METHOD_TOMOGRAPHY",
    "METHOD_TTL",
]
