"""Pathfinder-style inconsistency reporting.

Pathfinder (PAPERS.md) flags *measurement inconsistencies*: the same
endpoint, probed for the same domain, answers differently depending on
which ingress path the flow hashed onto. Each such disagreement is
direct evidence that the censoring device sits on the divergent
segment — the links the blocked path traversed and the clean path did
not. This module reports the disagreements themselves (the auditing
product) and adapts them to the :class:`Localizer` protocol (the
localization product: union of divergent segments, a deliberately
weaker claim than tomography's intersection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from .evidence import Link, PathEvidence, SOURCE_OUTCOME
from .verdicts import (
    LocalizationVerdict,
    METHOD_INCONSISTENCY,
    group_by_target,
    interval_of,
    link_positions,
    narrowing_confidence,
    ordered_candidates,
)


@dataclass
class InconsistencyFinding:
    """One same-endpoint, different-path outcome disagreement.

    One finding per distinct blocked link set: the probes that took
    this path saw ``blocked_outcome`` while probes on other paths saw
    the endpoint answer normally. ``divergent_links`` is the blocked
    path minus every clean path — the segment that explains the
    disagreement.
    """

    endpoint_ip: str
    domain: str
    protocol: str
    blocked_outcome: str
    blocked_links: Tuple[Link, ...]
    clean_links: Tuple[Link, ...]  # union of clean paths, sorted
    divergent_links: Tuple[Link, ...]
    blocked_count: int
    clean_count: int

    def brief(self) -> str:
        segment = ", ".join(f"{a}>{b}" for a, b in self.divergent_links)
        return (
            f"{self.endpoint_ip} {self.domain}: {self.blocked_count}x "
            f"{self.blocked_outcome} vs {self.clean_count}x clean — "
            f"divergent {{{segment}}}"
        )


def find_inconsistencies(
    evidence: Sequence[PathEvidence],
) -> List[InconsistencyFinding]:
    """All same-endpoint outcome disagreements in ``evidence``."""
    findings: List[InconsistencyFinding] = []
    for (endpoint_ip, domain), items in group_by_target(
        [e for e in evidence if e.source == SOURCE_OUTCOME]
    ).items():
        blocked = [e for e in items if e.blocked]
        clean = [e for e in items if not e.blocked]
        if not blocked or not clean:
            continue
        clean_union: Set[Link] = set()
        for item in clean:
            clean_union.update(item.links)
        # One finding per distinct blocked path (dict keeps first-seen
        # order so reports are stable across runs).
        by_links: Dict[Tuple[Link, ...], List[PathEvidence]] = {}
        for item in blocked:
            by_links.setdefault(item.links, []).append(item)
        for links, group in by_links.items():
            divergent = tuple(l for l in links if l not in clean_union)
            if not divergent:
                # Same link set, different outcome: flakiness, not a
                # path-dependent inconsistency.
                continue
            findings.append(
                InconsistencyFinding(
                    endpoint_ip=endpoint_ip,
                    domain=domain,
                    protocol=group[0].protocol,
                    blocked_outcome=group[0].outcome,
                    blocked_links=links,
                    clean_links=tuple(sorted(clean_union)),
                    divergent_links=divergent,
                    blocked_count=len(group),
                    clean_count=len(clean),
                )
            )
    return findings


class InconsistencyLocalizer:
    """Localize from the disagreement report alone.

    The claim per target is the union of its findings' divergent
    segments — every link that ever explained a disagreement. Weaker
    than tomography (union, not intersection; no cross-endpoint
    narrowing) by design: it only speaks where an actual disagreement
    was observed, which is the Pathfinder failure model.
    """

    method = METHOD_INCONSISTENCY

    def localize(
        self, evidence: Sequence[PathEvidence]
    ) -> List[LocalizationVerdict]:
        by_target: Dict[Tuple[str, str], List[InconsistencyFinding]] = {}
        for finding in find_inconsistencies(evidence):
            by_target.setdefault(
                (finding.endpoint_ip, finding.domain), []
            ).append(finding)
        groups = group_by_target(evidence)
        verdicts: List[LocalizationVerdict] = []
        for (endpoint_ip, domain), findings in by_target.items():
            items = groups.get((endpoint_ip, domain), [])
            positions = link_positions(items)
            candidates: List[Link] = []
            for finding in findings:
                for link in finding.divergent_links:
                    if link not in candidates:
                        candidates.append(link)
            ordered = ordered_candidates(candidates, positions)
            hop_low, hop_high = interval_of(ordered, positions)
            verdicts.append(
                LocalizationVerdict(
                    method=self.method,
                    endpoint_ip=endpoint_ip,
                    domain=domain,
                    candidate_links=ordered,
                    hop_low=hop_low,
                    hop_high=hop_high,
                    confidence=narrowing_confidence(
                        len(ordered), len(positions)
                    ),
                    evidence_count=len(items),
                    detail=f"findings={len(findings)}",
                )
            )
        return verdicts
