"""The localizer protocol and the verdict every method returns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from .evidence import Link, PathEvidence

METHOD_TTL = "ttl"
METHOD_TOMOGRAPHY = "tomography"
METHOD_INCONSISTENCY = "inconsistency"

METHODS = (METHOD_TTL, METHOD_TOMOGRAPHY, METHOD_INCONSISTENCY)


@dataclass
class LocalizationVerdict:
    """One method's claim about where a device sits for one target.

    ``candidate_links`` is the claimed link set, ordered by distance
    from the client (ties by link name); ``hop_low``/``hop_high`` is
    the inclusive link-index interval those candidates span on the
    blocked path(s) — the same 0-based indexing as
    ``netsim.routing.Path.devices()``, so index ``i`` is the link
    leading into the path's hop ``i``. ``confidence`` is in [0, 1]:
    1.0 means the method narrowed the claim to a single link out of
    everything it observed.
    """

    method: str
    endpoint_ip: str
    domain: str
    candidate_links: Tuple[Link, ...]
    hop_low: Optional[int]
    hop_high: Optional[int]
    confidence: float
    evidence_count: int
    detail: str = ""

    @property
    def interval_width(self) -> int:
        """Number of links the claim spans (0 = no claim)."""
        return len(self.candidate_links)

    def brief(self) -> str:
        links = ", ".join(f"{a}>{b}" for a, b in self.candidate_links)
        return (
            f"[{self.method}] {self.endpoint_ip} {self.domain}: "
            f"links {{{links}}} hops {self.hop_low}..{self.hop_high} "
            f"conf={self.confidence:.2f}"
        )


class Localizer(Protocol):
    """A localization method: evidence in, verdicts out.

    Implementations must be deterministic pure functions of the
    evidence sequence — the cross-validation harness relies on
    replaying the same evidence through every method.
    """

    method: str

    def localize(
        self, evidence: Sequence[PathEvidence]
    ) -> List[LocalizationVerdict]: ...


def group_by_target(
    evidence: Sequence[PathEvidence],
) -> Dict[Tuple[str, str], List[PathEvidence]]:
    """Evidence grouped by (endpoint_ip, domain), insertion-ordered.

    Shared by every localizer so all methods agree on what one
    "target" is when the harness builds its disagreement matrix.
    """
    groups: Dict[Tuple[str, str], List[PathEvidence]] = {}
    for item in evidence:
        groups.setdefault((item.endpoint_ip, item.domain), []).append(item)
    return groups


def link_positions(
    evidence: Sequence[PathEvidence],
) -> Dict[Link, int]:
    """Each link's 0-based distance from the client, first sighting wins.

    Links are per-path positional, but ECMP path sets in one route
    share prefixes/suffixes, so the first observed position is a stable
    ordering key for candidate sets drawn from several paths.
    """
    positions: Dict[Link, int] = {}
    for item in evidence:
        for index, link in enumerate(item.links):
            positions.setdefault(link, index)
    return positions


def ordered_candidates(
    candidates: Sequence[Link], positions: Dict[Link, int]
) -> Tuple[Link, ...]:
    """Candidates sorted client-outward (unknown positions last)."""
    return tuple(
        sorted(candidates, key=lambda l: (positions.get(l, 1 << 30), l))
    )


def interval_of(
    candidates: Sequence[Link], positions: Dict[Link, int]
) -> Tuple[Optional[int], Optional[int]]:
    """The (hop_low, hop_high) link-index interval candidates span."""
    known = [positions[l] for l in candidates if l in positions]
    if not known:
        return None, None
    return min(known), max(known)


def narrowing_confidence(candidates_len: int, universe_len: int) -> float:
    """How much of the observed link universe the claim eliminated.

    1.0 when a single link remains, 0.0 when nothing was eliminated;
    degenerate universes (a single observed link) count as fully
    narrowed.
    """
    if candidates_len == 0:
        return 0.0
    if universe_len <= 1:
        return 1.0
    return max(0.0, 1.0 - (candidates_len - 1) / (universe_len - 1))
