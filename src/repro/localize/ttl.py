"""TTL-probing localization — CenTrace's attribution behind the protocol.

The voting semantics live in :mod:`repro.core.centrace.attribution`
(the seam extracted from ``classify.py``); this module re-applies the
same primitives to CenTrace-derived :class:`PathEvidence` so the §4
method can be scored side by side with tomography and inconsistency
localization. The layer DAG points this way deliberately: ``localize``
imports ``core``, never the reverse, so CenTrace's classifier stays
free of any localization-layer dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.centrace.attribution import most_likely_hop
from .evidence import PathEvidence, SOURCE_CENTRACE
from .verdicts import (
    LocalizationVerdict,
    METHOD_TTL,
    group_by_target,
    interval_of,
    link_positions,
    narrowing_confidence,
    ordered_candidates,
)


class TtlLocalizer:
    """Localize from CenTrace results: the device is at the attributed
    hop's TTL, i.e. on the link leading into that hop (link index
    ``ttl - 1``, the convention ``Path.devices()`` uses)."""

    method = METHOD_TTL

    def localize(
        self, evidence: Sequence[PathEvidence]
    ) -> List[LocalizationVerdict]:
        verdicts: List[LocalizationVerdict] = []
        for (endpoint_ip, domain), items in group_by_target(evidence).items():
            traces = [
                e
                for e in items
                if e.source == SOURCE_CENTRACE
                and e.blocked
                and e.terminating_ttl is not None
            ]
            if not traces:
                continue
            verdicts.append(self._verdict(endpoint_ip, domain, traces))
        return verdicts

    def _verdict(
        self, endpoint_ip: str, domain: str, traces: List[PathEvidence]
    ) -> LocalizationVerdict:
        # Re-vote across repetitions with the exact classifier
        # primitives: a TTL->{hop ip: count} distribution, majority by
        # insertion order (first observation wins ties).
        distribution: Dict[int, Dict[str, int]] = {}
        ttl_votes: Dict[int, int] = {}
        for trace in traces:
            ttl = trace.terminating_ttl
            ttl_votes[ttl] = ttl_votes.get(ttl, 0) + 1
            bucket = distribution.setdefault(ttl, {})
            key = trace.blocking_hop_ip or ""
            bucket[key] = bucket.get(key, 0) + 1
        device_ttl = max(ttl_votes, key=ttl_votes.get)
        hop_ip = most_likely_hop(distribution, device_ttl)
        agreeing = [t for t in traces if t.terminating_ttl == device_ttl]
        link_index = device_ttl - 1
        candidates = []
        for trace in agreeing:
            if 0 <= link_index < len(trace.links):
                link = trace.links[link_index]
                if link not in candidates:
                    candidates.append(link)
        positions = link_positions(traces)
        hop_low, hop_high = interval_of(candidates, positions)
        if hop_low is None:
            # Off-path attribution (e.g. "Past E"): keep the interval
            # from the TTL itself so the claim stays comparable.
            hop_low = hop_high = link_index
        return LocalizationVerdict(
            method=self.method,
            endpoint_ip=endpoint_ip,
            domain=domain,
            candidate_links=ordered_candidates(candidates, positions),
            hop_low=hop_low,
            hop_high=hop_high,
            confidence=narrowing_confidence(
                max(1, len(candidates)), len(positions)
            )
            * (len(agreeing) / len(traces)),
            evidence_count=len(traces),
            detail=f"device_ttl={device_ttl} hop_ip={hop_ip or '-'}",
        )
