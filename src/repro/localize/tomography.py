"""Churn tomography: localize by link-set intersection and elimination.

Boolean network tomography over outcome evidence ("A Churn for the
Better" applied to censorship): every blocked probe proves the device
sits on *some* link of that probe's traversed set, every clean probe
for the same domain proves it sits on *none* of that probe's links.
With ECMP churn re-hashing flows across candidate paths, repeated
probes sample enough distinct link sets that

    candidates(endpoint) = ∩ blocked link sets  −  ∪ clean link sets

collapses to a handful of links — no TTL-limited probes at all.

Two refinements sharpen the boolean system:

* clean elimination is **per domain across all endpoints** — a device
  blocks its domains wherever it sees them, so a clean probe for
  domain *d* on any path clears every link it traversed;
* verdicts for the same domain whose candidate sets intersect are
  assumed to be the same device and are narrowed to the shared links
  (a censor at the shared ingress blocks every endpoint behind it).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from .evidence import Link, PathEvidence, SOURCE_OUTCOME
from .verdicts import (
    LocalizationVerdict,
    METHOD_TOMOGRAPHY,
    group_by_target,
    interval_of,
    link_positions,
    narrowing_confidence,
    ordered_candidates,
)


class TomographyLocalizer:
    """Set-intersection localization over churn-round outcome evidence."""

    method = METHOD_TOMOGRAPHY

    def __init__(self, refine_across_endpoints: bool = True) -> None:
        self.refine_across_endpoints = refine_across_endpoints

    def localize(
        self, evidence: Sequence[PathEvidence]
    ) -> List[LocalizationVerdict]:
        outcome_evidence = [
            e for e in evidence if e.source == SOURCE_OUTCOME
        ]
        clean_by_domain: Dict[str, Set[Link]] = {}
        for item in outcome_evidence:
            if not item.blocked:
                clean_by_domain.setdefault(item.domain, set()).update(
                    item.links
                )
        raw: List[Tuple[Set[Link], List[PathEvidence], str, str]] = []
        for (endpoint_ip, domain), items in group_by_target(
            outcome_evidence
        ).items():
            blocked = [e for e in items if e.blocked]
            if not blocked:
                continue
            suspects: Set[Link] = set(blocked[0].links)
            for item in blocked[1:]:
                suspects &= item.link_set()
            candidates = suspects - clean_by_domain.get(domain, set())
            if not candidates:
                # Contradictory evidence (e.g. a flaky device failing
                # open): fall back to the un-eliminated intersection
                # rather than claiming nothing.
                candidates = suspects
            raw.append((candidates, items, endpoint_ip, domain))
        if self.refine_across_endpoints:
            self._refine(raw)
        verdicts = []
        for candidates, items, endpoint_ip, domain in raw:
            verdicts.append(
                self._verdict(endpoint_ip, domain, candidates, items)
            )
        return verdicts

    def _refine(
        self, raw: List[Tuple[Set[Link], List[PathEvidence], str, str]]
    ) -> None:
        """Narrow same-domain verdicts with intersecting candidates.

        Iterates to a fixed point so A∩B then (A∩B)∩C chains settle;
        sets only ever shrink, so termination is immediate in practice.
        """
        changed = True
        while changed:
            changed = False
            for i in range(len(raw)):
                for j in range(i + 1, len(raw)):
                    if raw[i][3] != raw[j][3]:  # different domain
                        continue
                    shared = raw[i][0] & raw[j][0]
                    if not shared:
                        continue
                    for k in (i, j):
                        if raw[k][0] != shared:
                            raw[k] = (shared, raw[k][1], raw[k][2], raw[k][3])
                            changed = True

    def _verdict(
        self,
        endpoint_ip: str,
        domain: str,
        candidates: Set[Link],
        items: List[PathEvidence],
    ) -> LocalizationVerdict:
        positions = link_positions(items)
        ordered = ordered_candidates(sorted(candidates), positions)
        hop_low, hop_high = interval_of(ordered, positions)
        blocked_count = sum(1 for e in items if e.blocked)
        epochs = {e.epoch for e in items}
        return LocalizationVerdict(
            method=self.method,
            endpoint_ip=endpoint_ip,
            domain=domain,
            candidate_links=ordered,
            hop_low=hop_low,
            hop_high=hop_high,
            confidence=narrowing_confidence(len(ordered), len(positions)),
            evidence_count=len(items),
            detail=(
                f"blocked={blocked_count}/{len(items)} "
                f"epochs={len(epochs)}"
            ),
        )
