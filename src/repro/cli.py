"""Command-line interface: drive the tools the way the released
CenTrace/CenFuzz/CenProbe binaries are driven.

::

    repro worlds                                  # list study worlds
    repro centrace --country KZ --domain www.pokerstars.com
    repro cenfuzz  --country KZ --strategy "Get Word Alt."
    repro cenprobe --country KZ                   # scan device IPs
    repro campaign --country AZ --out data/az    # run + save raw data
    repro epochs --country KZ --drift-plan auto --out data/kz-obs
    repro facts query --store data/kz-obs/facts --subject as:9198 \
        --predicate blocks_with --transitions
    repro experiment table1                       # regenerate a table/figure
    repro report --out EXPERIMENTS.md             # the full document
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .core.cenfuzz import CenFuzz
from .core.cenprobe import CenProbe, summarize_reports
from .core.centrace import CenTrace, CenTraceConfig
from .geo.countries import COUNTRIES, build_world
from .geo.drift import DriftError
from .netsim.faults import FaultPlan
from .persist import (
    PersistError,
    fuzz_report_to_dict,
    probe_report_to_dict,
    save_campaign,
    save_localization,
    trace_result_to_dict,
)

_WORLD_CACHE = {}


def _world(
    country: str,
    scale: Optional[float],
    seed: Optional[int],
    fault_plan: Optional[str] = None,
):
    plan = FaultPlan.from_spec(fault_plan) if fault_plan else None
    key = (country.upper(), scale, seed, plan)
    if key not in _WORLD_CACHE:
        _WORLD_CACHE[key] = build_world(
            country, scale=scale, seed=seed, fault_plan=plan
        )
    return _WORLD_CACHE[key]


def _add_world_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--country", required=True, choices=sorted(COUNTRIES),
        help="study world to measure in",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--fault-plan",
        default=None,
        help="fault-injection plan: a preset name (none/light/lossy/"
        "ratelimit/churn/flaky/duplicate/chaos), inline JSON, or "
        "@path/to/plan.json",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def cmd_worlds(args: argparse.Namespace) -> int:
    rows = []
    for country in sorted(COUNTRIES):
        world = _world(country, args.scale, None)
        rows.append(
            {
                "country": country,
                "endpoints": len(world.endpoints),
                "endpoint_asns": len({e.asn for e in world.endpoints}),
                "devices": len(world.devices),
                "test_domains": list(world.test_domains),
                "in_country_vantage": world.in_country_client is not None,
            }
        )
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        for row in rows:
            print(
                f"{row['country']}: {row['endpoints']} endpoints in "
                f"{row['endpoint_asns']} ASNs, {row['devices']} devices, "
                f"vantage={'yes' if row['in_country_vantage'] else 'no'}"
            )
            print(f"    test domains: {', '.join(row['test_domains'])}")
    return 0


def cmd_centrace(args: argparse.Namespace) -> int:
    world = _world(args.country, args.scale, args.seed, args.fault_plan)
    client = (
        world.in_country_client
        if args.in_country and world.in_country_client
        else world.remote_client
    )
    tracer = CenTrace(
        world.sim,
        client,
        asdb=world.asdb,
        config=CenTraceConfig(repetitions=args.repetitions),
    )
    domain = args.domain or world.test_domains[0]
    if args.endpoint:
        endpoint_ips = [args.endpoint]
    else:
        endpoints = world.endpoints[: args.max_endpoints]
        endpoint_ips = [e.ip for e in endpoints]
    results = [
        tracer.measure(ip, domain, args.protocol, world.control_domain)
        for ip in endpoint_ips
    ]
    if args.json:
        print(json.dumps([trace_result_to_dict(r) for r in results], indent=2))
        return 0
    for result in results:
        print(result.brief())
        if result.blocked and result.blocking_hop:
            hop = result.blocking_hop
            print(
                f"    blocking hop AS{hop.asn} {hop.as_name} ({hop.country}),"
                f" {result.hops_from_endpoint} hops before the endpoint,"
                f" in_path={result.in_path}"
            )
    blocked = sum(1 for r in results if r.blocked)
    print(f"-- {blocked}/{len(results)} measurements blocked")
    return 0


def cmd_cenfuzz(args: argparse.Namespace) -> int:
    world = _world(args.country, args.scale, args.seed, args.fault_plan)
    client = (
        world.in_country_client
        if args.in_country and world.in_country_client
        else world.remote_client
    )
    fuzzer = CenFuzz(world.sim, client)
    endpoint_ip = args.endpoint or world.endpoints[0].ip
    domain = args.domain or world.test_domains[0]
    strategies = args.strategy or None
    report = fuzzer.run_endpoint(
        endpoint_ip, domain, args.protocol, world.control_domain,
        strategies=strategies,
    )
    if args.json:
        print(json.dumps(fuzz_report_to_dict(report), indent=2))
        return 0
    print(
        f"{domain} ({args.protocol}) -> {endpoint_ip}: "
        f"normal request {'BLOCKED' if report.normal_blocked else 'not blocked'}"
    )
    for strategy, (ok, evaluated) in sorted(report.success_by_strategy().items()):
        if evaluated:
            print(f"  {strategy:26s} {ok:4d}/{evaluated:<4d} evade")
    if args.infer:
        from .analysis.rule_inference import infer_rules

        model = infer_rules(report)
        print(f"inferred decision model: {model.summary()}")
    return 0


def cmd_cenprobe(args: argparse.Namespace) -> int:
    world = _world(args.country, args.scale, args.seed, args.fault_plan)
    prober = CenProbe(world.topology)
    if args.ip:
        ips = [args.ip]
    else:
        # Ground-truth device host IPs double as the scan list when no
        # CenTrace data is given (convenience for exploration).
        ips = sorted(set(world.device_host_ip.values()))
    reports = prober.scan_many(ips)
    if args.json:
        print(json.dumps([probe_report_to_dict(r) for r in reports], indent=2))
        return 0
    for report in reports:
        ports = ",".join(map(str, report.open_ports)) or "-"
        print(f"{report.ip:18s} ports={ports:20s} vendor={report.vendor or '-'}")
    print(f"-- {json.dumps(summarize_reports(reports))}")
    return 0


def cmd_residual(args: argparse.Namespace) -> int:
    from .core.centrace.residual import ResidualProbe

    world = _world(args.country, args.scale, args.seed, args.fault_plan)
    probe = ResidualProbe(world.sim, world.remote_client)
    endpoint_ip = args.endpoint or world.endpoints[0].ip
    domain = args.domain or world.test_domains[0]
    measurement = probe.measure(endpoint_ip, domain)
    if args.json:
        print(
            json.dumps(
                {
                    "endpoint_ip": measurement.endpoint_ip,
                    "test_domain": measurement.test_domain,
                    "stateful": measurement.stateful,
                    "scope": measurement.scope,
                    "duration_bounds": measurement.duration_bounds,
                    "probes_used": measurement.probes_used,
                }
            )
        )
        return 0
    print(f"{domain} -> {endpoint_ip}: {measurement.summary()}")
    print(f"({measurement.probes_used} probes)")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from .experiments.campaign import CampaignConfig, run_campaign
    from .telemetry import Telemetry

    world = _world(args.country, args.scale, args.seed, args.fault_plan)
    telemetry = Telemetry() if args.metrics else None
    campaign = run_campaign(
        world,
        CampaignConfig(
            repetitions=args.repetitions,
            fuzz_all_blocked=args.fuzz_all,
        ),
        workers=args.workers,
        telemetry=telemetry,
    )
    blocked = len(campaign.blocked_remote())
    print(
        f"{args.country}: {len(campaign.remote_results)} remote CTs,"
        f" {blocked} blocked; {len(campaign.fuzz_reports)} fuzz reports;"
        f" {len(campaign.probe_reports)} banner scans"
    )
    if campaign.run_report is not None:
        print()
        print(campaign.run_report.render())
    if args.out:
        counts = save_campaign(campaign, args.out)
        print(f"saved to {args.out}: {counts}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .persist import save_service_run
    from .service import ServiceConfig, SwarmConfig, run_swarm

    plan = FaultPlan.from_spec(args.fault_plan) if args.fault_plan else None
    swarm = SwarmConfig(
        country=args.country,
        seed=args.seed,
        scale=args.scale,
        fault_plan=plan,
        requests=args.requests,
        tenants=args.tenants,
        interleave_seed=args.interleave_seed,
        repetitions=args.repetitions,
        max_endpoints=args.max_endpoints,
        verify=args.verify,
    )
    service_config = ServiceConfig(
        max_pending=args.max_pending,
        rate=args.rate,
        burst=args.burst,
        workers=args.workers,
    )
    report = asyncio.run(run_swarm(swarm, service_config))
    counts = None
    if args.out:
        counts = save_service_run(report.run_report, report.payloads, args.out)
    if args.json:
        print(
            json.dumps(
                {
                    "stats": report.stats,
                    "distinct_units": report.distinct_units,
                    "delivered": report.delivered,
                    "verified": report.verified,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(report.render())
        if counts is not None:
            print(f"saved to {args.out}: {counts}")
    failures = []
    if args.verify and not report.verified:
        failures.append(
            "delivered results were NOT byte-identical to a direct serial run"
        )
    if (
        args.min_hit_rate is not None
        and report.stats["coalescing_hit_rate"] < args.min_hit_rate
    ):
        failures.append(
            f"coalescing hit rate {report.stats['coalescing_hit_rate']:.1%} "
            f"below --min-hit-rate {args.min_hit_rate:.1%}"
        )
    if report.stats["unit_failures"]:
        failures.append(
            f"{int(report.stats['unit_failures'])} work unit(s) failed"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def cmd_epochs(args: argparse.Namespace) -> int:
    from .experiments.campaign import CampaignConfig
    from .geo.drift import DriftPlan, auto_drift_plan
    from .store import run_observatory
    from .telemetry import NULL_TELEMETRY, Telemetry

    config = CampaignConfig(
        repetitions=args.repetitions,
        max_endpoints=args.max_endpoints,
        fuzz_max_endpoints=args.fuzz_max_endpoints,
        fault_plan=(
            FaultPlan.from_spec(args.fault_plan) if args.fault_plan else None
        ),
    )
    plan = None
    if args.drift_plan:
        if args.drift_plan == "auto":
            world = build_world(args.country, seed=args.seed, scale=args.scale)
            plan = auto_drift_plan(
                world, epochs=args.epochs, seed=args.drift_seed
            )
        else:
            plan = DriftPlan.from_spec(args.drift_plan)
    telemetry = Telemetry() if args.metrics else None
    summary = run_observatory(
        args.country,
        args.out,
        epochs=args.epochs,
        seed=args.seed,
        scale=args.scale,
        config=config,
        drift_plan=plan,
        workers=args.workers,
        telemetry=telemetry if telemetry is not None else NULL_TELEMETRY,
    )
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2))
    else:
        for r in summary.epoch_results:
            print(
                f"epoch {r.epoch}: {r.total_units} units, "
                f"{r.reused_units} reused ({r.reuse_rate:.0%}), "
                f"{r.drift_ops_applied} drift op(s) live"
            )
        print(
            f"-- {summary.epochs} epochs into {summary.out_dir}: "
            f"{summary.reused_units}/{summary.total_units} units reused "
            f"({summary.reuse_rate:.0%})"
        )
        if telemetry is not None:
            store_counters = {
                k: v
                for k, v in sorted(telemetry.counters.items())
                if k.startswith("store.")
            }
            print(f"-- counters: {json.dumps(store_counters)}")
    if args.min_reuse is not None and summary.reuse_rate < args.min_reuse:
        print(
            f"FAIL: unit reuse rate {summary.reuse_rate:.1%} below "
            f"--min-reuse {args.min_reuse:.1%}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_localize(args: argparse.Namespace) -> int:
    from .experiments.localize_xval import (
        placement_labels,
        run_cross_validation,
    )
    from .localize import METHOD_TOMOGRAPHY
    from .telemetry import NULL_TELEMETRY, Telemetry

    placements = None
    if args.placements:
        placements = [p for p in args.placements.split(",") if p]
        unknown = sorted(set(placements) - set(placement_labels()))
        if unknown:
            print(
                f"error: unknown placement(s) {', '.join(unknown)} — "
                f"valid: {', '.join(placement_labels())}",
                file=sys.stderr,
            )
            return 2
    telemetry = Telemetry() if args.metrics else NULL_TELEMETRY
    report = run_cross_validation(
        seed=args.seed if args.seed is not None else 11,
        rounds=args.rounds,
        probes_per_round=args.probes_per_round,
        tolerance=args.tolerance,
        run_ttl=not args.no_ttl,
        placements=placements,
        telemetry=telemetry,
    )
    if args.out:
        counts = save_localization(
            report.verdicts, report.evidence, args.out, xval=report.to_dict()
        )
        if not args.json:
            print(
                f"-- saved {counts['verdicts']} verdicts / "
                f"{counts['evidence']} evidence records to {args.out}"
            )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
        if args.metrics:
            localize_counters = {
                k: v
                for k, v in sorted(telemetry.counters.items())
                if k.startswith("localize.")
            }
            print(f"-- counters: {json.dumps(localize_counters)}")
    if args.min_accuracy is not None:
        accuracy = report.accuracy(METHOD_TOMOGRAPHY)
        if accuracy < args.min_accuracy:
            print(
                f"FAIL: tomography accuracy {accuracy:.1%} below "
                f"--min-accuracy {args.min_accuracy:.1%}",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_facts_query(args: argparse.Namespace) -> int:
    from .store import FactStore

    store = FactStore(args.store)
    if not store.epochs():
        print(
            f"fact store {args.store!r} holds no epochs — run "
            "'repro epochs' or 'repro facts extract' first",
            file=sys.stderr,
        )
        return 2
    if args.transitions:
        transitions = store.transitions(
            subject=args.subject, predicate=args.predicate
        )
        if args.json:
            print(json.dumps([t.to_dict() for t in transitions], indent=2))
            return 0
        for t in transitions:
            before = ", ".join(t.before) or "-"
            after = ", ".join(t.after) or "-"
            print(
                f"{t.subject} {t.predicate}: epoch {t.epoch}: "
                f"{{{before}}} -> {{{after}}}"
            )
        print(f"-- {len(transitions)} transition(s)")
        return 0
    intervals = store.intervals(
        subject=args.subject, predicate=args.predicate, obj=args.object
    )
    if args.json:
        print(json.dumps([iv.to_dict() for iv in intervals], indent=2))
        return 0
    latest = store.epochs()[-1]
    for iv in intervals:
        still = " (current)" if iv.valid_to == latest else ""
        print(
            f"{iv.fact.subject} {iv.fact.predicate} {iv.fact.object} "
            f"[epochs {iv.valid_from}..{iv.valid_to}]{still}"
        )
    print(f"-- {len(intervals)} interval(s) over epochs {store.epochs()}")
    return 0


def cmd_facts_extract(args: argparse.Namespace) -> int:
    from .persist import load_campaign
    from .store import FactStore, facts_from_campaign

    campaign = load_campaign(args.run)
    store = FactStore(args.store)
    epoch = args.epoch
    if epoch is None:
        provenance = campaign.meta.get("provenance") or {}
        epoch = provenance.get("epoch", 0)
    count = store.append_epoch(epoch, facts_from_campaign(campaign))
    print(f"extracted {count} fact(s) from {args.run} at epoch {epoch}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import ALL_EXPERIMENTS

    module = ALL_EXPERIMENTS.get(args.name)
    if module is None:
        print(
            f"unknown experiment {args.name!r}; choose from: "
            + ", ".join(sorted(ALL_EXPERIMENTS)),
            file=sys.stderr,
        )
        return 2
    kwargs = {}
    if args.scale is not None and args.name not in ("table2", "sec41_pathvar", "sec63_circumvention", "fig1", "fig9"):
        kwargs["scale"] = args.scale
    result = module.run(**kwargs)
    print(result.render())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    if args.registry:
        # Render the telemetry registry — the documented operational
        # surface every counter/span/event literal in src/ must appear
        # in (enforced by lintkit RP601/RP603).
        from . import telemetry_registry

        if args.json:
            print(
                json.dumps(
                    telemetry_registry.registry_as_dict(),
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            print(telemetry_registry.render_registry())
        return 0
    if args.run:
        # Render the telemetry run report persisted with a saved
        # campaign (``repro campaign --metrics --out DIR``) or service
        # run (``repro serve --out DIR``). Degrades to a clear message
        # + exit 2 on anything short of a well-formed report: a missing
        # directory, a FORMAT_VERSION 1 directory (predates run
        # reports), a run without --metrics, or a partially-written
        # report.json. Never a traceback.
        from pathlib import Path

        from .telemetry import RunReport

        run_dir = Path(args.run)
        if not run_dir.is_dir():
            print(
                f"run directory {args.run!r} does not exist",
                file=sys.stderr,
            )
            return 2
        report_path = run_dir / "report.json"
        if not report_path.exists():
            detail = ""
            meta_path = run_dir / "meta.json"
            if meta_path.exists():
                try:
                    meta = json.loads(meta_path.read_text())
                except (OSError, ValueError):
                    meta = {}
                if meta.get("version", 0) < 2:
                    detail = (
                        " (a format-version 1 directory, saved before "
                        "run reports existed)"
                    )
                elif meta.get("has_report") is False:
                    detail = " (the campaign ran without telemetry)"
            print(
                f"no report recorded under {args.run!r}{detail} — re-run "
                "the campaign with --metrics to collect one",
                file=sys.stderr,
            )
            return 2
        try:
            report = RunReport.from_dict(
                json.loads(report_path.read_text())
            )
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(
                f"unreadable run report under {args.run!r} "
                f"({type(exc).__name__}: {exc}) — the directory looks "
                "partially written; re-run the campaign with --metrics",
                file=sys.stderr,
            )
            return 2
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.render())
        return 0

    from .experiments.report import main as report_main

    argv = ["--out", args.out]
    if args.scale is not None:
        argv.extend(["--scale", str(args.scale)])
    return report_main(argv)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Censorship-device measurement tools (CoNEXT '22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    worlds = sub.add_parser("worlds", help="list the study worlds")
    worlds.add_argument("--scale", type=float, default=None)
    worlds.add_argument("--json", action="store_true")
    worlds.set_defaults(func=cmd_worlds)

    centrace = sub.add_parser("centrace", help="run censorship traceroutes")
    _add_world_args(centrace)
    centrace.add_argument("--domain", help="test domain (default: first)")
    centrace.add_argument(
        "--protocol", default="http", choices=["http", "tls", "dns"]
    )
    centrace.add_argument("--endpoint", help="specific endpoint IP")
    centrace.add_argument("--max-endpoints", type=int, default=5)
    centrace.add_argument("--repetitions", type=int, default=3)
    centrace.add_argument("--in-country", action="store_true")
    centrace.set_defaults(func=cmd_centrace)

    cenfuzz = sub.add_parser("cenfuzz", help="fuzz a censorship device")
    _add_world_args(cenfuzz)
    cenfuzz.add_argument("--domain")
    cenfuzz.add_argument("--protocol", default="http", choices=["http", "tls"])
    cenfuzz.add_argument("--endpoint")
    cenfuzz.add_argument(
        "--strategy", action="append", help="restrict to strategy (repeatable)"
    )
    cenfuzz.add_argument("--in-country", action="store_true")
    cenfuzz.add_argument(
        "--infer",
        action="store_true",
        help="infer the device's decision model from the results",
    )
    cenfuzz.set_defaults(func=cmd_cenfuzz)

    cenprobe = sub.add_parser("cenprobe", help="banner-grab device IPs")
    _add_world_args(cenprobe)
    cenprobe.add_argument("--ip", help="specific IP (default: all device IPs)")
    cenprobe.set_defaults(func=cmd_cenprobe)

    residual = sub.add_parser(
        "residual", help="measure a device's residual censorship"
    )
    _add_world_args(residual)
    residual.add_argument("--domain")
    residual.add_argument("--endpoint")
    residual.set_defaults(func=cmd_residual)

    campaign = sub.add_parser("campaign", help="full campaign (+ save raw data)")
    _add_world_args(campaign)
    campaign.add_argument("--repetitions", type=int, default=3)
    campaign.add_argument("--fuzz-all", action="store_true")
    campaign.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard measurements over N worker processes "
        "(bit-identical to the serial run)",
    )
    campaign.add_argument("--out", help="directory for raw JSONL data")
    campaign.add_argument(
        "--metrics",
        action="store_true",
        help="collect telemetry and print/persist a run report",
    )
    campaign.set_defaults(func=cmd_campaign)

    serve = sub.add_parser(
        "serve",
        help="campaign-as-a-service: drive the job queue with a "
        "synthetic client swarm",
    )
    _add_world_args(serve)
    serve.add_argument(
        "--requests", type=int, default=1000, help="swarm request count"
    )
    serve.add_argument("--tenants", type=int, default=8)
    serve.add_argument(
        "--interleave-seed",
        type=int,
        default=0,
        help="request shuffle seed (must not affect delivered bytes)",
    )
    serve.add_argument("--repetitions", type=int, default=2)
    serve.add_argument("--max-endpoints", type=int, default=4)
    serve.add_argument(
        "--rate",
        type=float,
        default=2.0,
        help="per-tenant admission tokens per service tick",
    )
    serve.add_argument("--burst", type=int, default=4)
    serve.add_argument(
        "--max-pending",
        type=int,
        default=16,
        help="backpressure bound on queued-not-started units",
    )
    serve.add_argument("--workers", type=int, default=None)
    serve.add_argument(
        "--verify",
        action="store_true",
        help="byte-compare every delivered result against a direct "
        "serial run",
    )
    serve.add_argument(
        "--min-hit-rate",
        type=float,
        default=None,
        help="fail unless the coalescing hit rate reaches this fraction",
    )
    serve.add_argument(
        "--out", help="directory for delivered results + report.json"
    )
    serve.set_defaults(func=cmd_serve)

    epochs = sub.add_parser(
        "epochs",
        help="longitudinal observatory: run drifted epochs with "
        "incremental unit reuse into a fact store",
    )
    _add_world_args(epochs)
    epochs.add_argument(
        "--epochs", type=int, default=3, help="number of epochs to run"
    )
    epochs.add_argument(
        "--drift-plan",
        default=None,
        help="world drift: 'auto' (seeded generation), inline JSON, or "
        "@path/to/plan.json; omit for a static world",
    )
    epochs.add_argument(
        "--drift-seed",
        type=int,
        default=0,
        help="seed for --drift-plan auto",
    )
    epochs.add_argument(
        "--out", required=True, help="observatory output directory"
    )
    epochs.add_argument("--repetitions", type=int, default=2)
    epochs.add_argument("--max-endpoints", type=int, default=4)
    epochs.add_argument("--fuzz-max-endpoints", type=int, default=2)
    epochs.add_argument("--workers", type=int, default=None)
    epochs.add_argument(
        "--metrics",
        action="store_true",
        help="collect telemetry and print store.* counters",
    )
    epochs.add_argument(
        "--min-reuse",
        type=float,
        default=None,
        help="fail unless the overall unit reuse rate reaches this "
        "fraction",
    )
    epochs.set_defaults(func=cmd_epochs)

    localize = sub.add_parser(
        "localize",
        help="cross-validate localization methods (TTL probing vs "
        "churn tomography vs path-inconsistency) against ground truth",
    )
    localize.add_argument(
        "--rounds", type=int, default=6, help="churn rounds of evidence"
    )
    localize.add_argument(
        "--probes-per-round", type=int, default=4,
        help="outcome probes per endpoint per round",
    )
    localize.add_argument("--seed", type=int, default=None)
    localize.add_argument(
        "--tolerance", type=int, default=1,
        help="accuracy counts placements within this many links of truth",
    )
    localize.add_argument(
        "--no-ttl", action="store_true",
        help="skip the CenTrace TTL pass (tomography/inconsistency only)",
    )
    localize.add_argument(
        "--placements", default=None,
        help="comma-separated subset of placement labels to sweep",
    )
    localize.add_argument(
        "--out", default=None,
        help="save verdicts + evidence + xval report to this directory",
    )
    localize.add_argument(
        "--metrics", action="store_true",
        help="collect telemetry and print localize.* counters",
    )
    localize.add_argument(
        "--min-accuracy", type=float, default=None,
        help="fail unless tomography accuracy reaches this fraction",
    )
    localize.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    localize.set_defaults(func=cmd_localize)

    facts = sub.add_parser(
        "facts", help="query or extend the longitudinal fact store"
    )
    facts_sub = facts.add_subparsers(dest="facts_command", required=True)

    facts_query = facts_sub.add_parser(
        "query",
        help="validity intervals or transitions for stored facts",
    )
    facts_query.add_argument(
        "--store", required=True, help="fact store directory"
    )
    facts_query.add_argument(
        "--subject", default=None, help="e.g. as:9198 or device:5.2.0.2"
    )
    facts_query.add_argument(
        "--predicate",
        default=None,
        help="blocks_with/blocks_domain/hosts_device/vendor/"
        "serves_blockpage/named/in_country",
    )
    facts_query.add_argument("--object", default=None)
    facts_query.add_argument(
        "--transitions",
        action="store_true",
        help="report when the object set changed instead of intervals "
        '("when did AS 9198 switch from RST to blockpage?")',
    )
    facts_query.add_argument("--json", action="store_true")
    facts_query.set_defaults(func=cmd_facts_query)

    facts_extract = facts_sub.add_parser(
        "extract",
        help="extract facts from a saved campaign directory into a store",
    )
    facts_extract.add_argument(
        "--run", required=True, help="save_campaign directory"
    )
    facts_extract.add_argument(
        "--store", required=True, help="fact store directory"
    )
    facts_extract.add_argument(
        "--epoch",
        type=int,
        default=None,
        help="epoch to record (default: the campaign's own provenance)",
    )
    facts_extract.set_defaults(func=cmd_facts_extract)

    experiment = sub.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment.add_argument("name")
    experiment.add_argument("--scale", type=float, default=None)
    experiment.set_defaults(func=cmd_experiment)

    report = sub.add_parser(
        "report",
        help="regenerate EXPERIMENTS.md, or render a saved run report",
    )
    report.add_argument("--out", default="EXPERIMENTS.md")
    report.add_argument("--scale", type=float, default=None)
    report.add_argument(
        "--run",
        default=None,
        metavar="DIR",
        help="render the telemetry run report saved in campaign dir DIR",
    )
    report.add_argument(
        "--registry",
        action="store_true",
        help="render the telemetry registry (documented metric names)",
    )
    report.add_argument("--json", action="store_true")
    report.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (PersistError, DriftError) as exc:
        # Any analysis path reading a missing/truncated/corrupt run
        # directory — or a malformed drift-plan spec — reports cleanly
        # instead of tracebacking.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
