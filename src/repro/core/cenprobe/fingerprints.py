"""Recog-style fingerprint repository for device banners (§5.1).

Each rule is a regex over a banner (or admin-page body / SNMP sysDescr)
with a vendor label. The repository mirrors how the paper combines
Rapid7's Recog with manual investigation to label filtering devices.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class FingerprintRule:
    """One banner fingerprint."""

    name: str
    protocols: Tuple[str, ...]  # which services this rule applies to
    pattern: str
    vendor: str
    is_filtering_product: bool = True  # vs. merely identifying the OS

    def search(self, text: str) -> bool:
        return re.search(self.pattern, text, re.IGNORECASE) is not None


RULES: List[FingerprintRule] = [
    FingerprintRule(
        name="fortinet.ssh",
        protocols=("ssh",),
        pattern=r"FortiSSH",
        vendor="Fortinet",
    ),
    FingerprintRule(
        name="fortinet.http.admin",
        protocols=("http", "https"),
        pattern=r"FortiGate",
        vendor="Fortinet",
    ),
    FingerprintRule(
        name="fortinet.telnet",
        protocols=("telnet",),
        pattern=r"FortiGate",
        vendor="Fortinet",
    ),
    FingerprintRule(
        name="cisco.ssh",
        protocols=("ssh",),
        pattern=r"SSH-2\.0-Cisco",
        vendor="Cisco",
    ),
    FingerprintRule(
        name="cisco.telnet",
        protocols=("telnet",),
        pattern=r"User Access Verification",
        vendor="Cisco",
    ),
    FingerprintRule(
        name="cisco.snmp",
        protocols=("snmp",),
        pattern=r"Cisco IOS",
        vendor="Cisco",
    ),
    FingerprintRule(
        name="kerio.http",
        protocols=("http", "https"),
        pattern=r"Kerio Control",
        vendor="Kerio Control",
    ),
    FingerprintRule(
        name="paloalto.ssh",
        protocols=("ssh",),
        pattern=r"SSH-2\.0-PaloAlto",
        vendor="Palo Alto",
    ),
    FingerprintRule(
        name="paloalto.http",
        protocols=("http", "https"),
        pattern=r"Palo Alto Networks|GlobalProtect",
        vendor="Palo Alto",
    ),
    FingerprintRule(
        name="ddosguard.http",
        protocols=("http", "https"),
        pattern=r"ddos-guard",
        vendor="DDoS-Guard",
    ),
    FingerprintRule(
        name="mikrotik.ftp",
        protocols=("ftp",),
        pattern=r"MikroTik",
        vendor="Mikrotik",
    ),
    FingerprintRule(
        name="mikrotik.ssh",
        protocols=("ssh",),
        pattern=r"ROSSSH",
        vendor="Mikrotik",
    ),
    FingerprintRule(
        name="mikrotik.snmp",
        protocols=("snmp",),
        pattern=r"RouterOS",
        vendor="Mikrotik",
    ),
    FingerprintRule(
        name="kaspersky.http",
        protocols=("http", "https", "smtp"),
        pattern=r"Kaspersky Web Traffic Security|KWTS",
        vendor="Kaspersky",
    ),
    FingerprintRule(
        name="netsweeper.http",
        protocols=("http", "https"),
        pattern=r"Netsweeper",
        vendor="Netsweeper",
    ),
    FingerprintRule(
        name="sonicwall.http",
        protocols=("http", "https"),
        pattern=r"SonicWall",
        vendor="SonicWall",
    ),
    FingerprintRule(
        name="squid.http",
        protocols=("http", "https"),
        pattern=r"squid",
        vendor="Squid",
    ),
    FingerprintRule(
        name="sophos.http",
        protocols=("http", "https"),
        pattern=r"Sophos Web Appliance",
        vendor="Sophos",
    ),
    # OS-level fingerprints: identify the platform but not filtering
    # software; kept to show the precision boundary §5.3 describes.
    FingerprintRule(
        name="openssh.generic",
        protocols=("ssh",),
        pattern=r"SSH-2\.0-OpenSSH",
        vendor="OpenSSH",
        is_filtering_product=False,
    ),
    FingerprintRule(
        name="nginx.generic",
        protocols=("http", "https"),
        pattern=r"nginx",
        vendor="nginx",
        is_filtering_product=False,
    ),
]


class FingerprintRepository:
    """Matches collected banners against the rule set."""

    def __init__(self, rules: Optional[List[FingerprintRule]] = None) -> None:
        # An explicitly empty rule list is a valid (if useless) repo;
        # only None falls back to the built-in corpus.
        self.rules = list(RULES if rules is None else rules)

    def match(self, protocol: str, text: str) -> Optional[FingerprintRule]:
        """The first rule matching ``text`` collected over ``protocol``."""
        for rule in self.rules:
            if protocol in rule.protocols and rule.search(text):
                return rule
        return None

    def match_filtering_vendor(self, protocol: str, text: str) -> Optional[str]:
        rule = self.match(protocol, text)
        if rule is not None and rule.is_filtering_product:
            return rule.vendor
        return None

    def add(self, rule: FingerprintRule) -> None:
        self.rules.append(rule)


DEFAULT_REPOSITORY = FingerprintRepository()
