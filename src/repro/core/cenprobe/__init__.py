"""CenProbe: device banner grabs and vendor fingerprinting (paper §5)."""

from .fingerprints import (
    DEFAULT_REPOSITORY,
    FingerprintRepository,
    FingerprintRule,
    RULES,
)
from .os_probes import (
    OS_FEATURE_NAMES,
    OSPersonality,
    OSProber,
    OSProbeResult,
    PERSONALITIES,
    VENDOR_PERSONALITIES,
)
from .scanner import (
    BANNER_PROTOCOLS,
    BannerGrab,
    CenProbe,
    ProbeReport,
    TOP_PORTS,
    summarize_reports,
)

__all__ = [
    "OS_FEATURE_NAMES",
    "OSPersonality",
    "OSProber",
    "OSProbeResult",
    "PERSONALITIES",
    "VENDOR_PERSONALITIES",
    "DEFAULT_REPOSITORY",
    "FingerprintRepository",
    "FingerprintRule",
    "RULES",
    "BANNER_PROTOCOLS",
    "BannerGrab",
    "CenProbe",
    "ProbeReport",
    "TOP_PORTS",
    "summarize_reports",
]
