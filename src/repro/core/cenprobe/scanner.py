"""CenProbe: port scanning and application-layer banner grabs (§5.1).

The workflow mirrors the paper's: scan the top ports on every potential
censorship-device IP (the terminating hops of Control-Domain CenTraces),
then grab banners on HTTP(S), SSH, Telnet, FTP, SMTP and SNMP, and
label the device via the fingerprint repository.

The simulator exposes the management plane directly on topology nodes,
so grabbing is a structured lookup rather than raw sockets — the
observable data (ports, banners, responses) is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...netsim.topology import Service, Topology
from ...telemetry import NULL_TELEMETRY
from .fingerprints import DEFAULT_REPOSITORY, FingerprintRepository

# The subset of Nmap's top-1000 ports that can host the services our
# devices and decoys expose (plus a spread of commonly-open ports).
TOP_PORTS: Tuple[int, ...] = (
    21, 22, 23, 25, 53, 80, 110, 111, 135, 139, 143, 161, 179, 389,
    443, 445, 465, 514, 587, 631, 993, 995, 1080, 1433, 1723, 2000,
    3128, 3306, 3389, 5060, 5432, 5900, 8000, 8080, 8081, 8443, 8888,
    9090, 10000,
)

BANNER_PROTOCOLS = ("http", "https", "ssh", "telnet", "ftp", "smtp", "snmp")


@dataclass
class BannerGrab:
    """One service's collected banner data."""

    port: int
    protocol: str
    banner: str = ""
    response: str = ""  # application-layer probe response

    def text(self) -> str:
        return f"{self.banner}\n{self.response}".strip()


@dataclass
class ProbeReport:
    """Everything CenProbe learned about one IP."""

    ip: str
    reachable: bool = False
    open_ports: List[int] = field(default_factory=list)
    grabs: List[BannerGrab] = field(default_factory=list)
    vendor: Optional[str] = None  # filtering-product label (or None)
    matched_rule: Optional[str] = None
    other_identifications: List[str] = field(default_factory=list)
    os_features: Dict[str, float] = field(default_factory=dict)
    os_name: Optional[str] = None  # ground truth, for tests only

    @property
    def has_services(self) -> bool:
        return bool(self.open_ports)

    @property
    def labeled_filtering(self) -> bool:
        return self.vendor is not None


def _grab_service(service: Service) -> BannerGrab:
    """Collect a service's banner plus a protocol-appropriate probe."""
    grab = BannerGrab(port=service.port, protocol=service.protocol)
    grab.banner = service.banner.decode("utf-8", errors="replace").strip()
    if service.protocol in ("http", "https"):
        probe = b"GET / HTTP/1.1\r\nHost: scanner\r\n\r\n"
    elif service.protocol == "snmp":
        probe = b"SNMP-GET sysDescr"
    else:
        probe = b""
    if probe:
        grab.response = service.respond(probe).decode("utf-8", errors="replace")
    return grab


class CenProbe:
    """Scans potential device IPs and labels them from banners."""

    def __init__(
        self,
        topology: Topology,
        repository: Optional[FingerprintRepository] = None,
        ports: Sequence[int] = TOP_PORTS,
        telemetry=NULL_TELEMETRY,
    ) -> None:
        self.topology = topology
        self.repository = repository or DEFAULT_REPOSITORY
        self.ports = tuple(ports)
        # CenProbe reads static topology only (no simulator), so its
        # observability sink is injected directly.
        self.telemetry = telemetry

    def scan(self, ip: str) -> ProbeReport:
        """Scan one IP: ports, banners, fingerprints."""
        tel = self.telemetry
        if tel.enabled:
            tel.count("cenprobe.scans")
            tel.count("cenprobe.ports_scanned", len(self.ports))
        report = ProbeReport(ip=ip)
        node = self.topology.node_at(ip)
        if node is None:
            if tel.enabled:
                tel.count("cenprobe.unreachable")
            return report
        report.reachable = True
        report.open_ports = self.topology.scan_ports(ip, self.ports)
        # Nmap-style crafted probes (§5.1) — OS-level features.
        from .os_probes import OSProber

        os_result = OSProber(self.topology).probe(ip)
        report.os_features = dict(os_result.features)
        report.os_name = os_result.personality_name
        for port in report.open_ports:
            service = self.topology.service_at(ip, port)
            if service is None or service.protocol not in BANNER_PROTOCOLS:
                continue
            grab = _grab_service(service)
            report.grabs.append(grab)
            rule = self.repository.match(grab.protocol, grab.text())
            if rule is None:
                continue
            if rule.is_filtering_product and report.vendor is None:
                report.vendor = rule.vendor
                report.matched_rule = rule.name
            elif not rule.is_filtering_product:
                report.other_identifications.append(rule.vendor)
        if tel.enabled:
            tel.count("cenprobe.open_ports", len(report.open_ports))
            tel.count("cenprobe.banner_grabs", len(report.grabs))
            if report.vendor is not None:
                tel.count("cenprobe.vendor_labels")
        return report

    def scan_many(self, ips: Sequence[str]) -> List[ProbeReport]:
        return [self.scan(ip) for ip in ips]


def summarize_reports(reports: Sequence[ProbeReport]) -> Dict[str, int]:
    """Aggregate §5.3-style statistics over a batch of scans."""
    with_services = [r for r in reports if r.has_services]
    labeled = [r for r in reports if r.labeled_filtering]
    vendors: Dict[str, int] = {}
    for report in labeled:
        vendors[report.vendor] = vendors.get(report.vendor, 0) + 1
    return {
        "total": len(reports),
        "with_services": len(with_services),
        "labeled_filtering": len(labeled),
        **{f"vendor:{name}": count for name, count in sorted(vendors.items())},
    }
