"""Nmap-style crafted-probe OS fingerprinting (§5.1).

"Nmap then sends up to 16 specially crafted TCP, UDP, and ICMP probes
to the device, on both open and closed ports. These probes are each
intended to invoke a unique and potentially fingerprintable response."

Every node in the simulator carries an :class:`OSPersonality` — the
stack-level behaviours those probes elicit. The personality *data*
(the dataclass, the named stacks, the vendor mapping) lives in
:mod:`repro.devices.personality` with the rest of the vendor catalog,
so world builders can attach personalities without importing
measurement code; this module re-exports the names and owns
:class:`OSProber`, which replays the crafted-probe sequence against a
node and turns the responses into features, which CenProbe folds into
its reports and the §7 clustering consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...devices.personality import (  # noqa: F401  (re-exported API)
    CISCO_IOS,
    FORTIOS,
    IPID_INCREMENTAL,
    IPID_RANDOM,
    IPID_ZERO,
    KERIO_OS,
    LINUX,
    OSPersonality,
    PANOS,
    PERSONALITIES,
    ROUTEROS,
    VENDOR_PERSONALITIES,
    WINDOWS_LIKE,
)
from ...netsim.topology import Topology


@dataclass
class OSProbeResult:
    """The feature vector Nmap-style probing produces for one IP."""

    ip: str
    responsive: bool = False
    personality_name: Optional[str] = None  # ground truth, tests only
    features: Dict[str, float] = field(default_factory=dict)

    def feature(self, name: str) -> Optional[float]:
        return self.features.get(name)


class OSProber:
    """Replays the crafted-probe sequence against topology nodes.

    Like CenProbe's banner grabs, probing is a structured exchange with
    the node's modeled stack rather than raw sockets — the features are
    exactly what the real probes would measure.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    def probe(self, ip: str) -> OSProbeResult:
        result = OSProbeResult(ip=ip)
        node = self.topology.node_at(ip)
        if node is None:
            return result
        personality = getattr(node, "personality", None) or LINUX
        has_open_port = bool(node.services)
        result.responsive = True
        result.personality_name = personality.name
        features = result.features
        # T1: SYN to an open port — window, options, TTL (needs a port).
        if has_open_port:
            features["OSSynAckWindow"] = float(personality.syn_ack_window)
            features["OSOptionCount"] = float(len(personality.tcp_options))
            features["OSOptionsHash"] = float(
                sum((i + 1) * kind for i, kind in enumerate(personality.tcp_options))
                % 9973
            )
            # T2: FIN to the open port — silence or a reply.
            features["OSAnswersFin"] = float(personality.answers_fin_probe)
            # T3: NULL-flags probe.
            features["OSAnswersNull"] = float(personality.answers_null_probe)
            # T6: ECN-setup SYN.
            features["OSECN"] = float(personality.ecn_supported)
        # T5: SYN to a closed port — RST characteristics.
        features["OSRstWindow"] = float(personality.rst_window)
        # U1: UDP to a closed port — ICMP port unreachable or silence.
        features["OSIcmpUnreachable"] = float(personality.icmp_port_unreachable)
        # TTL inference from any response.
        features["OSInitialTTL"] = float(personality.initial_ttl)
        # II: IP-ID sequence classification over consecutive probes.
        features["OSIpIdClass"] = {
            IPID_ZERO: 0.0,
            IPID_INCREMENTAL: 1.0,
            IPID_RANDOM: 2.0,
        }[personality.ip_id_pattern]
        features["OSDFBit"] = float(personality.df_bit)
        return result

    def probe_many(self, ips) -> List[OSProbeResult]:
        return [self.probe(ip) for ip in ips]


OS_FEATURE_NAMES = (
    "OSSynAckWindow",
    "OSOptionCount",
    "OSOptionsHash",
    "OSAnswersFin",
    "OSAnswersNull",
    "OSECN",
    "OSRstWindow",
    "OSIcmpUnreachable",
    "OSInitialTTL",
    "OSIpIdClass",
    "OSDFBit",
)
