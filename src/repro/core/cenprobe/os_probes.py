"""Nmap-style crafted-probe OS fingerprinting (§5.1).

"Nmap then sends up to 16 specially crafted TCP, UDP, and ICMP probes
to the device, on both open and closed ports. These probes are each
intended to invoke a unique and potentially fingerprintable response."

Every node in the simulator carries an :class:`OSPersonality` — the
stack-level behaviours those probes elicit (initial TTL, SYN-ACK
window and options, whether a FIN-to-open-port gets a reply, whether a
UDP probe to a closed port draws an ICMP port-unreachable, IP-ID
sequence style, DF bit). :class:`OSProber` replays the crafted-probe
sequence against a node and turns the responses into features, which
CenProbe folds into its reports and the §7 clustering consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...netsim.topology import Topology

# IP-ID sequence classes (Nmap's "II" test, simplified).
IPID_INCREMENTAL = "incremental"
IPID_ZERO = "zero"
IPID_RANDOM = "random"


@dataclass(frozen=True)
class OSPersonality:
    """Stack-level behaviours crafted probes elicit from one device OS."""

    name: str
    initial_ttl: int = 64
    syn_ack_window: int = 64240
    tcp_options: Tuple[int, ...] = (2, 4, 8, 1, 3)  # MSS,SACK,TS,NOP,WS
    rst_window: int = 0
    answers_fin_probe: bool = False  # RFC 793 stacks stay silent
    answers_null_probe: bool = False
    icmp_port_unreachable: bool = True
    ip_id_pattern: str = IPID_INCREMENTAL
    df_bit: bool = True
    ecn_supported: bool = True


# Personalities for the platforms our vendor catalog ships on.
LINUX = OSPersonality(name="Linux 5.x")
FORTIOS = OSPersonality(
    name="FortiOS",
    initial_ttl=255,
    syn_ack_window=16384,
    tcp_options=(2, 1, 3),
    answers_fin_probe=False,
    ip_id_pattern=IPID_ZERO,
    ecn_supported=False,
)
CISCO_IOS = OSPersonality(
    name="Cisco IOS",
    initial_ttl=255,
    syn_ack_window=4128,
    tcp_options=(2,),
    rst_window=4128,
    icmp_port_unreachable=False,  # rate-limited to silence
    ip_id_pattern=IPID_RANDOM,
    df_bit=False,
    ecn_supported=False,
)
ROUTEROS = OSPersonality(
    name="MikroTik RouterOS",
    initial_ttl=64,
    syn_ack_window=14600,
    tcp_options=(2, 4, 1, 3),
    answers_fin_probe=False,
    ip_id_pattern=IPID_INCREMENTAL,
    ecn_supported=False,
)
PANOS = OSPersonality(
    name="PAN-OS",
    initial_ttl=64,
    syn_ack_window=32768,
    tcp_options=(2, 1, 1, 4),
    answers_fin_probe=True,  # middlebox proxy stack answers anything
    answers_null_probe=True,
    ip_id_pattern=IPID_ZERO,
)
KERIO_OS = OSPersonality(
    name="Kerio Control appliance",
    initial_ttl=64,
    syn_ack_window=29200,
    tcp_options=(2, 4, 8, 1, 3),
    icmp_port_unreachable=True,
    ip_id_pattern=IPID_INCREMENTAL,
)
WINDOWS_LIKE = OSPersonality(
    name="Windows Server",
    initial_ttl=128,
    syn_ack_window=8192,
    tcp_options=(2, 1, 3, 1, 1, 4),
    answers_fin_probe=False,
    ip_id_pattern=IPID_INCREMENTAL,
    ecn_supported=False,
)

PERSONALITIES = {
    p.name: p
    for p in (LINUX, FORTIOS, CISCO_IOS, ROUTEROS, PANOS, KERIO_OS, WINDOWS_LIKE)
}

# Vendor -> appliance OS mapping (used when placing devices).
VENDOR_PERSONALITIES: Dict[str, OSPersonality] = {
    "Fortinet": FORTIOS,
    "Cisco": CISCO_IOS,
    "Mikrotik": ROUTEROS,
    "Palo Alto": PANOS,
    "Kerio Control": KERIO_OS,
    "Kaspersky": LINUX,
    "DDoS-Guard": LINUX,
    "Netsweeper": LINUX,
    "SonicWall": WINDOWS_LIKE,
    "Squid": LINUX,
    "Sophos": LINUX,
}


@dataclass
class OSProbeResult:
    """The feature vector Nmap-style probing produces for one IP."""

    ip: str
    responsive: bool = False
    personality_name: Optional[str] = None  # ground truth, tests only
    features: Dict[str, float] = field(default_factory=dict)

    def feature(self, name: str) -> Optional[float]:
        return self.features.get(name)


class OSProber:
    """Replays the crafted-probe sequence against topology nodes.

    Like CenProbe's banner grabs, probing is a structured exchange with
    the node's modeled stack rather than raw sockets — the features are
    exactly what the real probes would measure.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    def probe(self, ip: str) -> OSProbeResult:
        result = OSProbeResult(ip=ip)
        node = self.topology.node_at(ip)
        if node is None:
            return result
        personality = getattr(node, "personality", None) or LINUX
        has_open_port = bool(node.services)
        result.responsive = True
        result.personality_name = personality.name
        features = result.features
        # T1: SYN to an open port — window, options, TTL (needs a port).
        if has_open_port:
            features["OSSynAckWindow"] = float(personality.syn_ack_window)
            features["OSOptionCount"] = float(len(personality.tcp_options))
            features["OSOptionsHash"] = float(
                sum((i + 1) * kind for i, kind in enumerate(personality.tcp_options))
                % 9973
            )
            # T2: FIN to the open port — silence or a reply.
            features["OSAnswersFin"] = float(personality.answers_fin_probe)
            # T3: NULL-flags probe.
            features["OSAnswersNull"] = float(personality.answers_null_probe)
            # T6: ECN-setup SYN.
            features["OSECN"] = float(personality.ecn_supported)
        # T5: SYN to a closed port — RST characteristics.
        features["OSRstWindow"] = float(personality.rst_window)
        # U1: UDP to a closed port — ICMP port unreachable or silence.
        features["OSIcmpUnreachable"] = float(personality.icmp_port_unreachable)
        # TTL inference from any response.
        features["OSInitialTTL"] = float(personality.initial_ttl)
        # II: IP-ID sequence classification over consecutive probes.
        features["OSIpIdClass"] = {
            IPID_ZERO: 0.0,
            IPID_INCREMENTAL: 1.0,
            IPID_RANDOM: 2.0,
        }[personality.ip_id_pattern]
        features["OSDFBit"] = float(personality.df_bit)
        return result

    def probe_many(self, ips) -> List[OSProbeResult]:
        return [self.probe(ip) for ip in ips]


OS_FEATURE_NAMES = (
    "OSSynAckWindow",
    "OSOptionCount",
    "OSOptionsHash",
    "OSAnswersFin",
    "OSAnswersNull",
    "OSECN",
    "OSRstWindow",
    "OSIcmpUnreachable",
    "OSInitialTTL",
    "OSIpIdClass",
    "OSDFBit",
)
