"""CenFuzz's deterministic fuzzing strategies (Table 2).

Sixteen HTTP-request and eight TLS-ClientHello strategies, each a fixed
list of permutations, so that every device is tested with exactly the
same probes and the results form a comparable fingerprint (§6).

Permutation counts match Table 2's 'NP' column:

HTTP — Get Word Alt 6, Http Word Alt 16, Host Word Alt 7, Path Alt 8,
Hostname Alt 5, Hostname TLD Alt 10, Hostname Subdomain Alt 10,
Header Alt 59, Get Word Cap 8, Http Word Cap 16, Host Word Cap 16,
Get Word Rem 7, Http Word Rem 167, Host Word Rem 63,
Http Delimiter Rem 3, Hostname Pad 9.

TLS — Min Version Alt 4, Max Version Alt 4, Cipher Suite Alt 25,
Client Certificate Alt 3, SNI Alt 4, SNI TLD Alt 10,
SNI Subdomain Alt 10, SNI Pad 9.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ...netmodel.http import HTTPRequest
from ...netmodel.tls import (
    CIPHER_SUITES,
    ClientHello,
    VERSION_TLS10,
    VERSION_TLS11,
    VERSION_TLS12,
    VERSION_TLS13,
)

PROTO_HTTP = "http"
PROTO_TLS = "tls"

STRATEGY_NORMAL = "Normal"


@dataclass(frozen=True)
class Permutation:
    """One concrete fuzzed probe."""

    strategy: str
    label: str
    protocol: str
    build: Callable[[str], bytes]

    def payload(self, domain: str) -> bytes:
        return self.build(domain)


def _http(strategy: str, label: str, build) -> Permutation:
    return Permutation(strategy, label, PROTO_HTTP, build)


def _tls(strategy: str, label: str, build) -> Permutation:
    return Permutation(strategy, label, PROTO_TLS, build)


# -- hostname manipulation helpers (shared by HTTP and TLS strategies) ------

ALT_TLDS = ("net", "org", "co", "io", "biz", "info", "edu", "gov", "xyz", "ru")
ALT_SUBDOMAINS = (
    "m",
    "wiki",
    "mail",
    "cdn",
    "app",
    "web",
    "dev",
    "beta",
    "shop",
    "news",
)


def swap_tld(domain: str, tld: str) -> str:
    labels = domain.split(".")
    if len(labels) < 2:
        return f"{domain}.{tld}"
    return ".".join(labels[:-1] + [tld])


def swap_subdomain(domain: str, sub: str) -> str:
    labels = domain.split(".")
    if len(labels) >= 3:
        return ".".join([sub] + labels[1:])
    return f"{sub}.{domain}"


def pad_variants() -> List[tuple]:
    """(label, leading, trailing) for the 9 padding permutations."""
    variants = []
    for lead, trail in itertools.product((0, 1, 2), repeat=2):
        if lead == 0 and trail == 0:
            continue
        variants.append((f"lead{lead}-trail{trail}", "*" * lead, "*" * trail))
    variants.append(("hash-pads", "##", "#"))
    return variants


def _case_variants(word: str, limit: int) -> List[str]:
    """All upper/lower case combinations of ``word``'s letters."""
    letters = list(word)
    positions = [i for i, c in enumerate(letters) if c.isalpha()]
    variants = []
    for mask in itertools.product((str.lower, str.upper), repeat=len(positions)):
        candidate = letters[:]
        for pos, transform in zip(positions, mask):
            candidate[pos] = transform(candidate[pos])
        variant = "".join(candidate)
        variants.append(variant)
    # Deterministic order, original first removed later by caller if wanted.
    unique = list(dict.fromkeys(variants))
    return unique[:limit]


def _removal_variants(word: str, limit: int) -> List[str]:
    """Variants of ``word`` with growing subsets of characters removed."""
    n = len(word)
    variants: List[str] = []
    for k in range(1, n + 1):
        for indices in itertools.combinations(range(n), k):
            drop = set(indices)
            variants.append("".join(c for i, c in enumerate(word) if i not in drop))
            if len(variants) >= limit:
                return variants
    return variants


# ---------------------------------------------------------------------------
# HTTP strategies
# ---------------------------------------------------------------------------


def _base_request(domain: str, **overrides) -> bytes:
    return HTTPRequest(host=domain, **overrides).build()


def http_strategies() -> Dict[str, List[Permutation]]:
    """The 16 HTTP strategies, keyed by display name (Figure 5)."""
    strategies: Dict[str, List[Permutation]] = {}

    def add(strategy: str, label: str, **overrides) -> None:
        strategies.setdefault(strategy, []).append(
            _http(
                strategy,
                label,
                lambda domain, _o=dict(overrides): _base_request(domain, **_o),
            )
        )

    # Alternate data ------------------------------------------------------
    for method in ("POST", "PUT", "PATCH", "DELETE", "XXXX", ""):
        add("Get Word Alt.", method or "<empty>", method=method)

    http_words = [
        "HTTP/1.0",
        "HTTP/2",
        "HTTP/3",
        "HTTP/9",
        "HTTP/1.2",
        "HTTP/0.9",
        "HTTP/ 1.1",
        "HTTP /1.1",
        "XXXX/1.1",
        "HTTPS/1.1",
        "HTTP\\1.1",
        "HTTP|1.1",
        "HTTP1.1",
        "HTTP/11",
        "HTTP/1.1.1",
        "H/1.1",
    ]
    for word in http_words:
        add("Http Word Alt.", word, http_word=word)

    for host_word in (
        "HostHeader",
        "XHost",
        "Hostname",
        "X-Host",
        "Host-Name",
        "HTTPHost",
        "XXXX",
    ):
        add("Host Word Alt.", host_word, host_word=host_word)

    for path in ("?", "z", "/index.html", "/a", "*", "//", "/%2e", "/."):
        add("Path Alt.", path, path=path)

    def add_host_fn(strategy: str, label: str, fn, **overrides) -> None:
        strategies.setdefault(strategy, []).append(
            _http(
                strategy,
                label,
                lambda domain, _fn=fn, _o=dict(overrides): HTTPRequest(
                    host=_fn(domain), **_o
                ).build(),
            )
        )

    # Hostname Alt: omit / empty / reversed / doubled / trailing dot.
    strategies.setdefault("Hostname Alt.", []).append(
        _http(
            "Hostname Alt.",
            "<omitted>",
            lambda domain: HTTPRequest(
                host=domain, include_host_header=False
            ).build(),
        )
    )
    add_host_fn("Hostname Alt.", "<empty>", lambda d: "")
    add_host_fn("Hostname Alt.", "reversed", lambda d: d[::-1])
    add_host_fn("Hostname Alt.", "doubled", lambda d: d + d)
    add_host_fn("Hostname Alt.", "trailing-dot", lambda d: d + ".")

    for tld in ALT_TLDS:
        add_host_fn("Hostname TLD Alt.", tld, lambda d, _t=tld: swap_tld(d, _t))
    for sub in ALT_SUBDOMAINS:
        add_host_fn(
            "Host. Subdomain Alt.", sub, lambda d, _s=sub: swap_subdomain(d, _s)
        )
    for label, lead, trail in pad_variants():
        add_host_fn(
            "Hostname Pad.",
            label,
            lambda d, _l=lead, _t=trail: f"{_l}{d}{_t}",
        )

    # Header Alt: 59 additional headers.
    header_pool = [
        ("Connection", "keep-alive"),
        ("Connection", "close"),
        ("User-Agent", "xxx"),
        ("User-Agent", "curl/7.88.1"),
        ("Accept", "*/*"),
        ("Accept", "text/html"),
        ("Accept-Encoding", "gzip, deflate"),
        ("Accept-Language", "en-US"),
        ("Cache-Control", "no-cache"),
        ("Pragma", "no-cache"),
        ("Referer", "https://www.example.com/"),
        ("Origin", "https://www.example.com"),
        ("Cookie", "session=deadbeef"),
        ("DNT", "1"),
        ("Upgrade-Insecure-Requests", "1"),
        ("X-Forwarded-For", "127.0.0.1"),
        ("X-Requested-With", "XMLHttpRequest"),
        ("Range", "bytes=0-1023"),
        ("If-Modified-Since", "Mon, 01 Jan 2024 00:00:00 GMT"),
        ("TE", "trailers"),
    ]
    extra = [(f"X-Fuzz-{i}", f"value{i}") for i in range(39)]
    from ...netmodel.http import RawHeader

    for name, value in header_pool + extra:
        strategies.setdefault("Header Alt.", []).append(
            _http(
                "Header Alt.",
                f"{name}: {value}"[:40],
                lambda domain, _n=name, _v=value: HTTPRequest(
                    host=domain, extra_headers=[RawHeader(_n, _v)]
                ).build(),
            )
        )

    # Capitalize ------------------------------------------------------------
    for variant in _case_variants("GET", 8):
        add("Get Word Cap.", variant, method=variant)
    http_cap = [f"{v}/1.1" for v in _case_variants("HTTP", 16)]
    for variant in http_cap:
        add("Http Word Cap.", variant, http_word=variant)
    for variant in _case_variants("Host", 16):
        add("Host Word Cap.", variant, host_word=variant)

    # Remove ----------------------------------------------------------------
    for variant in _removal_variants("GET", 7):
        add("Get Word Rem.", variant or "<empty>", method=variant)
    # Removing different character positions can produce the same
    # string (dropping either 'T' of "HTTP" yields "HTP"); permutations
    # stay position-based per Table 2, labels get disambiguated.
    seen_labels: Dict[str, int] = {}
    for variant in _removal_variants("HTTP/1.1", 167):
        label = variant or "<empty>"
        count = seen_labels.get(label, 0)
        seen_labels[label] = count + 1
        if count:
            label = f"{label}~{count}"
        add("Http Word Rem.", label, http_word=variant)
    for variant in _removal_variants("Host: ", 63):
        # The removal operates on the full "Host: " token (word,
        # colon and space); reconstruct word + separator.
        if ":" in variant:
            word, _, sep_tail = variant.partition(":")
            separator = ":" + sep_tail
        else:
            word, separator = variant, ""
        add(
            "Host Word Rem.",
            variant.replace(" ", "_") or "<empty>",
            host_word=word,
            host_separator=separator,
        )
    for delimiter, label in (("\r", "CR"), ("\n", "LF"), ("", "<none>")):
        add("Http Delimiter Rem.", label, line_delimiter=delimiter)

    return strategies


# ---------------------------------------------------------------------------
# TLS strategies
# ---------------------------------------------------------------------------

_TLS_VERSIONS = (
    ("TLS 1.0", VERSION_TLS10),
    ("TLS 1.1", VERSION_TLS11),
    ("TLS 1.2", VERSION_TLS12),
    ("TLS 1.3", VERSION_TLS13),
)


def tls_strategies() -> Dict[str, List[Permutation]]:
    """The 8 TLS ClientHello strategies, keyed by display name."""
    strategies: Dict[str, List[Permutation]] = {}

    def add(strategy: str, label: str, build) -> None:
        strategies.setdefault(strategy, []).append(_tls(strategy, label, build))

    for label, version in _TLS_VERSIONS:
        add(
            "Min Version Alt.",
            label,
            lambda domain, _v=version: ClientHello(
                server_name=domain, min_version=_v, max_version=max(_v, VERSION_TLS13)
            ).build(),
        )
        add(
            "Max Version Alt.",
            label,
            lambda domain, _v=version: ClientHello(
                server_name=domain, min_version=min(VERSION_TLS10, _v), max_version=_v
            ).build(),
        )

    for cipher in list(CIPHER_SUITES)[:25]:
        add(
            "CipherSuite Alt.",
            cipher,
            lambda domain, _c=cipher: ClientHello(
                server_name=domain, cipher_suites=[_c]
            ).build(),
        )

    for label, own in (("none", None), ("own-domain", True), ("other-domain", False)):
        add(
            "Client Certificate Alt.",
            label,
            lambda domain, _own=own: ClientHello(
                server_name=domain,
                offers_client_certificate=_own is not None,
                client_certificate_cn=(
                    None if _own is None else (domain if _own else "www.test.com")
                ),
            ).build(),
        )

    add(
        "SNI Alt.",
        "<omitted>",
        lambda domain: ClientHello(server_name=domain, include_sni=False).build(),
    )
    add(
        "SNI Alt.",
        "<empty>",
        lambda domain: ClientHello(server_name="").build(),
    )
    add(
        "SNI Alt.",
        "reversed",
        lambda domain: ClientHello(server_name=domain[::-1]).build(),
    )
    add(
        "SNI Alt.",
        "doubled",
        lambda domain: ClientHello(server_name=domain + domain).build(),
    )

    for tld in ALT_TLDS:
        add(
            "SNI TLD Alt.",
            tld,
            lambda domain, _t=tld: ClientHello(
                server_name=swap_tld(domain, _t)
            ).build(),
        )
    for sub in ALT_SUBDOMAINS:
        add(
            "SNI Subdomain Alt.",
            sub,
            lambda domain, _s=sub: ClientHello(
                server_name=swap_subdomain(domain, _s)
            ).build(),
        )
    for label, lead, trail in pad_variants():
        add(
            "SNI Pad.",
            label,
            lambda domain, _l=lead, _t=trail: ClientHello(
                server_name=f"{_l}{domain}{_t}"
            ).build(),
        )

    return strategies


def normal_permutation(protocol: str) -> Permutation:
    """The unfuzzed baseline probe."""
    if protocol == PROTO_HTTP:
        return _http(
            STRATEGY_NORMAL, "normal", lambda domain: HTTPRequest.normal(domain).build()
        )
    return _tls(
        STRATEGY_NORMAL, "normal", lambda domain: ClientHello.normal(domain).build()
    )


def all_strategies() -> Dict[str, List[Permutation]]:
    """Every strategy (HTTP + TLS), keyed by display name."""
    combined = dict(http_strategies())
    combined.update(tls_strategies())
    return combined


def strategy_catalog() -> List[tuple]:
    """(category, strategy, protocol, permutation count) rows (Table 2)."""
    categories = {
        "Get Word Alt.": "Alternate",
        "Http Word Alt.": "Alternate",
        "Host Word Alt.": "Alternate",
        "Path Alt.": "Alternate",
        "Hostname Alt.": "Alternate",
        "Hostname TLD Alt.": "Alternate",
        "Host. Subdomain Alt.": "Alternate",
        "Header Alt.": "Alternate",
        "Get Word Cap.": "Capitalize",
        "Http Word Cap.": "Capitalize",
        "Host Word Cap.": "Capitalize",
        "Get Word Rem.": "Remove",
        "Http Word Rem.": "Remove",
        "Host Word Rem.": "Remove",
        "Http Delimiter Rem.": "Remove",
        "Hostname Pad.": "Pad",
        "Min Version Alt.": "Alternate",
        "Max Version Alt.": "Alternate",
        "CipherSuite Alt.": "Alternate",
        "Client Certificate Alt.": "Alternate",
        "SNI Alt.": "Alternate",
        "SNI TLD Alt.": "Alternate",
        "SNI Subdomain Alt.": "Alternate",
        "SNI Pad.": "Pad",
    }
    rows = []
    for name, permutations in all_strategies().items():
        rows.append(
            (
                categories.get(name, "Alternate"),
                name,
                permutations[0].protocol,
                len(permutations),
            )
        )
    return rows
