"""DNS query fuzzing against injectors (the §8 extension's CenFuzz).

Strategies probe the classic DNS-injector blind spots:

* **0x20 encoding** — mixed-case qnames (case-sensitive matchers miss
  them; resolvers answer case-insensitively);
* **qtype alternation** — AAAA/TXT queries (many injectors only watch
  A queries);
* **qname dressing** — trailing dot, prepended label.

Evasion is judged with a *TTL oracle*: the fuzzed query is sent with a
TTL too small to reach the resolver, so any answer that comes back must
have been forged by an on-path injector. No answer at oracle TTL means
the mutation evaded the injector's matcher — re-sending at full TTL
then shows whether the real resolver still understands the query
(the circumvention half).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ...netmodel.dns import DNSMessage, QTYPE_A, QTYPE_AAAA, QTYPE_TXT, query
from ...netmodel.packet import udp_packet
from ...netsim.simulator import Simulator
from ...netsim.tcpstack import next_ephemeral_port
from ...netsim.topology import Client


@dataclass(frozen=True)
class DNSPermutation:
    """One fuzzed DNS query variant."""

    strategy: str
    label: str
    build: Callable[[str, int], bytes]  # (domain, txid) -> payload


def _mixed_case(domain: str, pattern: int) -> str:
    out = []
    bit = 0
    for char in domain:
        if char.isalpha():
            out.append(char.upper() if (pattern >> (bit % 16)) & 1 else char.lower())
            bit += 1
        else:
            out.append(char)
    return "".join(out)


def dns_strategies() -> Dict[str, List[DNSPermutation]]:
    """The DNS fuzzing strategy catalog."""
    strategies: Dict[str, List[DNSPermutation]] = {}

    def add(strategy: str, label: str, build) -> None:
        strategies.setdefault(strategy, []).append(
            DNSPermutation(strategy, label, build)
        )

    for pattern in (0b101010101, 0b110011001, 0b111000111, 0b1):
        add(
            "Qname 0x20 Enc.",
            f"pattern{pattern:03x}",
            lambda d, txid, _p=pattern: query(
                _mixed_case(d, _p), txid=txid
            ).to_bytes(),
        )
    for qtype, label in ((QTYPE_AAAA, "AAAA"), (QTYPE_TXT, "TXT")):
        add(
            "Qtype Alt.",
            label,
            lambda d, txid, _q=qtype: query(d, txid=txid, qtype=_q).to_bytes(),
        )
    add(
        "Qname Dress.",
        "trailing-dot",
        lambda d, txid: query(d + ".", txid=txid).to_bytes(),
    )
    add(
        "Qname Dress.",
        "prepended-label",
        lambda d, txid: query("x7f." + d, txid=txid).to_bytes(),
    )
    return strategies


@dataclass
class DNSPermutationResult:
    strategy: str
    label: str
    injected_at_oracle: bool  # forged answer still appeared
    resolver_answered: bool  # the real resolver handled the mutation
    successful: bool  # evaded the injector
    circumvented: bool  # evaded AND resolved


@dataclass
class DNSFuzzReport:
    endpoint_ip: str
    test_domain: str
    oracle_ttl: int
    normal_injected: bool = False
    results: List[DNSPermutationResult] = field(default_factory=list)

    def success_by_strategy(self) -> Dict[str, tuple]:
        counts: Dict[str, List[int]] = {}
        for result in self.results:
            entry = counts.setdefault(result.strategy, [0, 0])
            entry[1] += 1
            if result.successful:
                entry[0] += 1
        return {k: (v[0], v[1]) for k, v in counts.items()}


class DNSFuzzer:
    """Runs the DNS strategy catalog against one resolver's path."""

    def __init__(self, sim: Simulator, client: Client) -> None:
        self.sim = sim
        self.client = client
        self._strategies = dns_strategies()

    def _send(self, endpoint_ip: str, payload: bytes, ttl: int) -> List:
        net = self.sim.net_context
        sport = next_ephemeral_port(net)
        packet = udp_packet(
            self.client.ip,
            endpoint_ip,
            sport,
            53,
            payload=payload,
            ttl=ttl,
            net=net,
        )
        received = self.sim.send_from_client(packet)
        self.sim.advance(3.0)
        return [p for p in received if p.is_udp]

    def estimate_oracle_ttl(self, endpoint_ip: str, control_domain: str) -> int:
        """The largest TTL at which the resolver cannot answer.

        Walks the control domain up from TTL 1 until the resolver's
        answer appears; the oracle is one hop short of that.
        """
        for ttl in range(1, 32):
            answers = self._send(
                endpoint_ip, query(control_domain, txid=ttl).to_bytes(), ttl
            )
            if answers:
                return max(1, ttl - 1)
        raise RuntimeError(f"resolver {endpoint_ip} never answered")

    def run_endpoint(
        self,
        endpoint_ip: str,
        test_domain: str,
        control_domain: str = "www.example.com",
        oracle_ttl: Optional[int] = None,
    ) -> DNSFuzzReport:
        if oracle_ttl is None:
            oracle_ttl = self.estimate_oracle_ttl(endpoint_ip, control_domain)
        report = DNSFuzzReport(
            endpoint_ip=endpoint_ip,
            test_domain=test_domain,
            oracle_ttl=oracle_ttl,
        )
        normal = query(test_domain, txid=0x5151).to_bytes()
        report.normal_injected = bool(
            self._send(endpoint_ip, normal, oracle_ttl)
        )
        if not report.normal_injected:
            return report  # nothing injects here; nothing to fuzz
        txid = 0x6000
        for strategy, permutations in sorted(self._strategies.items()):
            for permutation in permutations:
                txid += 1
                payload = permutation.build(test_domain, txid)
                injected = bool(self._send(endpoint_ip, payload, oracle_ttl))
                resolver_answers = [
                    p
                    for p in self._send(endpoint_ip, payload, 64)
                    if p.ip.src == endpoint_ip or not injected
                ]
                resolved = False
                for answer in resolver_answers:
                    try:
                        message = DNSMessage.from_bytes(answer.udp.payload)
                    except ValueError:
                        continue
                    if message.is_response and (
                        message.answers or message.rcode == 0
                    ):
                        resolved = True
                report.results.append(
                    DNSPermutationResult(
                        strategy=permutation.strategy,
                        label=permutation.label,
                        injected_at_oracle=injected,
                        resolver_answered=resolved,
                        successful=not injected,
                        circumvented=not injected and resolved,
                    )
                )
        return report
