"""CenFuzz: deterministic HTTP/TLS request fuzzing (paper §6)."""

from .dns_fuzz import (
    DNSFuzzer,
    DNSFuzzReport,
    DNSPermutation,
    DNSPermutationResult,
    dns_strategies,
)
from .runner import (
    BLOCKED_OUTCOMES,
    CenFuzz,
    CenFuzzConfig,
    EndpointFuzzReport,
    FuzzProbeOutcome,
    PermutationResult,
)
from .strategies import (
    Permutation,
    PROTO_HTTP,
    PROTO_TLS,
    STRATEGY_NORMAL,
    all_strategies,
    http_strategies,
    normal_permutation,
    strategy_catalog,
    tls_strategies,
)

__all__ = [
    "DNSFuzzer",
    "DNSFuzzReport",
    "DNSPermutation",
    "DNSPermutationResult",
    "dns_strategies",
    "BLOCKED_OUTCOMES",
    "CenFuzz",
    "CenFuzzConfig",
    "EndpointFuzzReport",
    "FuzzProbeOutcome",
    "PermutationResult",
    "Permutation",
    "PROTO_HTTP",
    "PROTO_TLS",
    "STRATEGY_NORMAL",
    "all_strategies",
    "http_strategies",
    "normal_permutation",
    "strategy_catalog",
    "tls_strategies",
]
