"""CenFuzz measurement runner (§6.2).

For each endpoint and protocol CenFuzz:

1. sends the *Normal* (unfuzzed) request for the Test Domain and for
   the Control Domain;
2. for every strategy permutation, sends the fuzzed request for both
   domains;
3. labels a permutation **successful** (evasion) when the Normal Test
   request is blocked but neither the fuzzed Test request nor the
   fuzzed Control request is, and **not successful** when the fuzzed
   Test request is still blocked while the fuzzed Control request is
   fine;
4. additionally labels **circumvention** when the fuzzed request also
   elicited the intended resource from the endpoint (§6.1, §6.3).

Blocking is judged by the same conservative definition as CenTrace:
repeated packet drops, connection resets/failures, or known blockpages.
Pacing follows §6.2: 120 virtual seconds after a blocked measurement,
3 seconds otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ...netmodel import tcp as tcpmod
from ...netmodel.http import HTTPResponse
from ...netsim.simulator import Simulator
from ...netsim.tcpstack import open_connection
from ...netsim.topology import Client
from ...services.webserver import TLS_SERVED_MARKER
from ..blockpages import DEFAULT_MATCHER, BlockpageMatcher
from .strategies import (
    PROTO_HTTP,
    Permutation,
    all_strategies,
    normal_permutation,
)

OUTCOME_TIMEOUT = "timeout"
OUTCOME_RST = "rst"
OUTCOME_BLOCKPAGE = "blockpage"
OUTCOME_HANDSHAKE_FAILED = "handshake_failed"
OUTCOME_RESPONSE = "response"  # endpoint answered (any app response)
OUTCOME_FIN = "fin"

BLOCKED_OUTCOMES = frozenset(
    {OUTCOME_TIMEOUT, OUTCOME_RST, OUTCOME_BLOCKPAGE, OUTCOME_HANDSHAKE_FAILED}
)


@dataclass
class FuzzProbeOutcome:
    """What one fuzzed request observed."""

    outcome: str
    status_code: Optional[int] = None
    served_vhost: Optional[str] = None  # resource actually delivered
    reprobed: bool = False  # an ambiguous timeout was probed again

    @property
    def blocked(self) -> bool:
        return self.outcome in BLOCKED_OUTCOMES

    def served(self, domain: str) -> bool:
        """Did the endpoint deliver content for ``domain``?"""
        if self.served_vhost is None:
            return False
        return self.served_vhost.lower() == domain.lower()


@dataclass
class PermutationResult:
    """The evaluation of one permutation against one endpoint."""

    endpoint_ip: str
    test_domain: str
    strategy: str
    label: str
    protocol: str
    normal_blocked: bool
    test: FuzzProbeOutcome
    control: FuzzProbeOutcome
    successful: bool = False
    unsuccessful: bool = False
    circumvented: bool = False
    degraded: bool = False  # a re-probe disagreed with the first attempt


@dataclass
class EndpointFuzzReport:
    """All permutation results for one endpoint/protocol/domain."""

    endpoint_ip: str
    test_domain: str
    protocol: str
    normal_test: FuzzProbeOutcome = field(
        default_factory=lambda: FuzzProbeOutcome(OUTCOME_RESPONSE)
    )
    normal_control: FuzzProbeOutcome = field(
        default_factory=lambda: FuzzProbeOutcome(OUTCOME_RESPONSE)
    )
    results: List[PermutationResult] = field(default_factory=list)
    degraded: bool = False  # any permutation needed a tie-breaking re-probe

    @property
    def normal_blocked(self) -> bool:
        return self.normal_test.blocked and not self.normal_control.blocked

    def success_by_strategy(self) -> Dict[str, tuple]:
        """strategy -> (successful, evaluated) permutation counts."""
        counts: Dict[str, List[int]] = {}
        for result in self.results:
            entry = counts.setdefault(result.strategy, [0, 0])
            if result.successful or result.unsuccessful:
                entry[1] += 1
                if result.successful:
                    entry[0] += 1
        return {k: (v[0], v[1]) for k, v in counts.items()}


@dataclass
class CenFuzzConfig:
    """Tunables for a CenFuzz run."""

    probe_retries: int = 2
    wait_after_block: float = 120.0  # §6.2
    wait_normal: float = 3.0
    http_port: int = 80
    tls_port: int = 443


class CenFuzz:
    """Runs the deterministic fuzzing campaign from one client."""

    def __init__(
        self,
        sim: Simulator,
        client: Client,
        config: Optional[CenFuzzConfig] = None,
        matcher: Optional[BlockpageMatcher] = None,
    ) -> None:
        self.sim = sim
        self.client = client
        self.config = config or CenFuzzConfig()
        self.matcher = matcher or DEFAULT_MATCHER
        # Probe traffic rides the batched packet plane (scalar fallback
        # applies automatically for worlds it cannot fast-path).
        self.engine = sim.batch_engine()
        self._strategies = all_strategies()
        # Built payload per (permutation, domain): permutation builders
        # are deterministic and every endpoint re-sends the same fuzzed
        # request for the same domains. (strategy, label, protocol) is
        # unique across all permutations.
        self._payload_cache: Dict[tuple, bytes] = {}

    def _payload(self, permutation: Permutation, domain: str) -> bytes:
        key = (
            permutation.strategy,
            permutation.label,
            permutation.protocol,
            domain,
        )
        payload = self._payload_cache.get(key)
        if payload is None:
            payload = permutation.payload(domain)
            self._payload_cache[key] = payload
        return payload

    # -- single request -----------------------------------------------------

    def probe(
        self, endpoint_ip: str, permutation: Permutation, domain: str
    ) -> FuzzProbeOutcome:
        """Send one fuzzed request; classify what happened."""
        cfg = self.config
        tel = self.sim.telemetry
        if tel.enabled:
            tel.count("cenfuzz.probes")
        port = cfg.http_port if permutation.protocol == PROTO_HTTP else cfg.tls_port
        conn = open_connection(
            self.sim, self.client, endpoint_ip, port, engine=self.engine
        )
        if conn is None:
            self.sim.advance(cfg.wait_after_block)
            conn = open_connection(
                self.sim, self.client, endpoint_ip, port, engine=self.engine
            )
            if conn is None:
                if tel.enabled:
                    tel.count("cenfuzz.handshake_failures")
                    tel.count("cenfuzz.blocked_probes")
                return FuzzProbeOutcome(OUTCOME_HANDSHAKE_FAILED)
        payload = self._payload(permutation, domain)
        result = conn.send_payload(payload, retries=cfg.probe_retries)
        conn.close()
        outcome = self._classify(result.received)
        if tel.enabled and outcome.blocked:
            tel.count("cenfuzz.blocked_probes")
        self.sim.advance(
            cfg.wait_after_block if outcome.blocked else cfg.wait_normal
        )
        return outcome

    def _probe_confirmed(
        self,
        endpoint_ip: str,
        permutation: Permutation,
        domain: str,
        baseline: FuzzProbeOutcome,
    ) -> FuzzProbeOutcome:
        """Probe, re-probing ambiguous timeouts once before labeling.

        A timeout is *ambiguous* when the Normal baseline for the same
        domain did not time out: silence is then as likely packet loss
        as blocking. The tie-breaking probe's verdict wins; when the
        two attempts disagree, the outcome is marked ``reprobed`` so
        the permutation can be flagged degraded. (When the baseline
        itself timed out — e.g. a drop-device path — the timeout is
        expected and no extra probe is spent.)
        """
        outcome = self.probe(endpoint_ip, permutation, domain)
        if (
            outcome.outcome != OUTCOME_TIMEOUT
            or baseline.outcome == OUTCOME_TIMEOUT
        ):
            return outcome
        tel = self.sim.telemetry
        if tel.enabled:
            tel.count("cenfuzz.reprobes")
        confirm = self.probe(endpoint_ip, permutation, domain)
        confirm.reprobed = True
        return confirm

    def _classify(self, received) -> FuzzProbeOutcome:
        """Classify received packets in arrival order.

        Order matters: an on-path injector's RST races the endpoint's
        legitimate response, and because the device sits closer the
        RST arrives first — the client's connection dies before any
        content lands (§4.1's on-path behaviour). A payload that
        arrives first wins instead.
        """
        if not received:
            return FuzzProbeOutcome(OUTCOME_TIMEOUT)
        for packet in received:
            if not packet.is_tcp:
                continue
            if packet.tcp.payload:
                return self._classify_payload(received)
            if packet.tcp.flags & tcpmod.RST:
                return FuzzProbeOutcome(OUTCOME_RST)
        fin = [p for p in received if p.is_tcp and p.tcp.flags & tcpmod.FIN]
        if fin:
            return FuzzProbeOutcome(OUTCOME_FIN)
        return FuzzProbeOutcome(OUTCOME_TIMEOUT)

    def _classify_payload(self, received) -> FuzzProbeOutcome:
        payloads = [p for p in received if p.is_tcp and p.tcp.payload]
        body = payloads[0].tcp.payload
        if self.matcher.match_payload(body) is not None:
            return FuzzProbeOutcome(OUTCOME_BLOCKPAGE)
        # TLS: ServerHello followed by the served-vhost marker.
        served = None
        for packet in payloads:
            if packet.tcp.payload.startswith(TLS_SERVED_MARKER):
                marker = packet.tcp.payload[len(TLS_SERVED_MARKER) :]
                served = marker.split(b":")[0].decode("ascii", "replace")
        if served is not None:
            return FuzzProbeOutcome(OUTCOME_RESPONSE, served_vhost=served)
        response = HTTPResponse.parse(body)
        if response is not None:
            served_vhost = None
            if response.status_code == 200:
                # The page body names the vhost that served it.
                for line in response.body.splitlines():
                    if "<title>" in line:
                        served_vhost = (
                            line.split("<title>")[1].split("</title>")[0]
                        )
                        break
            return FuzzProbeOutcome(
                OUTCOME_RESPONSE,
                status_code=response.status_code,
                served_vhost=served_vhost,
            )
        return FuzzProbeOutcome(OUTCOME_RESPONSE)

    # -- full campaign -------------------------------------------------------

    def run_endpoint(
        self,
        endpoint_ip: str,
        test_domain: str,
        protocol: str,
        control_domain: str = "www.example.com",
        strategies: Optional[Sequence[str]] = None,
    ) -> EndpointFuzzReport:
        """Fuzz one endpoint with every permutation of ``protocol``."""
        report = EndpointFuzzReport(
            endpoint_ip=endpoint_ip, test_domain=test_domain, protocol=protocol
        )
        with self.sim.telemetry.span("cenfuzz.endpoint", sim=self.sim), \
                self.engine.batch("cenfuzz.endpoint"):
            normal = normal_permutation(protocol)
            report.normal_test = self.probe(endpoint_ip, normal, test_domain)
            report.normal_control = self.probe(
                endpoint_ip, normal, control_domain
            )
            for strategy, permutations in sorted(self._strategies.items()):
                if permutations[0].protocol != protocol:
                    continue
                if strategies is not None and strategy not in strategies:
                    continue
                for permutation in permutations:
                    report.results.append(
                        self._evaluate(
                            report,
                            permutation,
                            endpoint_ip,
                            test_domain,
                            control_domain,
                        )
                    )
        report.degraded = any(r.degraded for r in report.results)
        tel = self.sim.telemetry
        if tel.enabled:
            evasions = sum(1 for r in report.results if r.successful)
            tel.count("cenfuzz.endpoints")
            tel.count("cenfuzz.permutations", len(report.results))
            tel.count("cenfuzz.evasions", evasions)
            if report.degraded:
                tel.count("cenfuzz.degraded_endpoints")
            tel.event(
                "cenfuzz.endpoint",
                endpoint=endpoint_ip,
                domain=test_domain,
                protocol=protocol,
                normal_blocked=report.normal_blocked,
                permutations=len(report.results),
                evasions=evasions,
            )
        return report

    def _evaluate(
        self,
        report: EndpointFuzzReport,
        permutation: Permutation,
        endpoint_ip: str,
        test_domain: str,
        control_domain: str,
    ) -> PermutationResult:
        control = self._probe_confirmed(
            endpoint_ip, permutation, control_domain, report.normal_control
        )
        test = self._probe_confirmed(
            endpoint_ip, permutation, test_domain, report.normal_test
        )
        result = PermutationResult(
            endpoint_ip=endpoint_ip,
            test_domain=test_domain,
            strategy=permutation.strategy,
            label=permutation.label,
            protocol=permutation.protocol,
            normal_blocked=report.normal_blocked,
            test=test,
            control=control,
        )
        # Degraded: a tie-breaking re-probe overturned the original
        # timeout verdict, i.e. the first attempt was loss, not policy.
        result.degraded = (
            test.reprobed and test.outcome != OUTCOME_TIMEOUT
        ) or (control.reprobed and control.outcome != OUTCOME_TIMEOUT)
        if report.normal_blocked and not control.blocked:
            if test.blocked:
                result.unsuccessful = True
            else:
                result.successful = True
                result.circumvented = test.served(test_domain)
        return result
