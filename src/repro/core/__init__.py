"""The paper's primary contributions: CenTrace, CenFuzz, CenProbe and
the blockpage fingerprint corpus."""

from . import blockpages, cenfuzz, cenprobe, centrace, filtermap

__all__ = ["blockpages", "cenfuzz", "cenprobe", "centrace", "filtermap"]
