"""Hop-voting and attribution primitives shared by every localizer.

Extracted from ``classify.py`` so the localization layer
(``repro.localize``) can reuse the exact voting semantics CenTrace's
classifier applies — the layer DAG lets ``localize`` import ``core``
but not the other way around, so the shared seam lives here and
``classify.py`` stays a thin client of it. The golden campaign digests
pin these functions bit-for-bit: tie-breaking is dict-insertion order
(first observation wins), silence is the empty string in the vote and
``None`` to callers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...geo.asdb import ASDatabase
from .results import HopInfo, TraceSweep


def build_hop_distribution(sweeps: List[TraceSweep]) -> Dict[int, Dict[str, int]]:
    """TTL -> {hop ip (or "" for silence): count} over all repetitions."""
    distribution: Dict[int, Dict[str, int]] = {}
    for sweep in sweeps:
        for ttl, ip in sweep.hop_ips().items():
            bucket = distribution.setdefault(ttl, {})
            key = ip if ip is not None else ""
            bucket[key] = bucket.get(key, 0) + 1
    return distribution


def most_likely_hop(
    distribution: Dict[int, Dict[str, int]], ttl: int
) -> Optional[str]:
    """The most frequently observed hop IP at ``ttl`` (None = silence)."""
    bucket = distribution.get(ttl)
    if not bucket:
        return None
    ip = max(bucket, key=bucket.get)
    return ip or None


def attribute_hop(
    ip: Optional[str], ttl: int, asdb: Optional[ASDatabase]
) -> HopInfo:
    """Wrap a hop IP in a :class:`HopInfo`, AS-attributed when possible."""
    hop = HopInfo(ttl=ttl, ip=ip)
    if ip and asdb is not None:
        meta = asdb.lookup(ip)
        if meta is not None:
            hop.asn = meta.asn
            hop.as_name = meta.as_name
            hop.country = meta.country
    return hop
