"""Tracebox-style localization of header-modifying middleboxes (§4.1).

"Following the insights from Tracebox, we utilize changes in quoted
packet in the ICMP error response to identify at which hops the probe
packet is altered."

A CenTrace sweep already collects one quoted packet per responding hop;
walking those quotes in hop order pinpoints the link on which each IP
header field (TOS/DSCP, flags, ...) was rewritten — middlebox
interference that is *not* censorship but matters for attributing the
quote-delta clustering features to the right box.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...netmodel.icmp import QuoteDelta, compare_quote
from .results import TraceSweep


@dataclass
class HopQuote:
    """The quoted-packet delta observed at one hop."""

    ttl: int
    hop_ip: Optional[str]
    delta: QuoteDelta


@dataclass
class ModificationEvent:
    """One header modification localized to a link.

    The field changed somewhere after ``before_ttl``'s hop and at or
    before ``at_ttl``'s hop (exactly Tracebox's granularity: the
    modifying box sits on that link or inside the silent region
    between the two quoting hops).
    """

    fieldname: str
    at_ttl: int
    at_hop: Optional[str]
    before_ttl: Optional[int]
    before_hop: Optional[str]

    def describe(self) -> str:
        left = f"hop {self.before_ttl} ({self.before_hop})" if self.before_ttl else "the client"
        return (
            f"{self.fieldname} modified between {left} and hop"
            f" {self.at_ttl} ({self.at_hop})"
        )


# The IP-header fields Tracebox-style comparison tracks.
_FIELD_EXTRACTORS = (
    ("ip_tos", lambda delta: delta.tos_changed),
    ("ip_flags", lambda delta: delta.ip_flags_changed),
    ("ip_identification", lambda delta: delta.identification_changed),
    ("payload", lambda delta: delta.payload_modified),
)


def hop_quotes(sweep: TraceSweep) -> List[HopQuote]:
    """Per-hop quote deltas for one sweep, in hop order."""
    quotes: List[HopQuote] = []
    for probe in sweep.probes:
        if not probe.sent_bytes:
            continue
        for response in probe.icmp_responses():
            if not response.quote:
                continue
            quotes.append(
                HopQuote(
                    ttl=probe.ttl,
                    hop_ip=response.src_ip,
                    delta=compare_quote(
                        probe.sent_bytes, response.quote, sent_ttl=probe.ttl
                    ),
                )
            )
            break
    return quotes


def locate_modifications(sweep: TraceSweep) -> List[ModificationEvent]:
    """Walk a sweep's quotes and localize each header modification.

    A field that is unmodified in hop k's quote but modified in hop
    k+1's quote was rewritten on the link between them.
    """
    quotes = hop_quotes(sweep)
    events: List[ModificationEvent] = []
    previous: Dict[str, Tuple[Optional[int], Optional[str]]] = {
        name: (None, None) for name, _ in _FIELD_EXTRACTORS
    }
    reported = set()
    last_clean: Dict[str, Tuple[Optional[int], Optional[str]]] = {
        name: (None, None) for name, _ in _FIELD_EXTRACTORS
    }
    for quote in quotes:
        for name, extractor in _FIELD_EXTRACTORS:
            if extractor(quote.delta):
                if name not in reported:
                    before_ttl, before_hop = last_clean[name]
                    events.append(
                        ModificationEvent(
                            fieldname=name,
                            at_ttl=quote.ttl,
                            at_hop=quote.hop_ip,
                            before_ttl=before_ttl,
                            before_hop=before_hop,
                        )
                    )
                    reported.add(name)
            else:
                last_clean[name] = (quote.ttl, quote.hop_ip)
    return events


def locate_modifications_aggregated(
    sweeps: Sequence[TraceSweep],
) -> List[ModificationEvent]:
    """Localize modifications using all repetitions, majority-voted.

    Each sweep may follow a slightly different ECMP path; an event is
    kept when it appears (same field, same at-hop) in at least half of
    the sweeps that produced quotes.
    """
    votes: Dict[Tuple[str, Optional[str]], List[ModificationEvent]] = {}
    usable = 0
    for sweep in sweeps:
        events = locate_modifications(sweep)
        if hop_quotes(sweep):
            usable += 1
        for event in events:
            votes.setdefault((event.fieldname, event.at_hop), []).append(event)
    threshold = max(1, usable // 2)
    aggregated = []
    for (fieldname, at_hop), instances in votes.items():
        if len(instances) >= threshold:
            aggregated.append(instances[0])
    aggregated.sort(key=lambda e: e.at_ttl)
    return aggregated
