"""CenTrace data model: probes, sweeps, and classified results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...netmodel.icmp import QuoteDelta

# Terminating-response / blocking types (Figure 3's x-axis).
TYPE_RST = "RST"
TYPE_TIMEOUT = "TIMEOUT"
TYPE_FIN = "FIN"
TYPE_HTTP = "HTTP"  # injected blockpage
TYPE_DNSINJECT = "DNSINJECT"  # forged DNS answer (the §8 extension)
TYPE_NORMAL = "NORMAL"  # endpoint answered normally (not blocked)

BLOCK_TYPES = (TYPE_RST, TYPE_TIMEOUT, TYPE_FIN, TYPE_HTTP, TYPE_DNSINJECT)

# Blocking-hop location classes (Figure 3's legend).
LOC_PATH = "Path(C->E)"
LOC_AT_E = "At E"
LOC_NO_ICMP = "No ICMP"
LOC_PAST_E = "Past E"

LOCATION_CLASSES = (LOC_PATH, LOC_AT_E, LOC_NO_ICMP, LOC_PAST_E)

PROTO_HTTP = "http"
PROTO_TLS = "tls"
PROTO_DNS = "dns"


@dataclass
class ResponseSummary:
    """One packet received in reaction to a probe."""

    kind: str  # "icmp" | "tcp" | "udp"
    src_ip: str
    arrival_ttl: int
    tcp_flags: int = 0
    payload: bytes = b""
    quote: bytes = b""  # ICMP only: the quoted packet
    ip_id: int = 0
    ip_tos: int = 0
    ip_flags: int = 0
    tcp_window: int = 0
    tcp_options: Tuple[int, ...] = ()

    @property
    def is_icmp_ttl_exceeded(self) -> bool:
        return self.kind == "icmp"


@dataclass
class ProbeObservation:
    """Everything observed for one TTL-limited probe."""

    ttl: int
    sent_bytes: bytes = b""
    responses: List[ResponseSummary] = field(default_factory=list)
    handshake_failed: bool = False
    retries_used: int = 0  # retransmissions needed before a response

    @property
    def timed_out(self) -> bool:
        return not self.responses and not self.handshake_failed

    def icmp_responses(self) -> List[ResponseSummary]:
        return [r for r in self.responses if r.kind == "icmp"]

    def tcp_responses(self) -> List[ResponseSummary]:
        return [r for r in self.responses if r.kind == "tcp"]


@dataclass
class TraceSweep:
    """One full TTL sweep (one repetition, one domain)."""

    domain: str
    protocol: str
    probes: List[ProbeObservation] = field(default_factory=list)
    terminating_ttl: Optional[int] = None
    terminating_type: str = TYPE_NORMAL
    terminating_response: Optional[ResponseSummary] = None
    # Degradation counters (filled by CenTrace._finalize_sweep): how
    # noisy the sweep was, so analysis can weight its contribution.
    probes_retried: int = 0
    hops_rate_limited: int = 0
    degraded: bool = False

    def hop_ips(self) -> Dict[int, Optional[str]]:
        """TTL -> the ICMP-responding hop IP (None on silence)."""
        hops: Dict[int, Optional[str]] = {}
        for probe in self.probes:
            icmp = probe.icmp_responses()
            hops[probe.ttl] = icmp[0].src_ip if icmp else None
        return hops


@dataclass
class HopInfo:
    """An attributed hop on the path."""

    ttl: int
    ip: Optional[str]
    asn: Optional[int] = None
    as_name: Optional[str] = None
    country: Optional[str] = None


@dataclass
class CenTraceResult:
    """The classified outcome of one CenTrace measurement.

    One result covers one (endpoint, test domain, protocol) triple,
    aggregated over all repetitions of the Control- and Test-Domain
    sweeps (§4.1).
    """

    endpoint_ip: str
    endpoint_asn: Optional[int]
    test_domain: str
    protocol: str
    blocked: bool = False
    valid: bool = True  # False when the control trace itself misbehaved
    degraded: bool = False  # any sweep needed retries / saw silent hops
    blocking_type: str = TYPE_NORMAL
    terminating_ttl: Optional[int] = None
    endpoint_distance: Optional[int] = None  # hops to the endpoint
    blocking_hop: Optional[HopInfo] = None
    location_class: Optional[str] = None
    in_path: Optional[bool] = None  # None when not blocked / undeterminable
    hops_from_endpoint: Optional[int] = None
    ttl_copy_detected: bool = False
    corrected_device_distance: Optional[int] = None
    # Features for clustering (§7.1, Table 3).
    injected_ip_id: Optional[int] = None
    injected_ip_tos: Optional[int] = None
    injected_ip_flags: Optional[int] = None
    injected_ttl: Optional[int] = None
    injected_initial_ttl: Optional[int] = None
    injected_tcp_flags: Optional[int] = None
    injected_tcp_window: Optional[int] = None
    injected_tcp_options: Tuple[int, ...] = ()
    blockpage_fingerprint: Optional[str] = None
    quote_delta: Optional[QuoteDelta] = None
    control_hops: Dict[int, Dict[str, int]] = field(default_factory=dict)
    sweeps_control: List[TraceSweep] = field(default_factory=list)
    sweeps_test: List[TraceSweep] = field(default_factory=list)

    def control_path(self) -> List[HopInfo]:
        """The most likely control path as attributed hops."""
        hops = []
        for ttl in sorted(self.control_hops):
            counts = self.control_hops[ttl]
            ip = max(counts, key=counts.get) if counts else None
            hops.append(HopInfo(ttl=ttl, ip=None if ip == "" else ip))
        return hops

    def brief(self) -> str:
        status = self.blocking_type if self.blocked else "ok"
        hop = self.blocking_hop.ip if self.blocking_hop else "-"
        return (
            f"{self.test_domain} {self.protocol} -> {self.endpoint_ip}:"
            f" {status} hop={hop} loc={self.location_class}"
        )


def infer_initial_ttl(arrival_ttl: int) -> int:
    """Guess the sender's initial TTL from the arrival TTL.

    Stacks start at 32, 64, 128 or 255; the nearest ceiling is the
    standard inference (Vanaubel et al., "TTL-based router signatures").
    """
    for initial in (32, 64, 128, 255):
        if arrival_ttl <= initial:
            return initial
    return 255
