"""Measuring residual censorship (the stateful behaviour of §4.1).

CenTrace and CenFuzz both pace probes 120 seconds apart because "some
stateful censorship devices track packets across the same flow, and
react differently once the state has been changed" — the Quack-style
residual censorship where one trigger poisons the (client, server[,
port]) tuple for a while.

:class:`ResidualProbe` measures that behaviour directly:

1. trigger the device once with the censored domain;
2. immediately re-probe with the *control* domain — if that is now
   interfered with, the device is stateful;
3. binary-search the punishment duration by re-triggering and waiting
   increasing intervals until the control domain works again;
4. check whether a different destination port is also punished
   (3-tuple vs host-pair scope).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ...netmodel import tcp as tcpmod
from ...netmodel.http import HTTPRequest
from ...netsim.simulator import Simulator
from ...netsim.tcpstack import open_connection
from ...netsim.topology import Client

SCOPE_NONE = "stateless"
SCOPE_3TUPLE = "3-tuple"
SCOPE_HOSTS = "host-pair"


@dataclass
class ResidualMeasurement:
    """What the probe learned about one device's state tracking."""

    endpoint_ip: str
    test_domain: str
    stateful: bool = False
    scope: str = SCOPE_NONE
    duration_bounds: Optional[tuple] = None  # (low, high) seconds
    probes_used: int = 0

    def summary(self) -> str:
        if not self.stateful:
            return "stateless: control traffic unaffected after a trigger"
        low, high = self.duration_bounds or (None, None)
        return (
            f"stateful ({self.scope}); punishment lasts between"
            f" {low:.0f}s and {high:.0f}s"
        )


class ResidualProbe:
    """Measures residual censorship against one endpoint's path."""

    def __init__(
        self,
        sim: Simulator,
        client: Client,
        *,
        control_domain: str = "www.example.com",
        max_duration: float = 600.0,
    ) -> None:
        self.sim = sim
        self.client = client
        self.control_domain = control_domain
        self.max_duration = max_duration
        self.probes_used = 0

    # -- primitives ---------------------------------------------------------

    def _request_ok(self, endpoint_ip: str, domain: str, port: int = 80) -> bool:
        """True when a request for ``domain`` gets application data back."""
        self.probes_used += 1
        conn = open_connection(self.sim, self.client, endpoint_ip, port, retries=1)
        if conn is None:
            return False
        result = conn.send_payload(HTTPRequest.normal(domain).build(), retries=1)
        conn.close()
        for packet in result.received:
            if packet.is_tcp and packet.tcp.flags & tcpmod.RST:
                return False
            if packet.is_tcp and packet.tcp.payload:
                return True
        return False

    def _trigger(self, endpoint_ip: str, domain: str) -> None:
        self.probes_used += 1
        conn = open_connection(self.sim, self.client, endpoint_ip, 80, retries=1)
        if conn is not None:
            conn.send_payload(HTTPRequest.normal(domain).build())
            conn.close()

    # -- measurement -----------------------------------------------------------

    def measure(self, endpoint_ip: str, test_domain: str) -> ResidualMeasurement:
        measurement = ResidualMeasurement(
            endpoint_ip=endpoint_ip, test_domain=test_domain
        )
        # Settle any prior state, verify the control baseline.
        self.sim.advance(self.max_duration)
        if not self._request_ok(endpoint_ip, self.control_domain):
            measurement.scope = "control-unreachable"
            measurement.probes_used = self.probes_used
            return measurement

        # 1-2: trigger, then immediately try the control domain.
        self._trigger(endpoint_ip, test_domain)
        self.sim.advance(0.5)
        if self._request_ok(endpoint_ip, self.control_domain):
            measurement.probes_used = self.probes_used
            return measurement  # stateless
        measurement.stateful = True

        # 3: bracket the punishment duration by doubling waits.
        low, high = 0.5, None
        wait = 4.0
        while wait <= self.max_duration:
            self.sim.advance(self.max_duration)  # clean slate
            self._trigger(endpoint_ip, test_domain)
            self.sim.advance(wait)
            if self._request_ok(endpoint_ip, self.control_domain):
                high = wait
                break
            low = wait
            wait *= 2
        if high is None:
            high = self.max_duration
        # Narrow with a few bisection steps.
        for _ in range(4):
            middle = (low + high) / 2
            self.sim.advance(self.max_duration)
            self._trigger(endpoint_ip, test_domain)
            self.sim.advance(middle)
            if self._request_ok(endpoint_ip, self.control_domain):
                high = middle
            else:
                low = middle
        measurement.duration_bounds = (low, high)

        # 4: scope — does a different destination port also suffer?
        self.sim.advance(self.max_duration)
        self._trigger(endpoint_ip, test_domain)
        self.sim.advance(0.5)
        other_port_ok = self._request_ok(endpoint_ip, self.control_domain, port=443)
        measurement.scope = SCOPE_3TUPLE if other_port_ok else SCOPE_HOSTS
        self.sim.advance(self.max_duration)
        measurement.probes_used = self.probes_used
        return measurement
