"""CenTrace: the censorship traceroute (§4).

For each (endpoint, test domain, protocol) CenTrace:

1. runs repeated Control-Domain TTL sweeps to map the path and its
   variance (each probe is a fresh TCP connection with a fresh source
   port, so ECMP may move hops around — §4.1);
2. runs repeated Test-Domain sweeps the same way;
3. classifies the terminating response of each sweep (TCP from the
   endpoint address, a timeout streak, or an injected blockpage) and
4. aggregates the repetitions into one :class:`CenTraceResult` with the
   blocking hop attributed via the Control-Domain path (see
   ``classify.py``).

Probe pacing follows the paper: 120 (virtual) seconds after any sign of
blocking — enough for residual censorship to expire — and a short pause
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Optional

from ...geo.asdb import ASDatabase
from ...netmodel import tcp as tcpmod
from ...netmodel.http import HTTPRequest
from ...netmodel.packet import Packet
from ...netmodel.tls import ClientHello
from ...netsim.simulator import Simulator
from ...netsim.tcpstack import open_connection
from ...netsim.topology import Client
from ..blockpages import DEFAULT_MATCHER, BlockpageMatcher
from .classify import classify_measurement
from .results import (
    PROTO_DNS,
    PROTO_HTTP,
    PROTO_TLS,
    ProbeObservation,
    ResponseSummary,
    TraceSweep,
    TYPE_FIN,
    TYPE_HTTP,
    TYPE_NORMAL,
    TYPE_RST,
    TYPE_TIMEOUT,
)


@dataclass
class CenTraceConfig:
    """Tunables for a CenTrace run.

    ``repetitions`` defaults to 3 for tractable simulation; the paper
    uses 11 (derived from its path-variance calibration, §4.1), which
    remains available for full-fidelity runs.
    """

    repetitions: int = 3
    max_ttl: int = 30
    probe_retries: int = 2  # paper: retry up to three times total
    retry_base_wait: float = 1.0  # virtual seconds before the first retry
    retry_backoff: float = 2.0  # exponential growth per further retry
    timeout_streak_stop: int = 4  # consecutive timeouts before giving up
    wait_after_block: float = 120.0  # §4.1 / §6.2
    wait_normal: float = 3.0
    http_port: int = 80
    tls_port: int = 443
    extra_probes_past_terminating: int = 2


@lru_cache(maxsize=1024)
def build_probe_payload(domain: str, protocol: str) -> bytes:
    """The application payload CenTrace sends: GET, ClientHello or a
    DNS query (the §8 DNS extension).

    Cached per (domain, protocol): every builder is deterministic (the
    ClientHello "random" is seeded from the SNI) and a campaign sweeps
    the same payload thousands of times across TTLs and repetitions.
    """
    if protocol == PROTO_HTTP:
        return HTTPRequest.normal(domain).build()
    if protocol == PROTO_TLS:
        return ClientHello.normal(domain).build()
    if protocol == PROTO_DNS:
        from ...netmodel.dns import query

        return query(domain).to_bytes()
    raise ValueError(f"unknown protocol: {protocol!r}")


def _summarize(packet: Packet) -> ResponseSummary:
    if packet.is_icmp:
        return ResponseSummary(
            kind="icmp",
            src_ip=packet.ip.src,
            arrival_ttl=packet.ip.ttl,
            quote=packet.icmp.quote,
        )
    if packet.is_udp:
        return ResponseSummary(
            kind="udp",
            src_ip=packet.ip.src,
            arrival_ttl=packet.ip.ttl,
            payload=packet.udp.payload,
            ip_id=packet.ip.identification,
            ip_tos=packet.ip.tos,
            ip_flags=packet.ip.flags,
        )
    segment = packet.tcp
    return ResponseSummary(
        kind="tcp",
        src_ip=packet.ip.src,
        arrival_ttl=packet.ip.ttl,
        tcp_flags=segment.flags,
        payload=segment.payload,
        ip_id=packet.ip.identification,
        ip_tos=packet.ip.tos,
        ip_flags=packet.ip.flags,
        tcp_window=segment.window,
        tcp_options=segment.option_kinds(),
    )


class CenTrace:
    """Runs censorship traceroutes from one client through a simulator."""

    def __init__(
        self,
        sim: Simulator,
        client: Client,
        asdb: Optional[ASDatabase] = None,
        config: Optional[CenTraceConfig] = None,
        blockpage_matcher: Optional[BlockpageMatcher] = None,
    ) -> None:
        self.sim = sim
        self.client = client
        self.asdb = asdb
        self.config = config or CenTraceConfig()
        self.matcher = blockpage_matcher or DEFAULT_MATCHER
        # All probe traffic goes through the batched packet plane; the
        # engine transparently falls back to the scalar walk for worlds
        # it cannot fast-path (fault plans, capture, devices mid-path).
        self.engine = sim.batch_engine()

    # -- public API -------------------------------------------------------

    def measure(
        self,
        endpoint_ip: str,
        test_domain: str,
        protocol: str = PROTO_HTTP,
        control_domain: str = "www.example.com",
    ):
        """One full CenTrace measurement: control + test sweeps, classified."""
        cfg = self.config
        control_sweeps = [
            self.sweep(endpoint_ip, control_domain, protocol)
            for _ in range(cfg.repetitions)
        ]
        test_sweeps = [
            self.sweep(endpoint_ip, test_domain, protocol)
            for _ in range(cfg.repetitions)
        ]
        result = classify_measurement(
            endpoint_ip=endpoint_ip,
            test_domain=test_domain,
            protocol=protocol,
            control_sweeps=control_sweeps,
            test_sweeps=test_sweeps,
            asdb=self.asdb,
            matcher=self.matcher,
        )
        tel = self.sim.telemetry
        if tel.enabled:
            tel.count("centrace.measurements")
            if result.blocked:
                tel.count("centrace.blocked")
                tel.event(
                    "centrace.blocked",
                    endpoint=endpoint_ip,
                    domain=test_domain,
                    protocol=protocol,
                    type=result.blocking_type,
                    ttl=result.terminating_ttl,
                )
            if result.degraded:
                tel.count("centrace.degraded_measurements")
        return result

    # -- sweeps -----------------------------------------------------------

    def sweep(self, endpoint_ip: str, domain: str, protocol: str) -> TraceSweep:
        """One TTL sweep: probe with TTL 1, 2, ... classifying as we go."""
        cfg = self.config
        if protocol == PROTO_HTTP:
            port = cfg.http_port
        elif protocol == PROTO_DNS:
            port = 53
        else:
            port = cfg.tls_port
        payload = build_probe_payload(domain, protocol)
        sweep = TraceSweep(domain=domain, protocol=protocol)
        timeout_streak = 0
        streak_start_ttl = 0
        past_terminating = 0
        with self.sim.telemetry.span("centrace.sweep", sim=self.sim), \
                self.engine.batch("centrace.sweep"):
            for ttl in range(1, cfg.max_ttl + 1):
                if protocol == PROTO_DNS:
                    probe = self._probe_dns(endpoint_ip, domain, ttl)
                else:
                    probe = self._probe(endpoint_ip, port, payload, ttl)
                sweep.probes.append(probe)
                # Pace the next probe: long wait whenever this one may
                # have tripped a stateful device.
                suspicious = (
                    probe.handshake_failed
                    or probe.timed_out
                    or any(
                        r.kind == "tcp" and (r.tcp_flags & tcpmod.RST)
                        for r in probe.responses
                    )
                    or self._has_terminating(probe, endpoint_ip)
                )
                self.sim.advance(
                    cfg.wait_after_block if suspicious else cfg.wait_normal
                )
                if probe.timed_out or probe.handshake_failed:
                    if timeout_streak == 0:
                        streak_start_ttl = ttl
                    timeout_streak += 1
                    # TTL-copying injectors (§4.3) only get a forged RST
                    # back to us once the probe TTL reaches ~2x the
                    # device distance, so a timeout streak starting at
                    # TTL s must be probed out to at least 2s+1 before
                    # concluding the device simply drops.
                    if (
                        timeout_streak >= cfg.timeout_streak_stop
                        and ttl >= 2 * streak_start_ttl + 1
                    ):
                        break
                    continue
                timeout_streak = 0
                terminating = self._terminating_response(probe, endpoint_ip)
                if terminating is not None and not probe.icmp_responses():
                    # "Only a terminating response" (§4.1): stop, with a
                    # couple of confirmation probes to detect TTL-copying
                    # injectors whose responses keep shifting.
                    past_terminating += 1
                    if past_terminating > cfg.extra_probes_past_terminating:
                        break
            self._finalize_sweep(sweep, endpoint_ip)
        return sweep

    def _probe(
        self, endpoint_ip: str, port: int, payload: bytes, ttl: int
    ) -> ProbeObservation:
        """One TTL-limited probe over a fresh TCP connection."""
        conn = open_connection(
            self.sim, self.client, endpoint_ip, port, engine=self.engine
        )
        if conn is None:
            # Likely residual censorship from the previous probe: wait
            # it out once and retry before recording a failure.
            self.sim.advance(self.config.wait_after_block)
            conn = open_connection(
                self.sim, self.client, endpoint_ip, port, engine=self.engine
            )
            if conn is None:
                return ProbeObservation(ttl=ttl, handshake_failed=True)
        result = conn.send_payload(
            payload,
            ttl=ttl,
            retries=self.config.probe_retries,
            retry_wait=self.config.retry_base_wait,
            retry_backoff=self.config.retry_backoff,
        )
        conn.close()
        observation = ProbeObservation(
            ttl=ttl,
            sent_bytes=result.sent_bytes,
            retries_used=result.retries_used,
        )
        observation.responses = [_summarize(p) for p in result.received]
        return observation

    def _probe_dns(
        self, endpoint_ip: str, domain: str, ttl: int
    ) -> ProbeObservation:
        """A TTL-limited UDP DNS query (no handshake; §8 extension).

        Each retry is a *new* query — fresh source port, fresh IP ID,
        fresh DNS transaction ID — paced by exponential backoff, the
        way a real resolver retransmits. Reusing the identical packet
        would make retries indistinguishable from the original on the
        wire and defeat loss modeling.
        """
        from ...netmodel.dns import query
        from ...netmodel.packet import udp_packet
        from ...netsim.tcpstack import next_ephemeral_port

        cfg = self.config
        received = []
        sent_bytes = b""
        retries_used = 0
        wait = cfg.retry_base_wait
        net = self.sim.net_context
        for attempt in range(cfg.probe_retries + 1):
            sport = next_ephemeral_port(net)
            payload = query(domain, txid=(sport * 7919) & 0xFFFF).to_bytes()
            packet = udp_packet(
                self.client.ip,
                endpoint_ip,
                sport,
                53,
                payload=payload,
                ttl=ttl,
                net=net,
            )
            sent_bytes = packet.to_bytes()
            retries_used = attempt
            received = self.engine.send(packet, wire_bytes=sent_bytes)
            if received:
                break
            if attempt < cfg.probe_retries and wait > 0:
                self.sim.advance(wait)
                wait *= cfg.retry_backoff
        observation = ProbeObservation(
            ttl=ttl, sent_bytes=sent_bytes, retries_used=retries_used
        )
        observation.responses = [_summarize(p) for p in received]
        return observation

    # -- terminating-response logic ----------------------------------------

    @staticmethod
    def _has_terminating(probe: ProbeObservation, endpoint_ip: str) -> bool:
        return any(
            r.kind in ("tcp", "udp") and r.src_ip == endpoint_ip
            for r in probe.responses
        )

    @staticmethod
    def _terminating_response(
        probe: ProbeObservation, endpoint_ip: str
    ) -> Optional[ResponseSummary]:
        """The endpoint-addressed transport response of this probe.

        Payload-carrying responses win over bare RST/FIN so blockpage
        injections are classified as HTTP, not as the FIN that follows.
        """
        udp = [
            r
            for r in probe.responses
            if r.kind == "udp" and r.src_ip == endpoint_ip
        ]
        if udp:
            return udp[0]
        tcp = [
            r
            for r in probe.responses
            if r.kind == "tcp" and r.src_ip == endpoint_ip
        ]
        if not tcp:
            return None
        with_payload = [r for r in tcp if r.payload]
        if with_payload:
            return with_payload[0]
        rst = [r for r in tcp if r.tcp_flags & tcpmod.RST]
        if rst:
            return rst[0]
        return tcp[0]

    def _finalize_sweep(self, sweep: TraceSweep, endpoint_ip: str) -> None:
        """Determine the sweep's terminating TTL and response type.

        A probe's response terminates the sweep when it is TCP traffic
        from the endpoint address. Timeouts terminate only when every
        subsequent probe also timed out (§4.1, "Accounting for packet
        drops").

        Also tallies the sweep's degradation counters: probes that
        needed retransmission, and silent hops strictly below the last
        responding TTL (ICMP-rate-limited or lossy routers mid-path).
        """
        sweep.probes_retried = sum(
            1 for probe in sweep.probes if probe.retries_used > 0
        )
        responding = [
            probe.ttl
            for probe in sweep.probes
            if not (probe.timed_out or probe.handshake_failed)
        ]
        last_responding = max(responding) if responding else 0
        sweep.hops_rate_limited = sum(
            1
            for probe in sweep.probes
            if (probe.timed_out or probe.handshake_failed)
            and probe.ttl < last_responding
        )
        sweep.degraded = bool(sweep.probes_retried or sweep.hops_rate_limited)
        tel = self.sim.telemetry
        if tel.enabled:
            tel.count("centrace.sweeps")
            tel.count("centrace.probes", len(sweep.probes))
            tel.count(
                "centrace.probe_retries",
                sum(probe.retries_used for probe in sweep.probes),
            )
            handshake_failures = sum(
                1 for probe in sweep.probes if probe.handshake_failed
            )
            if handshake_failures:
                tel.count("centrace.handshake_failures", handshake_failures)
            if sweep.hops_rate_limited:
                tel.count("centrace.hops_rate_limited", sweep.hops_rate_limited)
            if sweep.degraded:
                tel.count("centrace.degraded_sweeps")
        first_terminating: Optional[ProbeObservation] = None
        for probe in sweep.probes:
            if self._terminating_response(probe, endpoint_ip) is not None:
                first_terminating = probe
                break
        if first_terminating is not None:
            response = self._terminating_response(first_terminating, endpoint_ip)
            sweep.terminating_ttl = first_terminating.ttl
            sweep.terminating_response = response
            sweep.terminating_type = self._response_type(response)
            return
        # No endpoint traffic at all: find the trailing timeout streak.
        streak_start: Optional[int] = None
        for probe in sweep.probes:
            if probe.timed_out or probe.handshake_failed:
                if streak_start is None:
                    streak_start = probe.ttl
            else:
                streak_start = None
        if streak_start is not None:
            sweep.terminating_ttl = streak_start
            sweep.terminating_type = TYPE_TIMEOUT
        else:
            sweep.terminating_type = TYPE_NORMAL

    def _response_type(self, response: ResponseSummary) -> str:
        if response.kind == "udp":
            # A DNS answer is "normal" at the transport level; whether
            # it was injected is decided against the control distance
            # during classification (see classify.py).
            return TYPE_NORMAL
        if response.payload:
            if self.matcher.match_payload(response.payload) is not None:
                return TYPE_HTTP
            return TYPE_NORMAL
        if response.tcp_flags & tcpmod.RST:
            return TYPE_RST
        if response.tcp_flags & tcpmod.FIN:
            return TYPE_FIN
        return TYPE_NORMAL
