"""Classification of CenTrace sweeps into measurement results (§4.1).

Aggregates repeated Control/Test sweeps, decides whether blocking
occurred (conservatively: resets, repeated drops, or known blockpages),
attributes the blocking hop via the Control-Domain path distribution,
distinguishes in-path from on-path devices, corrects for TTL-copying
injectors, and extracts the clustering features of Table 3.

The hop-voting/attribution primitives this module historically owned
(``build_hop_distribution``, ``most_likely_hop``, ``_attribute``) now
live in :mod:`.attribution` so the localization layer can share them;
they are re-exported here so existing importers keep working.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Tuple

from ...geo.asdb import ASDatabase
from ...netmodel.icmp import compare_quote
from ..blockpages import BlockpageMatcher
from .attribution import (
    attribute_hop as _attribute,
    build_hop_distribution,
    most_likely_hop,
)
from .results import (
    BLOCK_TYPES,
    CenTraceResult,
    LOC_AT_E,
    LOC_NO_ICMP,
    LOC_PAST_E,
    LOC_PATH,
    PROTO_DNS,
    ProbeObservation,
    ResponseSummary,
    TraceSweep,
    TYPE_DNSINJECT,
    TYPE_HTTP,
    TYPE_NORMAL,
    TYPE_TIMEOUT,
    infer_initial_ttl,
)

# An injected response arriving with a TTL this low cannot plausibly
# have started from a standard initial TTL (32/64/128/255) on any
# realistic path; it indicates a TTL-copying injector (§4.3).
TTL_COPY_ARRIVAL_MAX = 4


def _majority(values) -> Optional[object]:
    counter = Counter(v for v in values if v is not None)
    if not counter:
        return None
    return counter.most_common(1)[0][0]


def _detect_ttl_copy(sweeps: List[TraceSweep]) -> Tuple[bool, Optional[int]]:
    """Detect TTL-copying injections; return (detected, corrected hop).

    The forged packet starts with the probe's remaining TTL after
    crossing k routers and must cross those k routers again on the way
    back, so it reaches us with ``probe_ttl - 2k`` — tiny values that
    grow by one per probe TTL. ``k = (terminating_ttl - arrival_ttl)/2``
    routers sit before the device; the blocking hop (the node the
    device's link leads into, same convention as for droppers) is one
    further.
    """
    votes: List[int] = []
    for sweep in sweeps:
        if sweep.terminating_ttl is None or sweep.terminating_response is None:
            continue
        response = sweep.terminating_response
        if response.kind != "tcp" or response.payload:
            continue
        if response.arrival_ttl <= TTL_COPY_ARRIVAL_MAX:
            votes.append(
                (sweep.terminating_ttl - response.arrival_ttl) // 2 + 1
            )
    if not votes:
        return False, None
    return True, int(_majority(votes))


def classify_measurement(
    *,
    endpoint_ip: str,
    test_domain: str,
    protocol: str,
    control_sweeps: List[TraceSweep],
    test_sweeps: List[TraceSweep],
    asdb: Optional[ASDatabase] = None,
    matcher: Optional[BlockpageMatcher] = None,
    correct_ttl_copy: bool = True,
) -> CenTraceResult:
    """Aggregate repeated sweeps into one classified result.

    ``correct_ttl_copy=False`` disables the §4.3 correction for
    TTL-copying injectors (exposed for the ablation benchmark: without
    it, blocking hops are attributed to nonexistent hops far past the
    endpoint).
    """
    result = CenTraceResult(
        endpoint_ip=endpoint_ip,
        endpoint_asn=asdb.lookup_asn(endpoint_ip) if asdb else None,
        test_domain=test_domain,
        protocol=protocol,
        sweeps_control=control_sweeps,
        sweeps_test=test_sweeps,
    )
    result.degraded = any(
        s.degraded for s in control_sweeps
    ) or any(s.degraded for s in test_sweeps)
    control_hops = build_hop_distribution(control_sweeps)
    result.control_hops = control_hops

    # The Control Domain must be reachable; otherwise this measurement
    # cannot say anything about censorship of the Test Domain.
    control_types = [s.terminating_type for s in control_sweeps]
    clean_controls = [
        s for s in control_sweeps if s.terminating_type == TYPE_NORMAL
    ]
    if not clean_controls:
        result.valid = False
        result.blocking_type = _majority(control_types) or TYPE_NORMAL
        return result
    endpoint_distance = _majority(
        s.terminating_ttl for s in clean_controls
    )
    result.endpoint_distance = endpoint_distance

    # DNS (§8 extension): an answer that arrives for a probe whose TTL
    # is too small to have reached the resolver must have been forged
    # by an on-path/in-path injector.
    if protocol == PROTO_DNS:
        return _classify_dns(result, test_sweeps, control_hops, asdb)

    # Majority test verdict.
    test_types = [s.terminating_type for s in test_sweeps]
    verdict = _majority(test_types) or TYPE_NORMAL
    result.blocking_type = verdict
    result.blocked = verdict in BLOCK_TYPES
    agreeing = [s for s in test_sweeps if s.terminating_type == verdict]
    terminating_ttl = _majority(s.terminating_ttl for s in agreeing)
    result.terminating_ttl = terminating_ttl
    if not result.blocked or terminating_ttl is None:
        return result

    # TTL-copy correction (§4.3, RU).
    ttl_copy, corrected = _detect_ttl_copy(agreeing)
    if not correct_ttl_copy:
        ttl_copy, corrected = False, None
    result.ttl_copy_detected = ttl_copy
    result.corrected_device_distance = corrected

    device_ttl = corrected if (ttl_copy and corrected) else terminating_ttl
    hop_ip = most_likely_hop(control_hops, device_ttl)
    if hop_ip is None and device_ttl == endpoint_distance:
        # At the endpoint's own distance the control trace shows no
        # ICMP (the endpoint answers with TCP there): the different
        # behaviour for the Test Domain comes from the endpoint itself
        # or a NAT in front of it (§4.3, "At E").
        hop_ip = endpoint_ip
    result.blocking_hop = _attribute(hop_ip, device_ttl, asdb)

    # Location class (Figure 3).
    if endpoint_distance is not None and terminating_ttl > endpoint_distance:
        result.location_class = LOC_PAST_E
    elif hop_ip == endpoint_ip:
        result.location_class = LOC_AT_E
    elif hop_ip is None and most_likely_hop(control_hops, device_ttl - 1) is None:
        result.location_class = LOC_NO_ICMP
    else:
        result.location_class = LOC_PATH
    if endpoint_distance is not None:
        result.hops_from_endpoint = max(0, endpoint_distance - device_ttl)

    # In-path vs on-path (§4.1): on-path devices let the probe continue,
    # so the terminating probe carries BOTH the injected TCP response
    # and an ICMP Time Exceeded from the hop past the device.
    if result.location_class == LOC_AT_E:
        result.in_path = None  # the endpoint itself answered
    elif verdict == TYPE_TIMEOUT:
        result.in_path = True
    else:
        on_path_votes = 0
        in_path_votes = 0
        for sweep in agreeing:
            probe = _probe_at(sweep, sweep.terminating_ttl)
            if probe is None:
                continue
            has_injected = any(
                r.kind == "tcp" and r.src_ip == endpoint_ip
                for r in probe.responses
            )
            has_icmp = bool(probe.icmp_responses())
            if has_injected and has_icmp:
                on_path_votes += 1
            elif has_injected:
                in_path_votes += 1
        if result.location_class == LOC_AT_E:
            result.in_path = None  # the endpoint itself answered
        elif on_path_votes or in_path_votes:
            result.in_path = in_path_votes >= on_path_votes

    # Features of the injected response (Table 3).
    response = _majority_response(agreeing)
    if response is not None and response.kind == "tcp":
        result.injected_ip_id = response.ip_id
        result.injected_ip_tos = response.ip_tos
        result.injected_ip_flags = response.ip_flags
        result.injected_ttl = response.arrival_ttl
        result.injected_initial_ttl = (
            None if ttl_copy else infer_initial_ttl(response.arrival_ttl)
        )
        result.injected_tcp_flags = response.tcp_flags
        result.injected_tcp_window = response.tcp_window
        result.injected_tcp_options = response.tcp_options
        if verdict == TYPE_HTTP and matcher is not None:
            fingerprint = matcher.match_payload(response.payload)
            result.blockpage_fingerprint = (
                fingerprint.name if fingerprint else None
            )

    # Quoted-packet delta at the blocking hop, from the control trace
    # (Tracebox-style, §4.1/§4.3).
    result.quote_delta = _quote_delta_at(clean_controls, device_ttl)
    return result


def _classify_dns(
    result: CenTraceResult,
    test_sweeps: List[TraceSweep],
    control_hops,
    asdb: Optional[ASDatabase],
) -> CenTraceResult:
    """DNS-injection classification (the §8 extension).

    The terminating TTL of a DNS sweep is the first probe TTL at which
    an answer came back. Legitimate answers require the query to reach
    the resolver (terminating TTL == endpoint distance); anything
    earlier is an injector at that hop. Probes past the injector that
    collect *two* answers (forged + real) reveal an on-path device.
    """
    endpoint_distance = result.endpoint_distance
    terminating_ttl = _majority(
        s.terminating_ttl
        for s in test_sweeps
        if s.terminating_ttl is not None
    )
    result.terminating_ttl = terminating_ttl
    if terminating_ttl is None:
        # No answer at all: a dropper (classified like TCP timeouts).
        timeout_sweeps = [
            s for s in test_sweeps if s.terminating_type == TYPE_TIMEOUT
        ]
        if timeout_sweeps:
            result.blocked = True
            result.blocking_type = TYPE_TIMEOUT
            ttl = _majority(s.terminating_ttl for s in timeout_sweeps)
            result.terminating_ttl = ttl
            if ttl is not None:
                hop_ip = most_likely_hop(control_hops, ttl)
                result.blocking_hop = _attribute(hop_ip, ttl, asdb)
                result.location_class = LOC_PATH
                result.in_path = True
        return result
    if endpoint_distance is None or terminating_ttl >= endpoint_distance:
        return result  # the resolver itself answered first: not blocked
    result.blocked = True
    result.blocking_type = TYPE_DNSINJECT
    hop_ip = most_likely_hop(control_hops, terminating_ttl)
    result.blocking_hop = _attribute(hop_ip, terminating_ttl, asdb)
    result.location_class = LOC_PATH
    if endpoint_distance is not None:
        result.hops_from_endpoint = max(
            0, endpoint_distance - terminating_ttl
        )
    # On-path detection: any probe collecting more than one answer saw
    # the race between the injector and the real resolver.
    double_answers = False
    for sweep in test_sweeps:
        for probe in sweep.probes:
            udp = [r for r in probe.responses if r.kind == "udp"]
            if len(udp) >= 2:
                double_answers = True
    result.in_path = not double_answers
    response = _majority_response(
        [s for s in test_sweeps if s.terminating_response is not None]
    )
    if response is not None:
        result.injected_ip_id = response.ip_id
        result.injected_ip_tos = response.ip_tos
        result.injected_ip_flags = response.ip_flags
        result.injected_ttl = response.arrival_ttl
        result.injected_initial_ttl = infer_initial_ttl(response.arrival_ttl)
    return result


def _probe_at(sweep: TraceSweep, ttl: Optional[int]) -> Optional[ProbeObservation]:
    if ttl is None:
        return None
    for probe in sweep.probes:
        if probe.ttl == ttl:
            return probe
    return None


def _majority_response(sweeps: List[TraceSweep]) -> Optional[ResponseSummary]:
    responses = [
        s.terminating_response
        for s in sweeps
        if s.terminating_response is not None
    ]
    return responses[0] if responses else None


def _quote_delta_at(control_sweeps: List[TraceSweep], ttl: int):
    for sweep in control_sweeps:
        probe = _probe_at(sweep, ttl)
        if probe is None or not probe.sent_bytes:
            continue
        for response in probe.icmp_responses():
            if response.quote:
                return compare_quote(
                    probe.sent_bytes, response.quote, sent_ttl=ttl
                )
    return None
