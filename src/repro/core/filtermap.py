"""FilterMap-style blockpage clustering (§3.3).

Sundara Raman et al.'s FilterMap clusters observed blockpages so that
each *class* of filter can be fingerprinted once; this paper's banner
grabs complement it where devices don't inject pages. This module
implements the HTML side of that pipeline:

* normalize page bodies (volatile tokens — numbers, URLs, request
  echoes — removed),
* shingle the token stream and cluster by Jaccard similarity
  (single linkage),
* propose a fingerprint for each cluster from its distinctive tokens,
  ready to be added to the :mod:`repro.core.blockpages` corpus.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .blockpages import BlockpageFingerprint

_TAG_RE = re.compile(r"<[^>]{0,200}>")
_VOLATILE_RE = re.compile(
    r"(https?://\S+)|(\b\d[\d.,:]*\b)|(\b[0-9a-f]{8,}\b)", re.IGNORECASE
)
_TOKEN_RE = re.compile(r"[a-zA-Zа-яА-Я][a-zA-Zа-яА-Я'-]+")

# Tokens too common across all web pages to be distinctive.
_STOPWORDS = frozenset(
    """the a an and or of to in is are this that you your for by on with it
    has have been was were not page html head body title http content type
    text length connection close""".split()
)


def normalize(body: str) -> List[str]:
    """Strip markup and volatile content; return the token stream."""
    text = _TAG_RE.sub(" ", body)
    text = _VOLATILE_RE.sub(" ", text)
    return [t.lower() for t in _TOKEN_RE.findall(text)]


def shingles(tokens: Sequence[str], k: int = 3) -> FrozenSet[Tuple[str, ...]]:
    """k-token shingles of the normalized stream."""
    if len(tokens) < k:
        return frozenset({tuple(tokens)}) if tokens else frozenset()
    return frozenset(
        tuple(tokens[i : i + k]) for i in range(len(tokens) - k + 1)
    )


def jaccard(a: FrozenSet, b: FrozenSet) -> float:
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)


@dataclass
class ObservedPage:
    """One page body observed by a measurement, plus provenance."""

    body: str
    source: str = ""  # e.g. "endpoint-ip|domain"
    tokens: List[str] = field(default_factory=list)
    signature: FrozenSet = frozenset()

    def __post_init__(self) -> None:
        self.tokens = normalize(self.body)
        self.signature = shingles(self.tokens)


@dataclass
class PageCluster:
    """A group of near-identical pages (one filter class)."""

    pages: List[ObservedPage] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.pages)

    def distinctive_tokens(self, background: Counter, top: int = 4) -> List[str]:
        """Tokens frequent in this cluster but rare elsewhere."""
        local = Counter()
        for page in self.pages:
            local.update(set(page.tokens))
        scored = []
        for token, count in local.items():
            if token in _STOPWORDS or len(token) < 4:
                continue
            outside = background[token] - count
            scored.append((outside, -count, token))
        scored.sort()
        return [token for _, _, token in scored[:top]]


class FilterMap:
    """Accumulates pages and clusters them by body similarity."""

    def __init__(self, threshold: float = 0.6, shingle_size: int = 3) -> None:
        self.threshold = threshold
        self.shingle_size = shingle_size
        self.pages: List[ObservedPage] = []

    def add_page(self, body: str, source: str = "") -> ObservedPage:
        page = ObservedPage(body=body, source=source)
        self.pages.append(page)
        return page

    def clusters(self, min_size: int = 1) -> List[PageCluster]:
        """Single-linkage clustering over pairwise Jaccard similarity."""
        n = len(self.pages)
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            parent[find(i)] = find(j)

        for i in range(n):
            for j in range(i + 1, n):
                if (
                    jaccard(self.pages[i].signature, self.pages[j].signature)
                    >= self.threshold
                ):
                    union(i, j)
        grouped: Dict[int, PageCluster] = {}
        for i, page in enumerate(self.pages):
            grouped.setdefault(find(i), PageCluster()).pages.append(page)
        clusters = [c for c in grouped.values() if c.size >= min_size]
        clusters.sort(key=lambda c: -c.size)
        return clusters

    def background_counts(self) -> Counter:
        counts: Counter = Counter()
        for page in self.pages:
            counts.update(set(page.tokens))
        return counts

    def suggest_fingerprints(
        self, min_size: int = 2, name_prefix: str = "filtermap"
    ) -> List[BlockpageFingerprint]:
        """Propose a corpus entry per sizeable cluster.

        The suggested regex requires the cluster's most distinctive
        tokens (in any order), which is how FilterMap-derived
        fingerprints were curated into the Censored Planet corpus.
        """
        background = self.background_counts()
        suggestions = []
        for index, cluster in enumerate(self.clusters(min_size=min_size)):
            tokens = cluster.distinctive_tokens(background)
            if not tokens:
                continue
            pattern = "".join(f"(?=.*{re.escape(t)})" for t in tokens[:3])
            suggestions.append(
                BlockpageFingerprint(
                    name=f"{name_prefix}_{index}",
                    pattern=pattern,
                    vendor=None,
                    category="isp",
                )
            )
        return suggestions
