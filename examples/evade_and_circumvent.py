#!/usr/bin/env python3
"""Probe a censor's rules with CenFuzz and find circumvention paths.

The §6 workflow from the Kazakhstan in-country vantage point:

* fuzz the state censor with all 16 HTTP and 8 TLS strategies against
  a blocked domain and print the per-strategy evasion rates;
* separate *evasion* (the censor missed the request) from
  *circumvention* (the origin also served the intended content) —
  reproducing the paper's www.pokerstars.com padding and
  dailymotion subdomain case studies.

Run:  python examples/evade_and_circumvent.py
"""

from repro.core.cenfuzz import CenFuzz
from repro.geo import build_world


def fuzz_domain(fuzzer, world, endpoint, domain, protocol):
    report = fuzzer.run_endpoint(
        endpoint.ip, domain, protocol, world.control_domain
    )
    if not report.normal_blocked:
        print(f"  {domain} ({protocol}): not blocked from this vantage")
        return
    print(f"  {domain} ({protocol}): blocked — fuzzing "
          f"{len(report.results)} permutations")
    rows = []
    for strategy, (ok, evaluated) in sorted(report.success_by_strategy().items()):
        circ = sum(
            1
            for r in report.results
            if r.strategy == strategy and r.circumvented
        )
        rows.append((strategy, ok, evaluated, circ))
    for strategy, ok, evaluated, circ in rows:
        if evaluated == 0:
            continue
        bar = "#" * round(20 * ok / evaluated)
        print(f"    {strategy:26s} evade {ok:3d}/{evaluated:<3d} "
              f"{bar:20s} circumvent {circ}")


def main() -> None:
    world = build_world("KZ")
    client = world.in_country_client
    fuzzer = CenFuzz(world.sim, client)

    targets = {t.domains[0]: t for t in world.in_country_targets}

    print("=== www.pokerstars.com (lenient origin: padding circumvents) ===")
    pokerstars = targets["www.pokerstars.com"]
    fuzz_domain(fuzzer, world, pokerstars, "www.pokerstars.com", "http")
    fuzz_domain(fuzzer, world, pokerstars, "www.pokerstars.com", "tls")

    print("\n=== www.dailymotion.com (wildcard vhosts: subdomains work) ===")
    dailymotion = targets["www.dailymotion.com"]
    fuzz_domain(fuzzer, world, dailymotion, "www.dailymotion.com", "http")

    print("\n=== www.azattyq.org (strict origin: evasion without"
          " circumvention) ===")
    azattyq = targets["www.azattyq.org"]
    fuzz_domain(fuzzer, world, azattyq, "www.azattyq.org", "http")


if __name__ == "__main__":
    main()
