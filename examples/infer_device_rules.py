#!/usr/bin/env python3
"""Infer censorship devices' decision models from CenFuzz results.

Autosonda-style analysis (§3.4): fuzz each distinct device in the RU
study world and reconstruct the rules its DPI engine must be applying —
which methods trigger, whether versions are validated, how the hostname
is located, the wildcard style, URL scoping, and TLS parser fragility.
The output is then checked against the simulator's ground truth.

Run:  python examples/infer_device_rules.py
"""

from repro.analysis.rule_inference import infer_rules
from repro.core.cenfuzz import CenFuzz
from repro.core.centrace import CenTrace, CenTraceConfig
from repro.geo import build_world


def main() -> None:
    world = build_world("RU")
    tracer = CenTrace(
        world.sim, world.remote_client, asdb=world.asdb,
        config=CenTraceConfig(repetitions=2),
    )
    fuzzer = CenFuzz(world.sim, world.remote_client)

    # Find one blocked (endpoint, domain) per distinct blocking hop.
    seen_hops = set()
    targets = []
    for endpoint in world.endpoints:
        for domain in world.test_domains:
            result = tracer.measure(endpoint.ip, domain, "http")
            if not (result.blocked and result.blocking_hop):
                continue
            hop = result.blocking_hop.ip
            if hop in seen_hops:
                continue
            seen_hops.add(hop)
            targets.append((endpoint, domain, hop))
            break
        if len(targets) >= 6:
            break

    host_to_device = {ip: name for name, ip in world.device_host_ip.items()}
    devices = {d.name: d for d in world.devices}

    print(f"inferring decision models for {len(targets)} distinct devices:\n")
    for endpoint, domain, hop in targets:
        report = fuzzer.run_endpoint(
            endpoint.ip, domain, "http", world.control_domain
        )
        model = infer_rules(report)
        device = devices.get(host_to_device.get(hop, ""), None)
        truth = "unknown device"
        if device is not None:
            truth = (
                f"ground truth: vendor={device.vendor or 'national system'},"
                f" methods={sorted(device.quirks.trigger_methods)},"
                f" rules={device.blocklist.rules[0].kind}"
            )
        print(f"device at {hop} (via {domain}):")
        print(f"  inferred: {model.summary()}")
        print(f"  {truth}\n")


if __name__ == "__main__":
    main()
