#!/usr/bin/env python3
"""Locate DNS injectors with TTL-limited queries (the §8 extension).

The paper lists DNS packet injection as future work; this example runs
CenTrace's DNS mode against open resolvers behind two injector types:

* an on-path injector racing forged A records against the resolver
  (detectable by double answers), and
* an in-path device that swallows the query and forges the only reply.

A forged answer arriving for a probe whose TTL is too small to have
reached the resolver *must* come from a device on the path — the same
TTL trick CenTrace uses for HTTP/TLS.

Run:  python examples/dns_injection.py
"""

from repro.core.centrace import CenTrace, CenTraceConfig
from repro.core.centrace.results import PROTO_DNS
from repro.geo.countries import build_dns_world
from repro.netmodel.dns import DNSMessage


def main() -> None:
    world = build_dns_world()
    tracer = CenTrace(
        world.sim,
        world.remote_client,
        asdb=world.asdb,
        config=CenTraceConfig(repetitions=2),
    )

    for endpoint in world.endpoints[:2]:
        print(f"resolver {endpoint.ip}:")
        for domain in [world.test_domains[0], "www.clean.example"]:
            result = tracer.measure(endpoint.ip, domain, PROTO_DNS)
            if not result.blocked:
                print(f"  {domain}: clean (answer at hop "
                      f"{result.terminating_ttl} = resolver distance)")
                continue
            mode = "in-path (query dropped)" if result.in_path else (
                "on-path (races the resolver)")
            print(f"  {domain}: INJECTED at hop {result.terminating_ttl} "
                  f"of {result.endpoint_distance} — {mode}")
            sweep = tracer.sweep(endpoint.ip, domain, PROTO_DNS)
            forged = DNSMessage.from_bytes(sweep.terminating_response.payload)
            print(f"      forged answer: {domain} -> "
                  f"{forged.answers[0].address if forged.answers else 'NXDOMAIN'}")
        print()


if __name__ == "__main__":
    main()
