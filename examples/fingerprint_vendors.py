#!/usr/bin/env python3
"""Identify censorship device vendors: CenTrace -> CenProbe -> clustering.

The §5 + §7 pipeline end to end:

1. CenTrace finds blocked endpoints and the in-path blocking hops
   (the potential device IPs);
2. CenProbe scans those IPs and labels devices from their banners;
3. the clustering pipeline groups blocked endpoints by their combined
   CenTrace/CenFuzz/banner features and checks that devices sharing a
   vendor land in the same cluster.

Run:  python examples/fingerprint_vendors.py
"""

from repro.analysis.cluster import cluster_endpoints, vendor_correlations
from repro.core.cenprobe import CenProbe, summarize_reports
from repro.experiments.campaign import CampaignConfig, run_campaign
from repro.geo import build_world


def main() -> None:
    world = build_world("KZ")
    print(f"running the full KZ measurement campaign "
          f"({len(world.endpoints)} endpoints) ...")
    campaign = run_campaign(world, CampaignConfig(repetitions=2))

    device_ips = campaign.potential_device_ips()
    print(f"\nCenTrace found {len(device_ips)} potential device IPs "
          "(in-path blocking hops)")

    prober = CenProbe(world.topology)
    reports = prober.scan_many(device_ips)
    for report in reports:
        label = report.vendor or "(no filtering indication)"
        ports = ",".join(map(str, report.open_ports)) or "none"
        print(f"  {report.ip:16s} ports={ports:18s} -> {label}")
    print("\nsummary:", summarize_reports(reports))

    features = campaign.endpoint_features()
    print(f"\nclustering {len(features)} blocked endpoints "
          f"({sum(1 for f in features if f.label)} vendor-labeled) ...")
    report = cluster_endpoints(features, eps=1.2, top_features=None)
    for cluster, members in sorted(report.clusters().items()):
        vendors = sorted({m.label for m in members if m.label})
        name = "noise" if cluster == -1 else f"cluster {cluster}"
        print(f"  {name}: {len(members)} endpoints, vendors={vendors or '-'}")

    print("\nwithin-vendor Spearman correlations (paper §7.4):")
    for (vendor_a, vendor_b), (rs, p) in sorted(vendor_correlations(features).items()):
        if vendor_a == vendor_b:
            print(f"  {vendor_a}: r_s={rs:.2f} (p={p:.3f})")


if __name__ == "__main__":
    main()
