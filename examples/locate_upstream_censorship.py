#!/usr/bin/env python3
"""Locate extraterritorial censorship: KZ measurements blocked in Russia.

The paper's headline CenTrace finding (§4.3): remote measurements to
endpoints in Kazakhstan are sometimes blocked *before reaching the
country*, inside Russian transit ASes (PJSC MegaFon AS31133 and JSC
Kvant-telekom AS43727). This example traces every KZ endpoint for
``bridges.torproject.org`` and attributes each blocking hop to its AS
and country, then renders the aggregate path graph.

Run:  python examples/locate_upstream_censorship.py
"""

from collections import Counter

from repro import viz
from repro.core.centrace import CenTrace, CenTraceConfig
from repro.geo import build_world

DOMAIN = "bridges.torproject.org"


def main() -> None:
    world = build_world("KZ")
    tracer = CenTrace(
        world.sim,
        world.remote_client,
        asdb=world.asdb,
        config=CenTraceConfig(repetitions=3),
    )

    results = []
    blocked_by_country: Counter = Counter()
    blocked_by_as: Counter = Counter()
    for endpoint in world.endpoints:
        result = tracer.measure(endpoint.ip, DOMAIN, protocol="http")
        results.append(result)
        if result.blocked and result.blocking_hop and result.blocking_hop.ip:
            hop = result.blocking_hop
            blocked_by_country[hop.country] += 1
            blocked_by_as[f"AS{hop.asn} {hop.as_name}"] += 1

    total = len(results)
    blocked = sum(1 for r in results if r.blocked)
    print(f"{DOMAIN}: {blocked}/{total} KZ endpoints blocked\n")
    print("blocking hops by country:")
    for country, count in blocked_by_country.most_common():
        flag = "  <-- extraterritorial!" if country != "KZ" else ""
        print(f"  {country}: {count}{flag}")
    print("\nblocking hops by AS:")
    for as_label, count in blocked_by_as.most_common():
        print(f"  {as_label}: {count}")

    ru_blocked = sum(
        1
        for r in results
        if r.blocked and r.blocking_hop and r.blocking_hop.country == "RU"
    )
    print(
        f"\n{100 * ru_blocked / total:.1f}% of KZ endpoints are actually"
        " blocked inside Russia (paper: 21.81% of hosts)"
    )

    graph = viz.build_path_graph(results, asdb=world.asdb, client_label="US client")
    print("\nblocked links (from-AS -> to-AS):")
    for from_as, to_as, count in viz.blocking_link_summary(graph):
        print(f"  {from_as} -> {to_as}: {count} traces")


if __name__ == "__main__":
    main()
