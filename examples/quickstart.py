#!/usr/bin/env python3
"""Quickstart: locate a censorship device with CenTrace.

Builds the Kazakhstan study world, runs one CenTrace measurement for a
blocked domain from the remote (US) vantage point, and prints where on
the path the blocking happens — the paper's §4 workflow in ~20 lines.

Run:  python examples/quickstart.py
"""

from repro.core.centrace import CenTrace, CenTraceConfig
from repro.geo import build_world


def main() -> None:
    world = build_world("KZ")
    print(f"world: {world.name} — {len(world.endpoints)} endpoints, "
          f"{len(world.devices)} censorship devices (ground truth)")

    tracer = CenTrace(
        world.sim,
        world.remote_client,
        asdb=world.asdb,
        config=CenTraceConfig(repetitions=3),
    )

    endpoint = world.endpoints[0]
    test_domain = world.test_domains[0]
    print(f"\nCenTrace: {test_domain} -> {endpoint.ip} "
          f"(AS{endpoint.asn}, {endpoint.country})")

    result = tracer.measure(endpoint.ip, test_domain, protocol="http")

    if not result.blocked:
        print("no blocking observed")
        return

    hop = result.blocking_hop
    print(f"  blocked:        {result.blocking_type}")
    print(f"  terminating TTL: {result.terminating_ttl}"
          f" (endpoint at {result.endpoint_distance} hops)")
    print(f"  blocking hop:   {hop.ip} — AS{hop.asn} {hop.as_name}"
          f" ({hop.country})")
    print(f"  location:       {result.location_class},"
          f" {result.hops_from_endpoint} hops before the endpoint")
    print(f"  in-path device: {result.in_path}")

    print("\nmost likely control path:")
    for control_hop in result.control_path():
        marker = " <-- blocking" if control_hop.ttl == hop.ttl else ""
        print(f"  {control_hop.ttl:2d}  {control_hop.ip or '*'}{marker}")


if __name__ == "__main__":
    main()
