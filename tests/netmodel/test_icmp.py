"""ICMP messages, quoting policies and Tracebox-style quote deltas."""

import pytest
from hypothesis import given, strategies as st

from repro.netmodel.icmp import (
    ICMPMessage,
    QUOTE_RFC792,
    QUOTE_RFC1812,
    RFC792_QUOTE_TRANSPORT_BYTES,
    TYPE_TIME_EXCEEDED,
    build_quote,
    compare_quote,
    time_exceeded,
)
from repro.netmodel.ip import IPHeader
from repro.netmodel.packet import tcp_packet


def _sample_packet(ttl=9, tos=0, payload=b"GET / HTTP/1.1\r\n"):
    return tcp_packet(
        "10.0.0.1", "10.0.0.2", 40000, 80, ttl=ttl, tos=tos, payload=payload
    )


class TestICMPMessage:
    def test_round_trip(self):
        message = ICMPMessage(TYPE_TIME_EXCEEDED, 0, quote=b"abcdef")
        parsed = ICMPMessage.from_bytes(message.to_bytes())
        assert parsed.icmp_type == TYPE_TIME_EXCEEDED
        assert parsed.quote == b"abcdef"
        assert parsed.is_time_exceeded

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            ICMPMessage.from_bytes(b"\x0b\x00")


class TestQuoting:
    def test_rfc792_quotes_28_bytes(self):
        raw = _sample_packet().to_bytes()
        quote = build_quote(raw, QUOTE_RFC792)
        assert len(quote) == IPHeader.HEADER_LEN + RFC792_QUOTE_TRANSPORT_BYTES

    def test_rfc1812_quotes_more(self):
        raw = _sample_packet(payload=b"x" * 400).to_bytes()
        quote = build_quote(raw, QUOTE_RFC1812)
        assert len(quote) > IPHeader.HEADER_LEN + RFC792_QUOTE_TRANSPORT_BYTES
        assert len(quote) <= 576 - 28

    def test_rfc1812_never_exceeds_packet(self):
        raw = _sample_packet(payload=b"tiny").to_bytes()
        assert build_quote(raw, QUOTE_RFC1812) == raw

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            build_quote(b"", "rfc9999")

    def test_time_exceeded_helper(self):
        raw = _sample_packet().to_bytes()
        message = time_exceeded(raw, QUOTE_RFC792)
        assert message.is_time_exceeded
        assert message.quote == build_quote(raw, QUOTE_RFC792)


class TestQuoteDelta:
    def test_unmodified_packet_shows_no_changes(self):
        packet = _sample_packet(ttl=5)
        raw = packet.to_bytes()
        delta = compare_quote(raw, build_quote(raw, QUOTE_RFC792), sent_ttl=5)
        assert not delta.any_header_change()
        assert delta.follows_rfc792
        assert not delta.payload_modified

    def test_tos_rewrite_detected(self):
        sent = _sample_packet(tos=0)
        rewritten = _sample_packet(tos=0x28)
        rewritten.ip.identification = sent.ip.identification
        delta = compare_quote(
            sent.to_bytes(), build_quote(rewritten.to_bytes(), QUOTE_RFC792), 64
        )
        assert delta.tos_changed

    def test_flags_rewrite_detected(self):
        sent = _sample_packet()
        rewritten = _sample_packet()
        rewritten.ip.identification = sent.ip.identification
        rewritten.ip.flags = 0
        delta = compare_quote(
            sent.to_bytes(), build_quote(rewritten.to_bytes(), QUOTE_RFC792), 64
        )
        assert delta.ip_flags_changed

    def test_rfc1812_quote_classified(self):
        raw = _sample_packet(payload=b"y" * 100).to_bytes()
        delta = compare_quote(raw, build_quote(raw, QUOTE_RFC1812), 64)
        assert not delta.follows_rfc792
        assert delta.transport_bytes_quoted > RFC792_QUOTE_TRANSPORT_BYTES

    def test_ttl_delta_reflects_decrements(self):
        packet = _sample_packet(ttl=9)
        sent_raw = packet.to_bytes()
        expired = _sample_packet(ttl=1)
        expired.ip.identification = packet.ip.identification
        delta = compare_quote(
            sent_raw, build_quote(expired.to_bytes(), QUOTE_RFC792), sent_ttl=9
        )
        assert delta.ttl_delta == 8

    def test_payload_modification_detected(self):
        sent = _sample_packet(payload=b"GET / HTTP/1.1\r\nHost: a\r\n\r\n")
        modified = _sample_packet(payload=b"GET / HTTP/1.1\r\nHost: b\r\n\r\n")
        modified.ip.identification = sent.ip.identification
        delta = compare_quote(
            sent.to_bytes(), build_quote(modified.to_bytes(), QUOTE_RFC1812), 64
        )
        assert delta.payload_modified

    def test_checksum_only_difference_ignored(self):
        # Rewriting the TCP checksum field alone must not count as a
        # payload modification (middleboxes re-checksum legitimately).
        sent = _sample_packet()
        raw = bytearray(sent.to_bytes())
        raw[20 + 16] ^= 0xFF  # flip TCP checksum byte
        delta = compare_quote(
            sent.to_bytes(), build_quote(bytes(raw), QUOTE_RFC1812), 64
        )
        assert not delta.payload_modified

    def test_short_quote_returns_empty_delta(self):
        delta = compare_quote(_sample_packet().to_bytes(), b"\x45\x00", 64)
        assert not delta.any_header_change()

    @given(ttl=st.integers(min_value=2, max_value=64))
    def test_delta_never_negative_for_valid_expiry(self, ttl):
        packet = _sample_packet(ttl=ttl)
        expired = _sample_packet(ttl=1)
        expired.ip.identification = packet.ip.identification
        delta = compare_quote(
            packet.to_bytes(), build_quote(expired.to_bytes(), QUOTE_RFC792), ttl
        )
        assert delta.ttl_delta >= 0
