"""HTTP request builder (fuzz-capable) and tolerant parser."""

import pytest
from hypothesis import given, strategies as st

from repro.netmodel.http import (
    HTTPRequest,
    HTTPResponse,
    RawHeader,
    looks_like_http_request,
    parse_request,
)

HOST = "www.blocked.example"


class TestBuilder:
    def test_normal_request_layout(self):
        raw = HTTPRequest.normal(HOST).build().decode()
        lines = raw.split("\r\n")
        assert lines[0] == "GET / HTTP/1.1"
        assert lines[1] == f"Host: {HOST}"
        assert raw.endswith("\r\n\r\n")

    def test_method_override_is_verbatim(self):
        raw = HTTPRequest(host=HOST, method="GeT").build()
        assert raw.startswith(b"GeT ")

    def test_empty_method_keeps_spacing(self):
        raw = HTTPRequest(host=HOST, method="").build()
        assert raw.startswith(b" / HTTP/1.1")

    def test_host_word_and_separator_override(self):
        raw = HTTPRequest(host=HOST, host_word="HostHeader", host_separator=":").build()
        assert f"HostHeader:{HOST}".encode() in raw

    def test_omitted_host_header(self):
        raw = HTTPRequest(host=HOST, include_host_header=False).build()
        assert b"Host" not in raw

    def test_custom_delimiter(self):
        raw = HTTPRequest(host=HOST, line_delimiter="\n").build()
        assert b"\r\n" not in raw
        assert b"\n" in raw

    def test_extra_headers_rendered_in_order(self):
        request = HTTPRequest(
            host=HOST,
            extra_headers=[RawHeader("A", "1"), RawHeader("B", "2")],
        )
        raw = request.build().decode()
        assert raw.index("A: 1") < raw.index("B: 2")

    def test_copy_is_independent(self):
        request = HTTPRequest(host=HOST)
        fuzzed = request.copy(method="PUT")
        assert request.method == "GET"
        assert fuzzed.method == "PUT"


class TestParser:
    def test_parse_normal(self):
        parsed = parse_request(HTTPRequest.normal(HOST).build())
        assert parsed.ok
        assert parsed.method == "GET"
        assert parsed.path == "/"
        assert parsed.host == HOST
        assert parsed.version_valid

    def test_parse_extracts_headers_lowercased(self):
        raw = HTTPRequest(
            host=HOST, extra_headers=[RawHeader("X-Thing", "v")]
        ).build()
        parsed = parse_request(raw)
        assert parsed.headers["x-thing"] == "v"

    def test_bare_lf_accepted_and_flagged(self):
        raw = HTTPRequest(host=HOST, line_delimiter="\n").build()
        parsed = parse_request(raw)
        assert parsed.ok and parsed.used_bare_lf

    def test_bare_lf_rejected_when_disallowed(self):
        raw = HTTPRequest(host=HOST, line_delimiter="\n").build()
        parsed = parse_request(raw, accept_bare_lf=False)
        assert not parsed.ok

    def test_cr_only_delimiter_unparseable(self):
        raw = HTTPRequest(host=HOST, line_delimiter="\r").build()
        parsed = parse_request(raw)
        assert not parsed.ok

    def test_invalid_version_flagged(self):
        parsed = parse_request(HTTPRequest(host=HOST, http_word="HTTP/9").build())
        assert parsed.ok and not parsed.version_valid

    def test_two_token_request_line_malformed(self):
        parsed = parse_request(b"GET /\r\nHost: a.example\r\n\r\n")
        assert parsed.malformed_request_line

    def test_alternate_host_word_found_fuzzily(self):
        raw = HTTPRequest(host=HOST, host_word="HostHeader").build()
        parsed = parse_request(raw)
        assert parsed.host == HOST
        assert parsed.malformed_host_header

    def test_empty_input_fails(self):
        assert not parse_request(b"").ok

    def test_sniffer_recognizes_methods(self):
        assert looks_like_http_request(b"GET / HTTP/1.1\r\n")
        assert looks_like_http_request(b"DELETE /x HTTP/1.1\r\n")
        assert not looks_like_http_request(b"\x16\x03\x01\x00\x05")

    @given(
        method=st.sampled_from(["GET", "POST", "PUT", "PATCH", "HEAD"]),
        path=st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz/._-", min_size=1, max_size=20
        ),
    )
    def test_round_trip_property(self, method, path):
        raw = HTTPRequest(host=HOST, method=method, path=path).build()
        parsed = parse_request(raw)
        assert parsed.method == method
        assert parsed.path == path
        assert parsed.host == HOST


class TestResponse:
    def test_build_and_parse(self):
        raw = HTTPResponse(200, body="<html>hi</html>").build()
        parsed = HTTPResponse.parse(raw)
        assert parsed.status_code == 200
        assert parsed.body == "<html>hi</html>"

    def test_content_length_added(self):
        raw = HTTPResponse(200, body="abc").build().decode()
        assert "Content-Length: 3" in raw

    def test_standard_reasons(self):
        assert b"505 HTTP Version Not Supported" in HTTPResponse(505).build()
        assert b"400 Bad Request" in HTTPResponse(400).build()

    def test_parse_rejects_non_http(self):
        assert HTTPResponse.parse(b"\x16\x03\x01") is None
        assert HTTPResponse.parse(b"random text") is None

    def test_parse_rejects_garbled_status(self):
        assert HTTPResponse.parse(b"HTTP/1.1 abc\r\n\r\n") is None
