"""TLS ClientHello build/parse: SNI, versions, cipher suites, padding."""

import pytest
from hypothesis import given, strategies as st

from repro.netmodel.tls import (
    CIPHER_SUITES,
    ClientHello,
    ServerHello,
    VERSION_TLS10,
    VERSION_TLS12,
    VERSION_TLS13,
    looks_like_client_hello,
    parse_client_hello,
    tls_alert,
)

SNI = "www.blocked.example"


class TestClientHello:
    def test_round_trip_sni(self):
        parsed = parse_client_hello(ClientHello.normal(SNI).build())
        assert parsed.ok
        assert parsed.sni == SNI

    def test_omitted_sni(self):
        hello = ClientHello(server_name=SNI, include_sni=False)
        parsed = parse_client_hello(hello.build())
        assert parsed.ok and parsed.sni is None

    def test_empty_sni(self):
        parsed = parse_client_hello(ClientHello(server_name="").build())
        assert parsed.sni == ""

    def test_sni_padding_applied(self):
        hello = ClientHello(server_name=SNI, sni_padding="**")
        parsed = parse_client_hello(hello.build())
        assert parsed.sni == "**" + SNI

    def test_cipher_suites_round_trip(self):
        suites = ["TLS_RSA_WITH_RC4_128_SHA"]
        hello = ClientHello(server_name=SNI, cipher_suites=suites)
        parsed = parse_client_hello(hello.build())
        assert parsed.cipher_suites == (CIPHER_SUITES[suites[0]],)

    def test_supported_versions_range(self):
        hello = ClientHello(
            server_name=SNI, min_version=VERSION_TLS12, max_version=VERSION_TLS13
        )
        parsed = parse_client_hello(hello.build())
        assert set(parsed.supported_versions) == {VERSION_TLS12, VERSION_TLS13}

    def test_single_version_offer(self):
        hello = ClientHello(
            server_name=SNI, min_version=VERSION_TLS10, max_version=VERSION_TLS10
        )
        parsed = parse_client_hello(hello.build())
        assert parsed.supported_versions == (VERSION_TLS10,)

    def test_legacy_version_capped_at_tls12(self):
        parsed = parse_client_hello(ClientHello.normal(SNI).build())
        assert parsed.legacy_version == VERSION_TLS12

    def test_client_certificate_flag_does_not_change_wire_bytes(self):
        # The certificate is sent *after* the ClientHello; a censor
        # inspecting the CH cannot see it (why the strategy never
        # evades, §6.3).
        plain = ClientHello(server_name=SNI).build()
        with_cert = ClientHello(
            server_name=SNI,
            offers_client_certificate=True,
            client_certificate_cn="CN=www.test.com",
        ).build()
        assert plain == with_cert

    def test_deterministic_output(self):
        assert ClientHello.normal(SNI).build() == ClientHello.normal(SNI).build()

    @given(
        name=st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz0123456789.-", min_size=1, max_size=40
        )
    )
    def test_sni_round_trip_property(self, name):
        parsed = parse_client_hello(ClientHello(server_name=name).build())
        assert parsed.sni == name


class TestParserRobustness:
    def test_rejects_non_handshake_record(self):
        assert not parse_client_hello(b"\x17\x03\x03\x00\x01\x00").ok

    def test_rejects_server_hello(self):
        assert not parse_client_hello(ServerHello().build()).ok

    def test_rejects_truncated(self):
        raw = ClientHello.normal(SNI).build()
        assert not parse_client_hello(raw[:10]).ok

    def test_rejects_empty(self):
        assert not parse_client_hello(b"").ok

    def test_sniffer(self):
        assert looks_like_client_hello(ClientHello.normal(SNI).build())
        assert not looks_like_client_hello(b"GET / HTTP/1.1\r\n")
        assert not looks_like_client_hello(ServerHello().build())


class TestServerSide:
    def test_server_hello_parses_as_record(self):
        raw = ServerHello().build()
        assert raw[0] == 22  # handshake record
        assert raw[5] == 2  # ServerHello type

    def test_alert_structure(self):
        raw = tls_alert(40)
        assert raw[0] == 21
        assert raw[-1] == 40
