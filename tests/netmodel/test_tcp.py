"""TCP segment serialization, flags and options."""

import pytest
from hypothesis import given, strategies as st

from repro.netmodel.ip import checksum16, ip_to_int
from repro.netmodel.tcp import (
    ACK,
    FIN,
    PSH,
    RST,
    SYN,
    TCPOption,
    TCPSegment,
    flags_to_str,
    parse_options,
)
import struct


class TestFlags:
    def test_single_flag(self):
        assert flags_to_str(SYN) == "SYN"

    def test_combined_flags_ordered(self):
        assert flags_to_str(SYN | ACK) == "ACK|SYN"

    def test_no_flags(self):
        assert flags_to_str(0) == "-"


class TestOptions:
    def test_mss_round_trip(self):
        opt = TCPOption.mss(1460)
        parsed = parse_options(opt.to_bytes())
        assert parsed[0].kind == 2
        assert struct.unpack("!H", parsed[0].data)[0] == 1460

    def test_nop_and_eol(self):
        data = TCPOption(1).to_bytes() + TCPOption(0).to_bytes()
        parsed = parse_options(data)
        assert [o.kind for o in parsed] == [1, 0]

    def test_malformed_length_stops_parse(self):
        # kind=2, length=200 but only 2 bytes available.
        assert parse_options(bytes([2, 200])) == []

    def test_truncated_option_ignored(self):
        assert parse_options(bytes([8])) == []

    def test_option_helpers(self):
        assert TCPOption.window_scale(7).data == b"\x07"
        assert TCPOption.sack_permitted().kind == 4
        ts = TCPOption.timestamp(1000, 2000)
        assert struct.unpack("!II", ts.data) == (1000, 2000)


class TestSegment:
    def test_round_trip_basic(self):
        segment = TCPSegment(sport=1234, dport=443, seq=7, ack=9, flags=PSH | ACK, payload=b"hi")
        parsed = TCPSegment.from_bytes(segment.to_bytes("10.0.0.1", "10.0.0.2"))
        assert parsed.sport == 1234
        assert parsed.dport == 443
        assert parsed.seq == 7
        assert parsed.ack == 9
        assert parsed.flags == PSH | ACK
        assert parsed.payload == b"hi"

    def test_round_trip_with_options(self):
        segment = TCPSegment(
            sport=1,
            dport=2,
            options=[TCPOption.mss(1400), TCPOption(1), TCPOption.window_scale(5)],
            payload=b"x" * 100,
        )
        parsed = TCPSegment.from_bytes(segment.to_bytes())
        assert parsed.option_kinds() == (2, 1, 3)
        assert parsed.payload == b"x" * 100

    def test_checksum_verifies_with_pseudo_header(self):
        segment = TCPSegment(sport=5, dport=6, payload=b"data")
        raw = segment.to_bytes("192.0.2.1", "192.0.2.2")
        pseudo = struct.pack(
            "!IIBBH", ip_to_int("192.0.2.1"), ip_to_int("192.0.2.2"), 0, 6, len(raw)
        )
        assert checksum16(pseudo + raw) == 0

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            TCPSegment.from_bytes(b"\x00" * 10)

    def test_bad_data_offset_raises(self):
        raw = bytearray(TCPSegment(sport=1, dport=2).to_bytes())
        raw[12] = 0x10  # data offset 1 word < minimum 5
        with pytest.raises(ValueError):
            TCPSegment.from_bytes(bytes(raw))

    def test_header_len_pads_options_to_words(self):
        segment = TCPSegment(sport=1, dport=2, options=[TCPOption.window_scale(2)])
        # window scale is 3 bytes -> padded to 4.
        assert segment.header_len == 24

    def test_copy_preserves_unrelated_fields(self):
        segment = TCPSegment(sport=1, dport=2, window=123)
        copy = segment.copy(flags=RST)
        assert copy.window == 123 and copy.flags == RST
        assert segment.flags != RST

    @given(
        sport=st.integers(min_value=0, max_value=65535),
        dport=st.integers(min_value=0, max_value=65535),
        seq=st.integers(min_value=0, max_value=2**32 - 1),
        flags=st.integers(min_value=0, max_value=255),
        window=st.integers(min_value=0, max_value=65535),
        payload=st.binary(max_size=64),
    )
    def test_round_trip_property(self, sport, dport, seq, flags, window, payload):
        segment = TCPSegment(
            sport=sport, dport=dport, seq=seq, flags=flags, window=window, payload=payload
        )
        parsed = TCPSegment.from_bytes(segment.to_bytes())
        assert parsed.sport == sport
        assert parsed.dport == dport
        assert parsed.seq == seq
        assert parsed.flags == flags
        assert parsed.window == window
        assert parsed.payload == payload
