"""IPv4 header serialization, checksums and address helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.netmodel.ip import (
    FLAG_DF,
    FLAG_MF,
    FlowKey,
    IPHeader,
    checksum16,
    int_to_ip,
    ip_to_int,
)


class TestAddressConversion:
    def test_round_trip_simple(self):
        assert int_to_ip(ip_to_int("192.0.2.1")) == "192.0.2.1"

    def test_zero_address(self):
        assert ip_to_int("0.0.0.0") == 0
        assert int_to_ip(0) == "0.0.0.0"

    def test_broadcast(self):
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF

    def test_invalid_octet_count(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0")

    def test_octet_out_of_range(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0.256")

    def test_int_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_ip(2**32)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_round_trip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestChecksum:
    def test_known_vector(self):
        # RFC 1071 example data.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert checksum16(data) == 0xFFFF - ((0x0001 + 0xF203 + 0xF4F5 + 0xF6F7) % 0xFFFF)

    def test_zero_data(self):
        assert checksum16(b"\x00\x00") == 0xFFFF

    def test_odd_length_padded(self):
        assert checksum16(b"\x01") == checksum16(b"\x01\x00")

    def test_header_checksum_verifies(self):
        header = IPHeader(src="10.0.0.1", dst="10.0.0.2")
        raw = header.to_bytes()
        assert checksum16(raw) == 0


class TestIPHeader:
    def test_round_trip_defaults(self):
        header = IPHeader(src="198.51.100.7", dst="203.0.113.9", ttl=17)
        parsed, length = IPHeader.from_bytes(header.to_bytes(payload_len=11))
        assert length == 20
        assert parsed.src == "198.51.100.7"
        assert parsed.dst == "203.0.113.9"
        assert parsed.ttl == 17
        assert parsed.total_length == 31

    def test_round_trip_all_fields(self):
        header = IPHeader(
            src="10.1.2.3",
            dst="10.3.2.1",
            ttl=1,
            protocol=6,
            tos=0x48,
            identification=0xBEEF,
            flags=FLAG_MF,
            frag_offset=123,
        )
        parsed, _ = IPHeader.from_bytes(header.to_bytes())
        assert parsed.tos == 0x48
        assert parsed.identification == 0xBEEF
        assert parsed.flags == FLAG_MF
        assert parsed.frag_offset == 123

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            IPHeader.from_bytes(b"\x45\x00")

    def test_non_ipv4_raises(self):
        data = bytearray(IPHeader(src="1.2.3.4", dst="5.6.7.8").to_bytes())
        data[0] = 0x65  # version 6
        with pytest.raises(ValueError):
            IPHeader.from_bytes(bytes(data))

    def test_copy_changes_only_requested_field(self):
        header = IPHeader(src="10.0.0.1", dst="10.0.0.2", ttl=9)
        copy = header.copy(ttl=3)
        assert copy.ttl == 3
        assert header.ttl == 9
        assert copy.src == header.src

    def test_default_flags_df(self):
        assert IPHeader(src="1.1.1.1", dst="2.2.2.2").flags == FLAG_DF

    @given(
        ttl=st.integers(min_value=0, max_value=255),
        tos=st.integers(min_value=0, max_value=255),
        ident=st.integers(min_value=0, max_value=0xFFFF),
        flags=st.integers(min_value=0, max_value=7),
    )
    def test_round_trip_property(self, ttl, tos, ident, flags):
        header = IPHeader(
            src="192.0.2.55",
            dst="198.18.0.1",
            ttl=ttl,
            tos=tos,
            identification=ident,
            flags=flags,
        )
        parsed, _ = IPHeader.from_bytes(header.to_bytes())
        assert (parsed.ttl, parsed.tos, parsed.identification, parsed.flags) == (
            ttl,
            tos,
            ident,
            flags,
        )


class TestFlowKey:
    def test_reversed_swaps_both_pairs(self):
        flow = FlowKey("10.0.0.1", "10.0.0.2", 1234, 80)
        rev = flow.reversed()
        assert rev.src == "10.0.0.2" and rev.dst == "10.0.0.1"
        assert rev.sport == 80 and rev.dport == 1234

    def test_canonical_is_direction_independent(self):
        flow = FlowKey("10.0.0.1", "10.0.0.2", 1234, 80)
        assert flow.canonical() == flow.reversed().canonical()

    def test_hashable_and_equal(self):
        a = FlowKey("10.0.0.1", "10.0.0.2", 1234, 80)
        b = FlowKey("10.0.0.1", "10.0.0.2", 1234, 80)
        assert hash(a) == hash(b)

    @given(
        sport=st.integers(min_value=0, max_value=65535),
        dport=st.integers(min_value=0, max_value=65535),
    )
    def test_double_reverse_identity(self, sport, dport):
        flow = FlowKey("10.0.0.1", "10.9.9.9", sport, dport)
        assert flow.reversed().reversed() == flow
